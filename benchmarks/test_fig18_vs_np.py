"""Fig. 18 — performance vs population size NP (skewed data)."""

from __future__ import annotations

import pytest

from repro.motion import make_dataset

from conftest import NP, SEED, cycle_time, run_one_cycle

GRID_METHODS = ["query_indexing", "object_overhaul", "hierarchical_rebuild"]
RTREE_METHODS = ["rtree_overhaul", "rtree_bottom_up"]


@pytest.mark.parametrize("method", GRID_METHODS + RTREE_METHODS)
@pytest.mark.parametrize("n", [NP // 4, NP])
def test_cycle_vs_np(benchmark, queries, method, n):
    positions = make_dataset("skewed", n, seed=SEED)
    benchmark(run_one_cycle(method, positions, queries))


def test_fig18a_hierarchical_scales(queries):
    """Fig. 18(a): hierarchical total time grows sub-quadratically (near
    linear) in NP."""
    small = cycle_time(
        "hierarchical_rebuild", make_dataset("skewed", NP // 4, seed=SEED), queries
    ).total_time
    large = cycle_time(
        "hierarchical_rebuild", make_dataset("skewed", NP * 2, seed=SEED), queries
    ).total_time
    assert large < small * 8  # 8x NP -> clearly sub-quadratic growth


def test_fig18b_grids_beat_rtrees_increasingly(queries):
    """Fig. 18: the R-tree/grid gap widens with NP, with the grid ahead
    once the population is non-trivial."""
    gaps = []
    for n in (NP // 4, NP * 2):
        positions = make_dataset("skewed", n, seed=SEED)
        grid = cycle_time("object_overhaul", positions, queries, cycles=3).total_time
        rtree = cycle_time("rtree_overhaul", positions, queries, cycles=3).total_time
        gaps.append(rtree / grid)
    assert gaps[1] > gaps[0]
    assert gaps[1] > 1.0
