"""Fig. 13 — incremental query answering with the Object-Index vs NP."""

from __future__ import annotations

from repro.core.object_index import ObjectIndex
from repro.motion import RandomWalkModel, make_dataset

from conftest import K, NP, SEED, cycle_time


def test_incremental_answering(benchmark, uniform_positions, queries):
    index = ObjectIndex(n_objects=NP)
    index.build(uniform_positions)
    previous = {
        i: index.knn_overhaul(qx, qy, K).object_ids()
        for i, (qx, qy) in enumerate(queries)
    }
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    moved = motion.step(uniform_positions)
    index.update(moved)

    def answer_all():
        for i, (qx, qy) in enumerate(queries):
            previous[i] = index.knn_incremental(qx, qy, K, previous[i]).object_ids()

    benchmark(answer_all)


def test_fig13_cost_grows_with_np(queries):
    """Fig. 13: incremental answering cost rises with NP (between sqrt
    and linear growth)."""
    times = []
    nps = [NP // 4, NP * 8]
    for n in nps:
        timing = cycle_time(
            "object_incremental",
            make_dataset("uniform", n, seed=SEED),
            queries,
            cycles=4,
        )
        times.append(timing.answer_time)
    growth = times[-1] / times[0]
    # 32x more objects: super-constant but sub-linear growth expected
    # (between the fixed per-query floor and the O(NP) worst case).
    assert 1.1 < growth < 32.0
