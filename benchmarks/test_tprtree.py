"""Benchmarks for the TPR-tree predictive baseline (§2/§5.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monitor import MonitoringSystem
from repro.motion import LinearMotionModel, make_dataset, make_queries
from repro.tprtree import TPREngine, TPRTree

from conftest import SEED

N = 3_000


@pytest.fixture(scope="module")
def workload():
    return make_dataset("uniform", N, seed=SEED), make_queries(100, seed=SEED + 1)


def test_tpr_build(benchmark, workload):
    positions, _ = workload
    rng = np.random.default_rng(SEED)
    velocities = rng.uniform(-0.005, 0.005, positions.shape)

    def build():
        tree = TPRTree(max_entries=16)
        for object_id in range(N):
            tree.insert(
                object_id,
                positions[object_id, 0],
                positions[object_id, 1],
                velocities[object_id, 0],
                velocities[object_id, 1],
                0.0,
            )
        return tree

    tree = benchmark(build)
    assert len(tree) == N


def test_tpr_predictive_knn(benchmark, workload):
    positions, queries = workload
    rng = np.random.default_rng(SEED)
    velocities = rng.uniform(-0.005, 0.005, positions.shape)
    tree = TPRTree(max_entries=16)
    for object_id in range(N):
        tree.insert(
            object_id,
            positions[object_id, 0],
            positions[object_id, 1],
            velocities[object_id, 0],
            velocities[object_id, 1],
            0.0,
        )

    def answer_all():
        for qx, qy in queries:
            tree.knn(qx, qy, 10, t=5.0)

    benchmark(answer_all)


@pytest.mark.parametrize("change_probability", [0.0, 1.0])
def test_tpr_cycle(benchmark, workload, change_probability):
    positions, queries = workload
    engine = TPREngine(10, queries)
    system = MonitoringSystem(engine)
    motion = LinearMotionModel(
        N, vmax=0.005, change_probability=change_probability, seed=SEED + 2
    )
    current = positions
    system.load(current)
    current = motion.step(current)
    system.tick(current)  # bootstrap velocity estimates
    state = {"positions": current}

    def cycle():
        state["positions"] = motion.step(state["positions"])
        system.tick(state["positions"])

    benchmark(cycle)


def test_degeneration_slows_tpr_but_not_grid(workload):
    """§5.4: the velocity-change regime decides TPR viability while the
    grid does not care."""
    positions, queries = workload

    def mean_cycle(change_probability, factory):
        system = factory()
        motion = LinearMotionModel(
            N, vmax=0.005, change_probability=change_probability, seed=SEED + 2
        )
        current = positions
        system.load(current)
        for _ in range(3):
            current = motion.step(current)
            system.tick(current)
        return sum(s.total_time for s in system.history[2:]) / 2

    tpr = lambda: MonitoringSystem(TPREngine(10, queries))
    grid = lambda: MonitoringSystem.object_indexing(10, queries)
    tpr_stable = mean_cycle(0.0, tpr)
    tpr_volatile = mean_cycle(1.0, tpr)
    grid_stable = mean_cycle(0.0, grid)
    grid_volatile = mean_cycle(1.0, grid)
    assert tpr_volatile > tpr_stable * 3
    assert grid_volatile < grid_stable * 2
    assert grid_volatile < tpr_volatile
