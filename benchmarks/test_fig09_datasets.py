"""Fig. 9 — dataset generation and the skew ordering of the three datasets."""

from __future__ import annotations

import pytest

from repro.motion import make_dataset, skewness_statistic

from conftest import NP, SEED


@pytest.mark.parametrize("name", ["uniform", "skewed", "hi_skewed"])
def test_dataset_generation(benchmark, name):
    points = benchmark(make_dataset, name, NP, SEED)
    assert points.shape == (NP, 2)


def test_fig09_skew_ordering():
    """The paper's Fig. 9: skew strictly increases across the datasets."""
    uniform = skewness_statistic(make_dataset("uniform", NP, seed=SEED))
    skewed = skewness_statistic(make_dataset("skewed", NP, seed=SEED))
    hi = skewness_statistic(make_dataset("hi_skewed", NP, seed=SEED))
    assert uniform < skewed < hi
