"""Fig. 10 — road-network simulation (synthetic Illinois substitute)."""

from __future__ import annotations

from repro.motion import make_dataset, skewness_statistic
from repro.roadnet import RoadNetworkModel, roadnet_dataset, synthetic_road_network

from conftest import SEED

N_ROAD = 2_000


def test_network_generation(benchmark):
    network = benchmark(synthetic_road_network, 20, 0.25, 0.85, None, SEED)
    assert network.is_connected()


def test_simulation_step(benchmark):
    model = RoadNetworkModel(N_ROAD, seed=SEED)
    benchmark(model.step)


def test_fig10_skew_between_uniform_and_clusters():
    """Fig. 17's characterisation of the road data's skew level."""
    road = skewness_statistic(roadnet_dataset(N_ROAD, warmup_cycles=30, seed=SEED))
    uniform = skewness_statistic(make_dataset("uniform", N_ROAD, seed=SEED))
    skewed = skewness_statistic(make_dataset("skewed", N_ROAD, seed=SEED))
    assert uniform < road < skewed
