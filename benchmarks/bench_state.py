"""Price the world-state plane: ingest + publish cost and copy counts.

Two arms:

* **Store micro-benchmark** — full-motion steady state straight against a
  :class:`~repro.state.WorldStore`: every cycle writes every row
  (``write_rows``) and flips an epoch (``publish``).  Reports the
  per-cycle ingest and publish cost and, for scale, what one full
  position-array copy of the same population costs — the price the
  double-buffer flip avoids paying.

* **End-to-end steady state** — a :class:`~repro.service.MonitoringSession`
  under full motion with a live registry.  The ``state.*`` counters must
  show the zero-copy pipeline: ``state.copies_per_cycle == 0`` and no
  carry-forward syncs once motion covers the population.  This is the
  same property the CI state-smoke job gates.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_state.py --np 10000 --cycles 50
"""

from __future__ import annotations

import argparse
import json
import platform
from time import perf_counter
from typing import Dict, List

import numpy as np

from repro.motion import make_dataset, make_queries
from repro.obs import MetricsRegistry
from repro.service import MonitoringSession
from repro.state import WorldStore


def bench_store(n_objects: int, cycles: int, seed: int) -> Dict:
    """Full-motion ingest + publish against a bare store."""
    rng = np.random.default_rng(seed)
    positions = make_dataset("uniform", n_objects, seed=seed)
    registry = MetricsRegistry()
    store = WorldStore(positions, registry=registry)
    store.publish()
    rows = np.arange(n_objects, dtype=np.intp)
    steps = [
        np.clip(positions + rng.uniform(-0.005, 0.005, positions.shape), 0, 1)
        for _ in range(cycles)
    ]

    ingest = publish = 0.0
    for step in steps:
        start = perf_counter()
        store.write_rows(rows, step)
        ingest += perf_counter() - start
        start = perf_counter()
        store.publish()
        publish += perf_counter() - start

    # The cost a naive single-buffer design would pay per flip.
    start = perf_counter()
    for _ in range(10):
        positions.copy()
    copy_cost = (perf_counter() - start) / 10

    return {
        "ingest_us_per_cycle": ingest / cycles * 1e6,
        "publish_us_per_cycle": publish / cycles * 1e6,
        "full_copy_us": copy_cost * 1e6,
        "synced_rows": registry.counter("state.synced_rows"),
        "publishes": registry.counter("state.publishes"),
        "full_copies": store.full_copies,
        "structural_copies": store.structural_copies,
    }


def bench_session(
    method: str, n_objects: int, n_queries: int, k: int, cycles: int, seed: int
) -> Dict:
    """Steady-state session cycles; the registry audits the copy counts."""
    rng = np.random.default_rng(seed)
    positions = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    registry = MetricsRegistry()
    gauges: List[float] = []
    with MonitoringSession(method, k=k, registry=registry) as session:
        for oid, xy in enumerate(positions):
            session.join_object(oid, xy)
        for xy in queries:
            session.register_query(xy)
        session.tick()
        synced_base = registry.counter("state.synced_rows")
        start = perf_counter()
        for _ in range(cycles):
            _, pos = session.population()
            step = np.clip(
                pos + rng.uniform(-0.005, 0.005, pos.shape), 0.0, 1.0
            )
            session.update_positions(step)
            session.tick()
            gauges.append(registry.gauge("state.copies_per_cycle"))
        elapsed = perf_counter() - start
        return {
            "method": method,
            "cycle_ms": elapsed / cycles * 1e3,
            "copies_per_cycle_max": max(gauges),
            "full_copies": session.store.full_copies,
            "structural_copies": session.store.structural_copies,
            "synced_rows_steady": registry.counter("state.synced_rows")
            - synced_base,
            "publishes": registry.counter("state.publishes"),
            "epoch": session.store.epoch,
        }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--np", type=int, default=10000, dest="n_objects")
    parser.add_argument("--nq", type=int, default=32, dest="n_queries")
    parser.add_argument("-k", type=int, default=6)
    parser.add_argument("--cycles", type=int, default=50)
    parser.add_argument("--method", default="fast_grid")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", default="BENCH_state.json")
    args = parser.parse_args(argv)

    store = bench_store(args.n_objects, args.cycles, args.seed)
    session = bench_session(
        args.method, args.n_objects, args.n_queries, args.k, args.cycles,
        args.seed,
    )

    result = {
        "np": args.n_objects,
        "nq": args.n_queries,
        "k": args.k,
        "cycles": args.cycles,
        "python": platform.python_version(),
        "store": store,
        "session": session,
    }
    print(
        f"store: ingest {store['ingest_us_per_cycle']:.1f}us + publish "
        f"{store['publish_us_per_cycle']:.1f}us per cycle "
        f"(one full copy would cost {store['full_copy_us']:.1f}us)"
    )
    print(
        f"session[{session['method']}]: {session['cycle_ms']:.2f}ms/cycle, "
        f"copies_per_cycle max {session['copies_per_cycle_max']:.0f}, "
        f"full_copies {session['full_copies']}, "
        f"steady-state synced rows {session['synced_rows_steady']:.0f}"
    )
    ok = (
        session["copies_per_cycle_max"] == 0.0
        and session["full_copies"] == 0
        and store["full_copies"] == 0
    )
    result["ok"] = ok
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
    print(f"summary written to {args.json}")
    if not ok:
        print("FAIL: steady-state cycle performed a full position-array copy")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
