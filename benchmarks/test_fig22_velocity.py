"""Fig. 22 — effect of object velocity on maintenance and answering."""

from __future__ import annotations

import pytest

from conftest import cycle_time, run_one_cycle

SLOW = 0.0005
FAST = 0.02


@pytest.mark.parametrize("vmax", [SLOW, FAST])
@pytest.mark.parametrize(
    "method", ["object_incremental", "query_indexing", "hierarchical_incremental"]
)
def test_cycle_vs_velocity(benchmark, skewed_positions, queries, method, vmax):
    benchmark(run_one_cycle(method, skewed_positions, queries, vmax=vmax))


def test_fig22a_one_level_incremental_grows(skewed_positions, queries):
    """Fig. 22(a): one-level incremental maintenance grows with velocity;
    rebuild does not."""
    incr_slow = cycle_time(
        "object_incremental", skewed_positions, queries, vmax=SLOW, cycles=5
    ).index_time
    incr_fast = cycle_time(
        "object_incremental", skewed_positions, queries, vmax=FAST, cycles=5
    ).index_time
    rebuild_slow = cycle_time(
        "object_overhaul", skewed_positions, queries, vmax=SLOW, cycles=5
    ).index_time
    rebuild_fast = cycle_time(
        "object_overhaul", skewed_positions, queries, vmax=FAST, cycles=5
    ).index_time
    assert incr_fast > incr_slow
    # Rebuild cost does not depend on velocity (allow generous timing noise).
    assert rebuild_fast < rebuild_slow * 3


def test_fig22a_hier_incremental_never_preferred(skewed_positions, queries):
    """Fig. 22(a): hierarchical incremental maintenance loses to rebuild
    at high velocity."""
    incremental = cycle_time(
        "hierarchical_incremental", skewed_positions, queries, vmax=FAST
    ).index_time
    rebuild = cycle_time(
        "hierarchical_rebuild", skewed_positions, queries, vmax=FAST
    ).index_time
    assert rebuild < incremental


def test_fig22b_query_index_incremental_wins(skewed_positions, queries):
    """Fig. 22(b): query-index incremental maintenance beats rebuild over
    a wide velocity range."""
    incremental = cycle_time(
        "query_indexing", skewed_positions, queries, vmax=0.005
    ).index_time
    rebuild = cycle_time(
        "query_indexing_rebuild", skewed_positions, queries, vmax=0.005
    ).index_time
    assert incremental < rebuild


def test_fig22c_incremental_answering_degrades(skewed_positions, queries):
    """Fig. 22(c): incremental answering degrades with velocity (looser
    lcrit estimates) while overhaul answering stays flat."""
    incr_slow = cycle_time(
        "object_incremental", skewed_positions, queries, vmax=SLOW, cycles=5
    ).answer_time
    incr_fast = cycle_time(
        "object_incremental", skewed_positions, queries, vmax=FAST, cycles=5
    ).answer_time
    over_slow = cycle_time(
        "object_overhaul", skewed_positions, queries, vmax=SLOW, cycles=5
    ).answer_time
    over_fast = cycle_time(
        "object_overhaul", skewed_positions, queries, vmax=FAST, cycles=5
    ).answer_time
    assert incr_fast > incr_slow
    assert over_fast < over_slow * 3
