"""Disabled-instrumentation overhead gate for the observability layer.

The contract: instrumentation is optional, and running *without* a
registry (the default — the shared no-op ``NULL_REGISTRY``/``NULL_TRACER``
pair) must cost under 3% of the cycle time.  The only cost the disabled
path adds over instrumentation-free code is the no-op emission sites
themselves: a ``tracer.span(...)`` call plus the with-protocol on the
shared null span, a ``metrics.inc(...)`` that is a ``pass``, and an
``enabled`` attribute check per gated block.  That cost is measured
directly::

    disabled_overhead = (spans/cycle * span_noop_cost
                         + incs/cycle * inc_noop_cost) / cycle_time

where the per-emission no-op costs come from a micro-benchmark run in
the same process, the emission counts per cycle come from a probe run of
the identical workload under *counting* null objects (``enabled=False``
like the real null pair, so every ``enabled`` guard behaves exactly as
in production, but each no-op invocation is tallied), and the cycle time
comes from the uninstrumented run.

The enabled arm's cost (live registry: span clocks, counter dicts,
per-cycle delta capture) is reported for information but not gated; it
is expected to be visible on sub-millisecond cycles and to vanish as
real per-cycle work grows.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --budget 0.03
"""

from __future__ import annotations

import argparse
import json
import platform
from time import perf_counter
from typing import Dict, List

from repro.bench.runner import measure_cycles
from repro.engines.registry import build_system
from repro.motion import RandomWalkModel, make_dataset, make_queries
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    WorkerTelemetry,
    write_history_jsonl,
)
from repro.obs.remote import ANSWER_SPAN, BUILD_SPAN
from repro.obs.tracing import _NULL_SPAN


class _CountingNullRegistry(NullRegistry):
    """Disabled registry that tallies how often its no-ops are invoked."""

    def __init__(self) -> None:
        super().__init__()
        self.emissions = 0
        self.by_name: Dict[str, int] = {}

    def inc(self, name, amount=1.0, labels=None):
        self.emissions += 1
        self.by_name[name] = self.by_name.get(name, 0) + 1

    def set_gauge(self, name, value, labels=None):
        self.emissions += 1

    def observe(self, name, value, bounds=None, labels=None):
        self.emissions += 1


class _CountingNullTracer:
    """Disabled tracer that tallies ``span()`` requests."""

    enabled = False
    registry = NULL_REGISTRY

    def __init__(self) -> None:
        self.emissions = 0

    def span(self, name):
        self.emissions += 1
        return _NULL_SPAN

    @property
    def depth(self):
        return 0


def measure_noop_costs(n: int = 200_000) -> Dict[str, float]:
    """Per-emission cost of the disabled path, in seconds."""
    start = perf_counter()
    for _ in range(n):
        with NULL_TRACER.span("x"):
            pass
    span_cost = (perf_counter() - start) / n

    start = perf_counter()
    for _ in range(n):
        NULL_REGISTRY.inc("x", 1.0)
    inc_cost = (perf_counter() - start) / n

    # The sharded worker's disabled path per task: a begin(False) plus the
    # two timing spans (real Tracer on the null registry — they measure
    # wall time for the build/answer split but record nowhere).
    telemetry = WorkerTelemetry()
    start = perf_counter()
    for _ in range(n // 10):
        tracer = telemetry.begin(False)
        with tracer.span(BUILD_SPAN):
            pass
        with tracer.span(ANSWER_SPAN):
            pass
    task_cost = (perf_counter() - start) / (n // 10)

    start = perf_counter()
    for _ in range(n):
        pass
    loop_cost = (perf_counter() - start) / n
    return {
        "span_noop_s": max(span_cost - loop_cost, 0.0),
        "inc_noop_s": max(inc_cost - loop_cost, 0.0),
        "task_noop_s": max(task_cost - loop_cost, 0.0),
    }


def _engine_config(method: str, workers: int) -> Dict:
    if method != "sharded":
        return {}
    # Oversubscribe so --workers 2 means two real processes even on a
    # single-core CI box — the gate is about instrumentation cost, and
    # the cross-process shipping path only exists with workers > 0.
    return {"workers": workers, "oversubscribe": True}


def _one_run(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    instrumented: bool,
    workers: int = 2,
):
    positions = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=0.005, seed=seed + 2)
    kwargs = {"registry": MetricsRegistry()} if instrumented else {}
    kwargs.update(_engine_config(method, workers))
    system = build_system(method, k, queries, **kwargs)
    try:
        timing = measure_cycles(system, positions, motion, cycles=cycles)
    finally:
        system.close()  # worker pools must not outlive their measurement
    return timing, system


def count_disabled_emissions(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    workers: int = 2,
) -> Dict[str, float]:
    """Exact no-op emission counts per steady-state cycle.

    Runs the workload once with counting null objects swapped in: their
    ``enabled`` is False, so every guard and branch takes exactly the
    production disabled path, and each surviving no-op call is tallied.
    ``tasks_per_cycle`` counts dispatched shard tasks (zero for
    single-process methods) — each one costs the worker-side disabled
    path (a telemetry ``begin`` plus two unrecorded timing spans) that
    parent-side counting cannot see.
    """
    positions = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=0.005, seed=seed + 2)
    system = build_system(method, k, queries, **_engine_config(method, workers))
    registry = _CountingNullRegistry()
    tracer = _CountingNullTracer()
    system.pipeline.bind(registry, tracer)
    try:
        system.load(positions)
        spans_before = tracer.emissions
        incs_before = registry.emissions
        tasks_before = registry.by_name.get("shard.tasks", 0)
        for _ in range(cycles):
            positions = motion.step(positions)
            system.tick(positions)
        tasks = registry.by_name.get("shard.tasks", 0) - tasks_before
    finally:
        system.close()
    return {
        "spans_per_cycle": (tracer.emissions - spans_before) / cycles,
        "incs_per_cycle": (registry.emissions - incs_before) / cycles,
        "tasks_per_cycle": tasks / cycles,
    }


def bench_overhead(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    repeats: int,
    seed: int,
    workers: int = 2,
) -> Dict:
    """Interleaved enabled/disabled repeats; min-of-repeats comparison."""
    # Warm-up pair (allocator pools, numpy internals, import side effects).
    _one_run(method, n_objects, n_queries, k, cycles, seed, False, workers)
    _one_run(method, n_objects, n_queries, k, cycles, seed, True, workers)

    disabled: List[float] = []
    enabled: List[float] = []
    last_instrumented = None
    for repeat in range(repeats):
        timing_off, _ = _one_run(
            method, n_objects, n_queries, k, cycles, seed + repeat, False, workers
        )
        timing_on, system_on = _one_run(
            method, n_objects, n_queries, k, cycles, seed + repeat, True, workers
        )
        disabled.append(timing_off.total_time)
        enabled.append(timing_on.total_time)
        last_instrumented = system_on

    best_off = min(disabled)
    best_on = min(enabled)

    emissions = count_disabled_emissions(
        method, n_objects, n_queries, k, cycles, seed, workers
    )
    spans_per_cycle = emissions["spans_per_cycle"]
    incs_per_cycle = emissions["incs_per_cycle"]
    tasks_per_cycle = emissions["tasks_per_cycle"]
    noop = measure_noop_costs()
    disabled_emission_cost = (
        spans_per_cycle * noop["span_noop_s"]
        + incs_per_cycle * noop["inc_noop_s"]
        + tasks_per_cycle * noop["task_noop_s"]
    )
    cycle_time = best_off / cycles
    return {
        "method": method,
        "np": n_objects,
        "nq": n_queries,
        "k": k,
        "cycles": cycles,
        "repeats": repeats,
        "workers": workers if method == "sharded" else None,
        "disabled_best_s": best_off,
        "enabled_best_s": best_on,
        "spans_per_cycle": spans_per_cycle,
        "incs_per_cycle": incs_per_cycle,
        "tasks_per_cycle": tasks_per_cycle,
        "span_noop_s": noop["span_noop_s"],
        "inc_noop_s": noop["inc_noop_s"],
        "task_noop_s": noop["task_noop_s"],
        "disabled_overhead": disabled_emission_cost / max(cycle_time, 1e-12),
        "enabled_overhead": best_on / max(best_off, 1e-12) - 1.0,
        "disabled_samples_s": disabled,
        "enabled_samples_s": enabled,
        "instrumented_system": last_instrumented,
    }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--method", default="object_overhaul")
    parser.add_argument("--np", type=int, default=5000, dest="n_objects")
    parser.add_argument("--nq", type=int, default=64, dest="n_queries")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes for --method sharded (oversubscribed, so CI "
        "boxes still fork real workers); ignored for other methods",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=0.03,
        help="max allowed disabled-instrumentation overhead "
        "(fraction of cycle time, default 0.03 = 3%%)",
    )
    parser.add_argument(
        "--enabled-budget",
        type=float,
        default=None,
        help="optionally also gate the enabled arm's measured wall-time "
        "overhead (fraction, e.g. 0.25); off by default because "
        "sub-millisecond cycles make it noisy",
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        help="write the instrumented arm's per-cycle event log here",
    )
    parser.add_argument(
        "--json",
        default="BENCH_obs_overhead.json",
        help="summary output path",
    )
    args = parser.parse_args(argv)

    result = bench_overhead(
        args.method,
        args.n_objects,
        args.n_queries,
        args.k,
        args.cycles,
        args.repeats,
        args.seed,
        args.workers,
    )
    system = result.pop("instrumented_system")
    if args.jsonl and system is not None:
        lines = write_history_jsonl(system, args.jsonl)
        print(f"wrote {lines} cycle records to {args.jsonl}")

    result["python"] = platform.python_version()
    result["budget"] = args.budget
    print(
        f"{result['method']}: disabled cycle {result['disabled_best_s']:.6f}s, "
        f"enabled cycle {result['enabled_best_s']:.6f}s"
    )
    print(
        f"no-op emission sites: {result['spans_per_cycle']:.1f} spans + "
        f"{result['incs_per_cycle']:.1f} incs + "
        f"{result['tasks_per_cycle']:.1f} worker tasks per cycle at "
        f"{result['span_noop_s'] * 1e9:.0f}ns / {result['inc_noop_s'] * 1e9:.0f}ns / "
        f"{result['task_noop_s'] * 1e9:.0f}ns each"
    )
    print(
        f"disabled overhead {result['disabled_overhead'] * 100:.3f}% "
        f"(budget {args.budget * 100:.1f}%), "
        f"enabled overhead {result['enabled_overhead'] * 100:+.2f}% (informational)"
    )

    ok = result["disabled_overhead"] <= args.budget
    enabled_ok = (
        args.enabled_budget is None
        or result["enabled_overhead"] <= args.enabled_budget
    )
    result["ok"] = ok and enabled_ok
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
    print(f"summary written to {args.json}")
    if not ok:
        print("FAIL: disabled-instrumentation overhead exceeds budget")
        return 1
    if not enabled_ok:
        print("FAIL: enabled-instrumentation overhead exceeds --enabled-budget")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
