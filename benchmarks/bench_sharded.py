"""Standalone benchmark: sharded engine worker scaling vs fast grid.

Measures mean per-cycle wall-clock time of the stripe-sharded
multiprocess engine across worker-pool sizes (workers ∈ {1, 2, 4, 8} by
default, shards = workers) at several object populations, with the
single-process ``fast_grid`` engine and the ``workers=0`` serial
fallback as baselines.  Writes ``BENCH_sharded.json`` so the scaling
curve can be tracked across commits.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_sharded.py
    PYTHONPATH=src python benchmarks/bench_sharded.py --np 100000 --workers 1 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

from repro.bench.runner import measure_cycles
from repro.engines.registry import build_system
from repro.motion import RandomWalkModel, make_dataset, make_queries


def bench_variant(
    method: str,
    options: Dict,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    vmax: float,
) -> Dict:
    """Mean cycle timings of one engine variant at one population."""
    positions = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(vmax=vmax, seed=seed + 2)
    system = build_system(method, k, queries, **options)
    try:
        timing = measure_cycles(system, positions, motion, cycles=cycles)
        entry: Dict = {
            "index_s": timing.index_time,
            "answer_s": timing.answer_time,
            "total_s": timing.total_time,
        }
        if method == "sharded":
            entry["respawns"] = system.engine.respawns
    finally:
        system.close()
    return entry


def bench_population(
    n_objects: int,
    n_queries: int,
    k: int,
    workers_sweep: List[int],
    cycles: int,
    seed: int,
    vmax: float,
) -> Dict:
    """One row of the benchmark: fast grid + every worker count at NP."""
    variants: Dict[str, Dict] = {
        "fast_grid": bench_variant(
            "fast_grid", {}, n_objects, n_queries, k, cycles, seed, vmax
        ),
        "sharded_serial": bench_variant(
            "sharded",
            {"workers": 0, "shards": max(workers_sweep)},
            n_objects, n_queries, k, cycles, seed, vmax,
        ),
    }
    for workers in workers_sweep:
        variants[f"workers={workers}"] = bench_variant(
            "sharded",
            {"workers": workers},
            n_objects, n_queries, k, cycles, seed, vmax,
        )
    lo, hi = min(workers_sweep), max(workers_sweep)
    return {
        "np": n_objects,
        "variants": variants,
        "speedup_maxw_vs_1w": (
            variants[f"workers={lo}"]["total_s"]
            / max(variants[f"workers={hi}"]["total_s"], 1e-12)
        ),
    }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--np",
        dest="populations",
        type=int,
        nargs="+",
        default=[100_000, 1_000_000],
        help="object populations to sweep (default: 100000 1000000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="worker-pool sizes to sweep (default: 1 2 4 8)",
    )
    parser.add_argument("--nq", type=int, default=1_000, help="query count")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--vmax", type=float, default=0.005)
    parser.add_argument(
        "--out", default="BENCH_sharded.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    runs = []
    for n_objects in args.populations:
        started = time.perf_counter()
        run = bench_population(
            n_objects, args.nq, args.k, args.workers, args.cycles,
            args.seed, args.vmax,
        )
        runs.append(run)
        per_worker = ", ".join(
            f"w{w}={run['variants'][f'workers={w}']['total_s'] * 1e3:.1f}ms"
            for w in args.workers
        )
        print(
            f"NP={n_objects}: fast_grid "
            f"{run['variants']['fast_grid']['total_s'] * 1e3:.1f}ms/cycle, "
            f"{per_worker} [{time.perf_counter() - started:.1f}s]"
        )

    payload = {
        "benchmark": "sharded_worker_scaling",
        "workload": {
            "nq": args.nq,
            "k": args.k,
            "cycles": args.cycles,
            "seed": args.seed,
            "vmax": args.vmax,
            "dataset": "uniform",
            "workers_sweep": args.workers,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
        },
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
