"""Fig. 14 — Query-Index build/maintenance time vs NP."""

from __future__ import annotations

from repro.core.query_index import QueryIndex
from repro.motion import RandomWalkModel, make_dataset

from conftest import K, NP, SEED, cycle_time


def test_query_index_rebuild(benchmark, uniform_positions, queries):
    index = QueryIndex(queries, K, n_objects=NP)
    index.bootstrap(uniform_positions)
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": uniform_positions}

    def rebuild():
        state["positions"] = motion.step(state["positions"])
        index.rebuild_index(state["positions"])
        index.answer(state["positions"])

    benchmark(rebuild)


def test_query_index_incremental_update(benchmark, uniform_positions, queries):
    index = QueryIndex(queries, K, n_objects=NP)
    index.bootstrap(uniform_positions)
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": uniform_positions}

    def update():
        state["positions"] = motion.step(state["positions"])
        index.update_index(state["positions"])
        index.answer(state["positions"])

    benchmark(update)


def test_fig14_build_grows_sublinearly(queries):
    """Fig. 14: maintenance time rises with NP but slower than linearly."""
    times = []
    for n in (NP // 4, NP * 4):
        timing = cycle_time(
            "query_indexing_rebuild", make_dataset("uniform", n, seed=SEED), queries
        )
        times.append(timing.index_time)
    assert times[-1] < times[0] * 16
