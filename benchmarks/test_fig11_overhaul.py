"""Fig. 11 — overhaul Object-Indexing: linear in NQ, build linear in NP,
query answering ~constant in NP."""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import linearity_r2
from repro.core.object_index import ObjectIndex
from repro.motion import make_dataset, make_queries

from conftest import K, NP, SEED, cycle_time


def test_index_build(benchmark, uniform_positions):
    index = ObjectIndex(n_objects=NP)
    benchmark(index.build, uniform_positions)
    assert index.n_objects == NP


def test_query_answering(benchmark, uniform_positions, queries):
    index = ObjectIndex(n_objects=NP)
    index.build(uniform_positions)

    def answer_all():
        for qx, qy in queries:
            index.knn_overhaul(qx, qy, K)

    benchmark(answer_all)


def test_fig11a_linear_in_nq(uniform_positions):
    """Fig. 11(a): total time linear in NQ."""
    times = []
    nqs = [50, 100, 200, 400]
    for nq in nqs:
        timing = cycle_time(
            "object_overhaul", uniform_positions, make_queries(nq, seed=SEED + 1)
        )
        times.append(timing.total_time)
    assert linearity_r2(nqs, times) > 0.9


def test_fig11b_answering_constant_in_np(queries):
    """Fig. 11(b): answer time nearly flat while NP quadruples."""
    answer_times = []
    index_times = []
    nps = [NP // 4, NP, NP * 4]
    for n in nps:
        timing = cycle_time(
            "object_overhaul", make_dataset("uniform", n, seed=SEED), queries
        )
        answer_times.append(timing.answer_time)
        index_times.append(timing.index_time)
    # Build time grows clearly with NP; answering stays within a small factor.
    assert index_times[-1] > index_times[0] * 4
    assert max(answer_times) < min(answer_times) * 3
