"""Fig. 16 — effect of the grid cell size; optimum near delta = 1/sqrt(NP)."""

from __future__ import annotations

import math

import pytest

from conftest import NP, cycle_time

OPTIMAL = int(round(math.sqrt(NP)))


@pytest.mark.parametrize("ncells", [OPTIMAL // 8, OPTIMAL, OPTIMAL * 8])
def test_cell_size_sweep(benchmark, uniform_positions, queries, ncells):
    from conftest import run_one_cycle

    benchmark(
        run_one_cycle("object_overhaul", uniform_positions, queries, ncells=ncells)
    )


def test_fig16_optimum_near_sqrt_np(uniform_positions, queries):
    """Fig. 16: too-coarse and too-fine grids both lose to delta*."""
    at_optimal = cycle_time(
        "object_overhaul", uniform_positions, queries, ncells=OPTIMAL, cycles=3
    ).total_time
    too_coarse = cycle_time(
        "object_overhaul", uniform_positions, queries, ncells=max(2, OPTIMAL // 10),
        cycles=3,
    ).total_time
    too_fine = cycle_time(
        "object_overhaul", uniform_positions, queries, ncells=OPTIMAL * 10, cycles=3
    ).total_time
    assert at_optimal < too_coarse
    assert at_optimal < too_fine
