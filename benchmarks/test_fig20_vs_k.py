"""Fig. 20 — scalability with respect to k (skewed data)."""

from __future__ import annotations

import pytest

from conftest import cycle_time, run_one_cycle


@pytest.mark.parametrize("method", ["hierarchical_rebuild", "object_overhaul", "query_indexing"])
@pytest.mark.parametrize("k", [1, 10, 20])
def test_cycle_vs_k(benchmark, skewed_positions, queries, method, k):
    benchmark(run_one_cycle(method, skewed_positions, queries, k=k))


def test_fig20_roughly_linear_in_k(skewed_positions, queries):
    """Fig. 20: cost grows with k but far slower than quadratically."""
    for method in ("hierarchical_rebuild", "object_overhaul", "query_indexing"):
        at_1 = cycle_time(method, skewed_positions, queries, k=1).total_time
        at_20 = cycle_time(method, skewed_positions, queries, k=20).total_time
        assert at_20 > at_1 * 0.8
        assert at_20 < at_1 * 60


def test_fig20_rtree_an_order_slower(skewed_positions, queries):
    """Fig. 20 (text): R-trees omitted from the plot for being ~10x slower."""
    grid = cycle_time("hierarchical_rebuild", skewed_positions, queries, k=10).total_time
    rtree = cycle_time("rtree_bottom_up", skewed_positions, queries, k=10).total_time
    assert rtree > grid * 2
