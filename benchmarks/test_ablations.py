"""Ablation benches for the design choices DESIGN.md calls out."""

from __future__ import annotations

import pytest

from repro.core.hierarchical import HierarchicalObjectIndex

from conftest import cycle_time, run_one_cycle


@pytest.mark.parametrize("delta0", [0.5, 0.1, 0.05])
def test_hier_delta0(benchmark, skewed_positions, queries, delta0):
    benchmark(run_one_cycle("hierarchical_rebuild", skewed_positions, queries, delta0=delta0))


def test_hier_delta0_robustness(skewed_positions, queries):
    """§4: the hierarchical index is robust to its (coarse) initial cell
    size — variation stays within a small factor."""
    times = [
        cycle_time(
            "hierarchical_rebuild", skewed_positions, queries, cycles=3, delta0=delta0
        ).total_time
        for delta0 in (0.5, 0.25, 0.1, 0.05)
    ]
    assert max(times) < min(times) * 5


@pytest.mark.parametrize("nc,m", [(5, 3), (10, 3), (20, 3), (10, 2), (10, 4)])
def test_hier_params(benchmark, skewed_positions, queries, nc, m):
    benchmark(
        run_one_cycle(
            "hierarchical_rebuild",
            skewed_positions,
            queries,
            max_cell_load=nc,
            split_factor=m,
        )
    )


def test_hier_small_nc_costs_memory(skewed_positions):
    """Smaller max cell loads buy resolution with more cells."""
    def cells(nc):
        index = HierarchicalObjectIndex(delta0=0.1, max_cell_load=nc)
        index.build(skewed_positions)
        return sum(index.cell_counts())

    assert cells(5) > cells(20)


@pytest.mark.parametrize("sorted_cells", [False, True])
def test_container_choice(benchmark, uniform_positions, queries, sorted_cells):
    """§3.2 container ablation: sorted vs plain per-cell lists."""
    import numpy as np

    from repro.core.object_index import ObjectIndex
    from repro.motion import RandomWalkModel

    index = ObjectIndex(n_objects=len(uniform_positions), sorted_cells=sorted_cells)
    index.build(uniform_positions)
    motion = RandomWalkModel(vmax=0.005, seed=99)
    state = {"positions": uniform_positions}

    def update():
        state["positions"] = motion.step(state["positions"])
        index.update(state["positions"])

    benchmark(update)


def test_strict_vs_tight_rcrit(skewed_positions, queries):
    """Critical-rectangle ablation: the paper's cell-centred Rcrit vs the
    tighter disc-covering rectangle — both exact, tight never slower by
    much (it scans a subset of the cells)."""
    import time

    from repro.core.object_index import ObjectIndex

    def answer_time(strict):
        index = ObjectIndex(n_objects=len(skewed_positions), strict_paper_rcrit=strict)
        index.build(skewed_positions)
        start = time.perf_counter()
        for qx, qy in queries:
            index.knn_overhaul(qx, qy, 10)
        return time.perf_counter() - start

    tight = answer_time(False)
    strict = answer_time(True)
    assert tight < strict * 1.5
