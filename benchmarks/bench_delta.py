"""Standalone benchmark: incremental delta-CSR vs full CSR rebuild.

Sweeps object population x maximum speed and measures, for ``fast_grid``
(full CSR rebuild every cycle) and ``delta_grid`` (two-regime
incremental maintenance + dirty-region answer reuse), the mean per-cycle
index-maintenance time (the ``snapshot_csr`` stage slot), answer time,
and total cycle time.  Writes ``BENCH_delta.json`` so the maintenance
speedup can be tracked across commits.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_delta.py
    PYTHONPATH=src python benchmarks/bench_delta.py --np 1000000 --vmax 0.001 0.005 0.02
    PYTHONPATH=src python benchmarks/bench_delta.py --np 20000 --assert-speedup 1.5

``--assert-speedup X`` exits non-zero unless delta maintenance beats the
full rebuild by at least ``X``x in every swept configuration — the CI
smoke job uses it as a perf-regression gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List

from repro.engines.base import CycleTiming
from repro.engines.registry import build_system
from repro.motion import RandomWalkModel, make_dataset, make_queries
from repro.obs.registry import MetricsRegistry


def bench_one(
    method: str,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    vmax: float,
    update_fraction: float,
) -> Dict:
    positions = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    motion = RandomWalkModel(
        vmax=vmax, seed=seed + 2, update_fraction=update_fraction
    )
    registry = MetricsRegistry()
    system = build_system(method, k, queries, registry=registry)
    current = positions
    system.load(current)
    for _ in range(cycles):
        current = motion.step(current)
        system.tick(current)
    stages = system.engine.mean_stage_times()
    timing = CycleTiming.from_history(system.history)
    entry: Dict = {
        "maintain_s": stages["snapshot_csr"],
        "answer_s": stages["radii"] + stages["gather"] + stages["select"],
        "total_s": timing.total_time,
        "stages": stages,
    }
    if method == "delta_grid":
        entry["counters"] = {
            name: registry.counter(name)
            for name in (
                "delta.patch_cycles",
                "delta.rebuild_cycles",
                "delta.compactions",
                "delta.queries_reused",
                "delta.queries_reanswered",
            )
        }
    return entry


def bench_config(
    n_objects: int,
    vmax: float,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    update_fraction: float,
) -> Dict:
    engines = {
        method: bench_one(
            method, n_objects, n_queries, k, cycles, seed, vmax,
            update_fraction,
        )
        for method in ("fast_grid", "delta_grid")
    }
    full = engines["fast_grid"]["maintain_s"]
    delta = engines["delta_grid"]["maintain_s"]
    return {
        "np": n_objects,
        "vmax": vmax,
        "engines": engines,
        "maintain_speedup_delta_vs_full": full / max(delta, 1e-12),
    }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--np",
        dest="populations",
        type=int,
        nargs="+",
        default=[100_000, 1_000_000],
        help="object populations to sweep (default: 100000 1000000)",
    )
    parser.add_argument(
        "--vmax",
        type=float,
        nargs="+",
        default=[0.005],
        help="maximum per-cycle displacements to sweep (default: 0.005)",
    )
    parser.add_argument("--nq", type=int, default=1_000, help="query count")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--update-fraction",
        type=float,
        default=1.0,
        help="fraction of objects moving per cycle (default: 1.0, "
        "the paper's workload; lower values exercise the patch regime)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless delta maintenance is >= X times faster than "
        "the full rebuild in every configuration",
    )
    parser.add_argument(
        "--out", default="BENCH_delta.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    runs = []
    for n_objects in args.populations:
        for vmax in args.vmax:
            started = time.perf_counter()
            run = bench_config(
                n_objects, vmax, args.nq, args.k, args.cycles, args.seed,
                args.update_fraction,
            )
            runs.append(run)
            print(
                f"NP={n_objects} vmax={vmax}: "
                f"delta maintain {run['engines']['delta_grid']['maintain_s'] * 1e3:.1f}ms, "
                f"full rebuild {run['engines']['fast_grid']['maintain_s'] * 1e3:.1f}ms "
                f"({run['maintain_speedup_delta_vs_full']:.2f}x), "
                f"delta total {run['engines']['delta_grid']['total_s'] * 1e3:.1f}ms/cycle "
                f"[{time.perf_counter() - started:.1f}s]"
            )

    payload = {
        "benchmark": "delta_csr_vs_full_rebuild",
        "workload": {
            "nq": args.nq,
            "k": args.k,
            "cycles": args.cycles,
            "seed": args.seed,
            "update_fraction": args.update_fraction,
            "dataset": "uniform",
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.out}")

    if args.assert_speedup is not None:
        failing = [
            run
            for run in runs
            if run["maintain_speedup_delta_vs_full"] < args.assert_speedup
        ]
        if failing:
            for run in failing:
                print(
                    f"FAIL NP={run['np']} vmax={run['vmax']}: maintenance "
                    f"speedup {run['maintain_speedup_delta_vs_full']:.2f}x "
                    f"< required {args.assert_speedup:g}x"
                )
            return 1
        print(f"speedup gate passed (>= {args.assert_speedup:g}x everywhere)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
