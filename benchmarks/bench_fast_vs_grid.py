"""Standalone benchmark: fast CSR engine vs paper-faithful Object-Indexing.

Measures mean per-cycle wall-clock time (index maintenance + query
answering) for the vectorized CSR engine and the overhaul/incremental
Object-Indexing engines, and writes a ``BENCH_fast_grid.json`` with the
fast engine's per-stage breakdown (snapshot_csr / radii / gather /
select) so the speedup can be tracked across commits.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_fast_vs_grid.py
    PYTHONPATH=src python benchmarks/bench_fast_vs_grid.py --np 10000 --cycles 3
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List

from repro.bench.runner import measure_cycles
from repro.engines.registry import build_system
from repro.motion import RandomWalkModel, make_dataset, make_queries

ENGINES = ("object_overhaul", "object_incremental", "fast_grid")


def bench_population(
    n_objects: int, n_queries: int, k: int, cycles: int, seed: int, vmax: float
) -> Dict:
    """One row of the benchmark: every engine at a fixed NP."""
    engines: Dict[str, Dict] = {}
    for method in ENGINES:
        positions = make_dataset("uniform", n_objects, seed=seed)
        queries = make_queries(n_queries, seed=seed + 1)
        motion = RandomWalkModel(vmax=vmax, seed=seed + 2)
        system = build_system(method, k, queries)
        timing = measure_cycles(system, positions, motion, cycles=cycles)
        entry: Dict = {
            "index_s": timing.index_time,
            "answer_s": timing.answer_time,
            "total_s": timing.total_time,
        }
        if method == "fast_grid":
            entry["stages"] = system.engine.mean_stage_times()
        engines[method] = entry
    baseline = engines["object_overhaul"]["total_s"]
    fast = engines["fast_grid"]["total_s"]
    return {
        "np": n_objects,
        "engines": engines,
        "speedup_fast_vs_overhaul": baseline / max(fast, 1e-12),
    }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--np",
        dest="populations",
        type=int,
        nargs="+",
        default=[10_000, 100_000],
        help="object populations to sweep (default: 10000 100000)",
    )
    parser.add_argument("--nq", type=int, default=1_000, help="query count")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--vmax", type=float, default=0.005)
    parser.add_argument(
        "--out", default="BENCH_fast_grid.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    runs = []
    for n_objects in args.populations:
        started = time.perf_counter()
        run = bench_population(
            n_objects, args.nq, args.k, args.cycles, args.seed, args.vmax
        )
        runs.append(run)
        print(
            f"NP={n_objects}: fast_grid {run['engines']['fast_grid']['total_s'] * 1e3:.1f}ms/cycle, "
            f"object_overhaul {run['engines']['object_overhaul']['total_s'] * 1e3:.1f}ms/cycle, "
            f"speedup {run['speedup_fast_vs_overhaul']:.1f}x "
            f"[{time.perf_counter() - started:.1f}s]"
        )

    payload = {
        "benchmark": "fast_grid_vs_object_indexing",
        "workload": {
            "nq": args.nq,
            "k": args.k,
            "cycles": args.cycles,
            "seed": args.seed,
            "vmax": args.vmax,
            "dataset": "uniform",
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "runs": runs,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"written: {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
