"""Benchmarks for the §6 future-work extensions (RkNN, GNN, join, range)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gnn import GNNMonitor
from repro.core.object_index import ObjectIndex
from repro.core.range_monitor import CircleRegion, RangeMonitor, RectRegion
from repro.core.rknn import RKNNMonitor
from repro.core.self_join import SelfJoinMonitor
from repro.motion import RandomWalkModel, make_dataset, make_queries

from conftest import SEED

N_OBJECTS = 3_000


@pytest.fixture(scope="module")
def positions():
    return make_dataset("skewed", N_OBJECTS, seed=SEED)


def test_self_join_cycle(benchmark, positions):
    monitor = SelfJoinMonitor(5)
    monitor.tick(positions)  # warm start: later cycles run incrementally
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": positions}

    def cycle():
        state["positions"] = motion.step(state["positions"])
        monitor.tick(state["positions"])

    benchmark(cycle)


def test_self_join_incremental_beats_overhaul(positions):
    """The §3.2 incremental trick pays off for the self-join too."""
    import time

    def run(incremental):
        monitor = SelfJoinMonitor(5, incremental=incremental)
        motion = RandomWalkModel(vmax=0.003, seed=SEED + 2)
        current = positions
        monitor.tick(current)
        start = time.perf_counter()
        for _ in range(3):
            current = motion.step(current)
            monitor.tick(current)
        return time.perf_counter() - start

    assert run(True) < run(False)


def test_rknn_cycle(benchmark, positions):
    queries = make_queries(20, seed=SEED + 1)
    monitor = RKNNMonitor(5, queries)
    monitor.tick(positions)
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": positions}

    def cycle():
        state["positions"] = motion.step(state["positions"])
        monitor.tick(state["positions"])

    benchmark(cycle)


def test_gnn_cycle(benchmark, positions):
    groups = [make_queries(4, seed=SEED + g) for g in range(10)]
    monitor = GNNMonitor(5, groups, aggregate="sum")
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": positions}

    def cycle():
        state["positions"] = motion.step(state["positions"])
        monitor.tick(state["positions"])

    benchmark(cycle)


def test_gnn_beats_brute_force(positions):
    """The centroid-pruned search beats scanning every object for a
    localized group (friends meeting downtown).  Widely dispersed groups
    weaken the centroid bound toward a full scan — inherent to GNN."""
    import time

    from repro.core.gnn import GroupQuery, brute_force_group_knn, group_knn

    rng = np.random.default_rng(SEED)
    anchor = rng.random(2) * 0.8 + 0.1
    group_points = np.clip(
        anchor + rng.uniform(-0.05, 0.05, size=(4, 2)), 0.0, 1.0 - 1e-9
    )
    index = ObjectIndex(n_objects=len(positions))
    index.build(positions)
    group = GroupQuery(group_points)

    start = time.perf_counter()
    for _ in range(20):
        group_knn(index, group, 5, "sum")
    pruned = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(20):
        brute_force_group_knn(positions, group_points, 5, "sum")
    brute = time.perf_counter() - start
    assert pruned < brute


def test_knn_join_cycle(benchmark, positions):
    from repro.core.knn_join import KNNJoinMonitor

    taxis = make_dataset("uniform", 200, seed=SEED + 5)
    join = KNNJoinMonitor(5)
    join.tick(taxis, positions)  # warm start for the incremental path
    motion_a = RandomWalkModel(vmax=0.005, seed=SEED + 6)
    motion_b = RandomWalkModel(vmax=0.005, seed=SEED + 7)
    state = {"a": taxis, "b": positions}

    def cycle():
        state["a"] = motion_a.step(state["a"])
        state["b"] = motion_b.step(state["b"])
        join.tick(state["a"], state["b"])

    benchmark(cycle)


def test_knn_join_closest_pairs_exact(positions):
    from repro.core.knn_join import KNNJoinMonitor

    taxis = make_dataset("uniform", 100, seed=SEED + 5)
    join = KNNJoinMonitor(3)
    join.tick(taxis, positions)
    pairs = join.closest_pairs(3)
    diffs = taxis[:, None, :] - positions[None, :, :]
    all_d = np.sort(np.sqrt(np.sum(diffs * diffs, axis=2)), axis=None)
    got = [round(d, 12) for _, _, d in pairs]
    want = [round(float(d), 12) for d in all_d[:3]]
    assert got == want


def test_range_monitor_cycle(benchmark, positions):
    regions = [
        RectRegion(0.1, 0.1, 0.3, 0.3),
        CircleRegion(0.5, 0.5, 0.1),
        RectRegion(0.6, 0.2, 0.9, 0.4),
        CircleRegion(0.2, 0.8, 0.15),
    ]
    monitor = RangeMonitor(regions)
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": positions}

    def cycle():
        state["positions"] = motion.step(state["positions"])
        monitor.tick(state["positions"])

    benchmark(cycle)


def test_range_monitor_beats_brute(positions):
    """The query grid avoids testing every object against every region."""
    import time

    from repro.core.range_monitor import brute_force_range

    regions = [CircleRegion(0.1 * i, 0.1 * i, 0.05) for i in range(1, 9)]
    monitor = RangeMonitor(regions)
    start = time.perf_counter()
    for _ in range(5):
        monitor.tick(positions)
    gridded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(5):
        brute_force_range(positions, regions)
    brute = time.perf_counter() - start
    assert gridded < brute
