"""Fig. 17 — effect of data skew on all five index structures."""

from __future__ import annotations

import pytest

from repro.motion import make_dataset

from conftest import NP, SEED, cycle_time, run_one_cycle

METHODS = [
    "hierarchical_rebuild",
    "object_overhaul",
    "query_indexing",
    "rtree_overhaul",
    "rtree_bottom_up",
]


@pytest.mark.parametrize("method", METHODS)
def test_cycle_on_skewed(benchmark, skewed_positions, queries, method):
    benchmark(run_one_cycle(method, skewed_positions, queries))


def test_fig17_hierarchical_robust_to_skew(queries):
    """Fig. 17: the hierarchical index degrades less with skew than the
    one-level index."""
    uniform = make_dataset("uniform", NP, seed=SEED)
    hi = make_dataset("hi_skewed", NP, seed=SEED)
    one_uniform = cycle_time("object_overhaul", uniform, queries).total_time
    one_hi = cycle_time("object_overhaul", hi, queries).total_time
    hier_uniform = cycle_time("hierarchical_rebuild", uniform, queries).total_time
    hier_hi = cycle_time("hierarchical_rebuild", hi, queries).total_time
    assert hier_hi / hier_uniform < one_hi / one_uniform


def test_fig17_grids_beat_rtree_on_skew(skewed_positions):
    """Fig. 17/18: every grid method beats the R-tree baselines once the
    query workload is non-trivial (the paper uses NQ=5000)."""
    from repro.motion import make_queries

    many_queries = make_queries(500, seed=SEED + 1)
    rtree = cycle_time("rtree_overhaul", skewed_positions, many_queries).total_time
    for method in ("hierarchical_rebuild", "object_overhaul", "query_indexing"):
        assert (
            cycle_time(method, skewed_positions, many_queries).total_time < rtree
        )
