"""Fig. 19 — performance vs number of queries NQ (skewed data)."""

from __future__ import annotations

import pytest

from repro.motion import make_queries

from conftest import SEED, cycle_time, run_one_cycle


@pytest.mark.parametrize("method", ["query_indexing", "object_overhaul", "hierarchical_rebuild"])
@pytest.mark.parametrize("nq", [50, 200])
def test_grid_cycle_vs_nq(benchmark, skewed_positions, method, nq):
    queries = make_queries(nq, seed=SEED + 1)
    benchmark(run_one_cycle(method, skewed_positions, queries))


@pytest.mark.parametrize("method", ["rtree_overhaul", "rtree_bottom_up"])
def test_rtree_cycle(benchmark, skewed_positions, queries, method):
    benchmark(run_one_cycle(method, skewed_positions, queries))


def test_fig19a_qi_wins_small_workloads(skewed_positions):
    """Fig. 19(a): Query-Indexing gives the best performance for small
    query workloads."""
    few = make_queries(20, seed=SEED + 1)
    qi = cycle_time("query_indexing", skewed_positions, few).total_time
    oi = cycle_time("object_overhaul", skewed_positions, few).total_time
    hier = cycle_time("hierarchical_rebuild", skewed_positions, few).total_time
    assert qi < oi
    assert qi < hier


def test_fig19b_bottom_up_loses_ground_with_np(queries):
    """Fig. 18(b)/19(b): bottom-up beats insertion rebuild "for relatively
    small populations only" — its relative advantage shrinks as NP grows
    (the full crossover lies beyond benchmark-scale populations; see
    EXPERIMENTS.md)."""
    from repro.motion import make_dataset

    from conftest import NP, SEED

    ratios = []
    for n in (NP // 4, NP * 2):
        positions = make_dataset("skewed", n, seed=SEED)
        overhaul = cycle_time(
            "rtree_overhaul", positions, queries, cycles=2
        ).index_time
        bottom_up = cycle_time(
            "rtree_bottom_up", positions, queries, cycles=2
        ).index_time
        ratios.append(bottom_up / overhaul)
    assert ratios[1] > ratios[0]


def test_fig19b_bottom_up_maintenance_not_free(skewed_positions, queries):
    """Fig. 19(b) driver: bottom-up maintenance costs far more than a
    packed rebuild, so it cannot win once rebuilds are cheap."""
    bottom_up = cycle_time("rtree_bottom_up", skewed_positions, queries).index_time
    str_bulk = cycle_time("rtree_str_bulk", skewed_positions, queries).index_time
    assert bottom_up > str_bulk * 2
