"""§3 analysis validation — Theorem 1, Pr(exit), and the brute-force floor."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.cost_model import (
    expected_knn_radius_uniform,
    optimal_cell_size,
    pr_exit,
)
from repro.core.object_index import ObjectIndex
from repro.motion import RandomWalkModel, make_dataset

from conftest import K, NP, SEED, queries


def test_brute_force_floor(benchmark, uniform_positions, queries):
    def answer_all():
        for qx, qy in queries:
            brute_force_knn(uniform_positions, qx, qy, K)

    benchmark(answer_all)


def test_theorem1_lcrit_prediction(uniform_positions):
    """lcrit measured on uniform data matches sqrt(k / (pi NP))."""
    index = ObjectIndex(n_objects=NP)
    index.build(uniform_positions)
    rng = np.random.default_rng(SEED)
    radii = []
    for _ in range(200):
        qx, qy = rng.random(2)
        answer = index.knn_overhaul(qx, qy, K)
        radii.append(answer.kth_dist())
    measured = float(np.mean(radii))
    predicted = expected_knn_radius_uniform(K, NP)
    assert measured == pytest.approx(predicted, rel=0.15)


def test_theorem1_optimal_cell_size_beats_neighbors(uniform_positions, queries):
    """Per-query answering near delta* is no worse than far-off settings."""
    optimal = int(round(1.0 / optimal_cell_size(NP)))

    def answer_time(ncells):
        import time

        index = ObjectIndex(ncells=ncells)
        index.build(uniform_positions)
        start = time.perf_counter()
        for qx, qy in queries:
            index.knn_overhaul(qx, qy, K)
        return time.perf_counter() - start

    assert answer_time(optimal) < answer_time(max(2, optimal // 16)) * 1.5
    assert answer_time(optimal) < answer_time(optimal * 16) * 1.5


def test_pr_exit_predicts_measured_moves(uniform_positions):
    """The closed-form Pr(exit) predicts the measured mover fraction."""
    index = ObjectIndex(n_objects=NP)
    index.build(uniform_positions)
    vmax = 0.01
    motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
    moves = index.update(motion.step(uniform_positions))
    predicted = pr_exit(index.delta, vmax)
    measured = moves / NP
    assert measured == pytest.approx(predicted, abs=0.05)
