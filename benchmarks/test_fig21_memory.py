"""Fig. 21 — memory footprint of the hierarchical object-index."""

from __future__ import annotations

from repro.core.cost_model import linearity_r2
from repro.core.hierarchical import HierarchicalObjectIndex
from repro.motion import DispersionProcess, make_dataset

from conftest import NP, SEED


def build_index(positions):
    index = HierarchicalObjectIndex(delta0=0.1, max_cell_load=10, split_factor=3)
    index.build(positions)
    return index


def test_hierarchical_build(benchmark, skewed_positions):
    index = benchmark(build_index, skewed_positions)
    assert index.n_objects == NP


def test_fig21a_cells_linear_in_np():
    """Fig. 21(a): index and leaf cell counts are linear in NP."""
    nps = [NP // 4, NP // 2, NP, NP * 2]
    index_cells = []
    leaf_cells = []
    for n in nps:
        index = build_index(make_dataset("skewed", n, seed=SEED))
        ic, lc = index.cell_counts()
        index_cells.append(ic)
        leaf_cells.append(lc)
    assert linearity_r2(nps, index_cells) > 0.9
    assert linearity_r2(nps, leaf_cells) > 0.9


def test_fig21b_dispersion_shrinks_footprint():
    """Fig. 21(b): cell counts decrease as clusters disperse, converging
    toward the uniform-data footprint."""
    steps = 8
    process = DispersionProcess(NP, steps=steps, seed=SEED)
    index = build_index(process.positions_at(0))
    totals = [sum(index.cell_counts())]
    for step in range(1, steps + 1):
        index.update(process.positions_at(step))
        totals.append(sum(index.cell_counts()))
    uniform_total = sum(
        build_index(make_dataset("uniform", NP, seed=SEED)).cell_counts()
    )
    assert totals[-1] < totals[0]
    assert totals[-1] <= uniform_total * 2
