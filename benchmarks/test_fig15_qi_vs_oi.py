"""Fig. 15 — Query-Indexing vs Object-Indexing as NQ grows."""

from __future__ import annotations

import pytest

from repro.motion import make_queries

from conftest import SEED, cycle_time, run_one_cycle


@pytest.mark.parametrize("method", ["query_indexing", "object_overhaul"])
def test_cycle(benchmark, uniform_positions, queries, method):
    benchmark(run_one_cycle(method, uniform_positions, queries))


def test_fig15_qi_wins_for_few_queries(uniform_positions):
    """Fig. 15: with very few queries QI avoids the object-index build and
    must win — the paper's stated reason for the small-NQ regime.  (The
    exact crossover location is measured by `python -m repro.bench fig15`;
    at benchmark scale only the small-NQ ordering is asserted.)"""
    few = make_queries(10, seed=SEED + 1)
    qi_few = cycle_time("query_indexing", uniform_positions, few, cycles=3).total_time
    oi_few = cycle_time("object_overhaul", uniform_positions, few, cycles=3).total_time
    assert qi_few < oi_few
