"""Standalone benchmark: incremental churn absorption vs full rebuild.

Two workloads, each at 1% / 5% / 20% per-cycle churn:

* **query churn** (the headline) — a fraction of the query set drops and
  the same number of fresh queries registers each cycle.  The session
  path admits the batch through ``apply_query_delta``, which carries the
  survivors' answers, critical rectangles, and k-th-distance seeds
  across the swap, so only the fresh queries are re-answered.  The
  baseline is what the pre-session API forced: a wholesale
  ``set_queries`` swap, which drops *all* per-query reuse state and
  re-answers every query from scratch.

* **object churn** — a fraction of the population leaves and the same
  number of fresh objects joins each cycle.  The session path patches
  membership through ``apply_object_delta`` (the delta-CSR grid treats
  joins and leaves as movers); the baseline builds a fresh system from
  the survivors every cycle (``build_system`` + ``load``), the only way
  to change the object set before the churn subsystem existed.

Motion is off by default so the measurement isolates the cost of churn
itself; pass ``--vmax`` to add a per-cycle random-walk step on top (a
large walk pushes the delta grid out of its patch regime, at which point
both paths converge on rebuild cost).

Writes ``BENCH_churn.json`` with the per-rate ratios so the delta
advantage can be tracked across commits.  The headline number: at small
churn (<= 5%) the delta-grid session absorbs a query-churned cycle in
well under half the cost of a full ``set_queries`` rebuild.

Not collected by pytest (no ``test_`` prefix) — run it directly::

    PYTHONPATH=src python benchmarks/bench_churn.py
    PYTHONPATH=src python benchmarks/bench_churn.py --np 20000 --cycles 5
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, List

import numpy as np

from repro.engines.registry import build_system
from repro.motion import make_dataset, make_queries
from repro.service import MonitoringSession

METHODS = ("delta_grid", "fast_grid")
RATES = (0.01, 0.05, 0.20)


def _walk(rng: np.random.Generator, pos: np.ndarray, vmax: float) -> np.ndarray:
    if vmax <= 0.0:
        return pos
    step = rng.uniform(-vmax, vmax, size=pos.shape)
    return np.clip(pos + step, 0.0, 1.0)


def bench_query_churn(
    method: str,
    rate: float,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    vmax: float,
) -> Dict:
    """Mean query-churned cycle seconds: session vs set_queries swap."""
    rng = np.random.default_rng(seed)
    base = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    n_churn = max(1, int(rate * n_queries))

    # --- session path: survivors keep their reuse state ----------------
    session = MonitoringSession(method, k=k)
    for oid in range(n_objects):
        session.join_object(oid, base[oid])
    handles = [session.register_query(q) for q in queries]
    session.tick()  # initial build outside the measurement
    churned = 0.0
    for _ in range(cycles):
        dropped = {int(i) for i in
                   rng.choice(len(handles), size=n_churn, replace=False)}
        for i in dropped:
            session.drop_query(handles[i])
        handles = [h for i, h in enumerate(handles) if i not in dropped]
        for q in rng.random((n_churn, 2)):
            handles.append(session.register_query(q))
        if vmax > 0.0:
            session.update_positions(_walk(rng, session.population()[1], vmax))
        t0 = time.perf_counter()
        session.tick()
        churned += time.perf_counter() - t0
    session.close()

    # --- baseline: wholesale set_queries swap, all reuse state lost ----
    rng = np.random.default_rng(seed)
    pos = base.copy()
    qset = queries.copy()
    system = build_system(method, k, qset)
    system.load(pos)
    swapped = 0.0
    for _ in range(cycles):
        drop = rng.choice(len(qset), size=n_churn, replace=False)
        keep = np.setdiff1d(np.arange(len(qset)), drop)
        qset = np.concatenate([qset[keep], rng.random((n_churn, 2))])
        pos = _walk(rng, pos, vmax)
        t0 = time.perf_counter()
        system.engine.set_queries(qset)
        system.tick(pos)
        swapped += time.perf_counter() - t0
    system.close()

    churned_cycle = churned / cycles
    swap_cycle = swapped / cycles
    return {
        "churn_rate": rate,
        "churned_cycle_s": churned_cycle,
        "set_queries_cycle_s": swap_cycle,
        "ratio": churned_cycle / max(swap_cycle, 1e-12),
    }


def bench_object_churn(
    method: str,
    rate: float,
    n_objects: int,
    n_queries: int,
    k: int,
    cycles: int,
    seed: int,
    vmax: float,
) -> Dict:
    """Mean object-churned cycle seconds: session vs fresh rebuild."""
    rng = np.random.default_rng(seed)
    base = make_dataset("uniform", n_objects, seed=seed)
    queries = make_queries(n_queries, seed=seed + 1)
    n_churn = max(1, int(rate * n_objects))

    # --- session path: churn absorbed through the delta hooks ----------
    session = MonitoringSession(method, k=k)
    for oid in range(n_objects):
        session.join_object(oid, base[oid])
    for q in queries:
        session.register_query(q)
    session.tick()
    next_oid = n_objects
    churned = 0.0
    for _ in range(cycles):
        ids, pos = session.population()
        for oid in rng.choice(ids, size=n_churn, replace=False):
            session.leave_object(int(oid))
        for xy in rng.random((n_churn, 2)):
            session.join_object(next_oid, xy)
            next_oid += 1
        if vmax > 0.0:
            session.update_positions(_walk(rng, pos, vmax))
        t0 = time.perf_counter()
        session.tick()
        churned += time.perf_counter() - t0
    session.close()

    # --- baseline: fresh system from the survivors every cycle ---------
    rng = np.random.default_rng(seed)
    pos = base.copy()
    rebuilt = 0.0
    for _ in range(cycles):
        drop = rng.choice(len(pos), size=n_churn, replace=False)
        keep = np.setdiff1d(np.arange(len(pos)), drop)
        pos = np.concatenate([pos[keep], rng.random((n_churn, 2))])
        pos = _walk(rng, pos, vmax)
        t0 = time.perf_counter()
        system = build_system(method, k, queries)
        system.load(pos)
        rebuilt += time.perf_counter() - t0
        system.close()

    churned_cycle = churned / cycles
    rebuild_cycle = rebuilt / cycles
    return {
        "churn_rate": rate,
        "churned_cycle_s": churned_cycle,
        "rebuild_cycle_s": rebuild_cycle,
        "ratio": churned_cycle / max(rebuild_cycle, 1e-12),
    }


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--np", type=int, default=50_000, dest="n_objects")
    parser.add_argument("--nq", type=int, default=400)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cycles", type=int, default=15)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--vmax", type=float, default=0.0)
    parser.add_argument("--out", default="BENCH_churn.json")
    args = parser.parse_args(argv)

    result = {
        "benchmark": "churn_vs_full_rebuild",
        "workload": {
            "np": args.n_objects,
            "nq": args.nq,
            "k": args.k,
            "cycles": args.cycles,
            "seed": args.seed,
            "vmax": args.vmax,
            "rates": list(RATES),
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "methods": {},
    }
    for method in METHODS:
        entry = {"query_churn": [], "object_churn": []}
        for rate in RATES:
            row = bench_query_churn(
                method, rate, args.n_objects, args.nq, args.k,
                args.cycles, args.seed, args.vmax,
            )
            entry["query_churn"].append(row)
            print(
                f"{method} query-churn={rate:>5.0%}  "
                f"session {row['churned_cycle_s'] * 1e3:8.2f} ms/cycle  "
                f"set_queries {row['set_queries_cycle_s'] * 1e3:8.2f} ms/cycle  "
                f"ratio {row['ratio']:.3f}"
            )
        for rate in RATES:
            row = bench_object_churn(
                method, rate, args.n_objects, args.nq, args.k,
                args.cycles, args.seed, args.vmax,
            )
            entry["object_churn"].append(row)
            print(
                f"{method} object-churn={rate:>4.0%}  "
                f"session {row['churned_cycle_s'] * 1e3:8.2f} ms/cycle  "
                f"rebuild {row['rebuild_cycle_s'] * 1e3:8.2f} ms/cycle  "
                f"ratio {row['ratio']:.3f}"
            )
        result["methods"][method] = entry

    delta_small = [
        r for r in result["methods"]["delta_grid"]["query_churn"]
        if r["churn_rate"] <= 0.05
    ]
    result["findings"] = [
        "delta_grid query-churned cycle < 0.5x full set_queries rebuild "
        f"at <=5% churn: {all(r['ratio'] < 0.5 for r in delta_small)}"
    ]
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=1)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
