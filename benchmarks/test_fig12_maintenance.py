"""Fig. 12 — overhaul vs incremental Object-Index maintenance vs velocity."""

from __future__ import annotations

import pytest

from repro.core.object_index import ObjectIndex
from repro.motion import RandomWalkModel

from conftest import NP, SEED, cycle_time


@pytest.mark.parametrize("vmax", [0.0005, 0.005])
def test_incremental_update(benchmark, uniform_positions, vmax):
    index = ObjectIndex(n_objects=NP)
    index.build(uniform_positions)
    motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
    state = {"positions": uniform_positions}

    def update():
        state["positions"] = motion.step(state["positions"])
        index.update(state["positions"])

    benchmark(update)


def test_overhaul_rebuild(benchmark, uniform_positions):
    index = ObjectIndex(n_objects=NP)
    motion = RandomWalkModel(vmax=0.005, seed=SEED + 2)
    state = {"positions": uniform_positions}

    def rebuild():
        state["positions"] = motion.step(state["positions"])
        index.build(state["positions"])

    benchmark(rebuild)


def test_fig12_incremental_grows_with_velocity(uniform_positions, queries):
    """Fig. 12: incremental maintenance cost increases with vmax while
    overhaul stays flat."""
    incr_slow = cycle_time(
        "object_incremental", uniform_positions, queries, vmax=0.0005, cycles=5
    ).index_time
    incr_fast = cycle_time(
        "object_incremental", uniform_positions, queries, vmax=0.02, cycles=5
    ).index_time
    over_slow = cycle_time(
        "object_overhaul", uniform_positions, queries, vmax=0.0005, cycles=5
    ).index_time
    over_fast = cycle_time(
        "object_overhaul", uniform_positions, queries, vmax=0.02, cycles=5
    ).index_time
    assert incr_fast > incr_slow * 2
    # Rebuild cost does not depend on velocity (allow generous timing noise).
    assert over_fast < over_slow * 3
