"""Shared fixtures and helpers for the pytest-benchmark suite.

Every module in this directory regenerates one figure of the paper at a
benchmark-friendly size (a few thousand objects, a couple of hundred
queries) and asserts the figure's *qualitative* claim.  The full-size
series are produced by ``python -m repro.bench <figure>``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import measure_cycles
from repro.engines.registry import build_system
from repro.motion import RandomWalkModel, make_dataset, make_queries

# Benchmark-scale reference workload.
NP = 8_000
NQ = 200
K = 10
VMAX = 0.005
SEED = 7


@pytest.fixture(scope="session")
def uniform_positions():
    return make_dataset("uniform", NP, seed=SEED)


@pytest.fixture(scope="session")
def skewed_positions():
    return make_dataset("skewed", NP, seed=SEED)


@pytest.fixture(scope="session")
def queries():
    return make_queries(NQ, seed=SEED + 1)


def cycle_time(method: str, positions: np.ndarray, queries: np.ndarray,
               k: int = K, vmax: float = VMAX, cycles: int = 2, **kwargs):
    """Mean cycle timing for one method on a given workload."""
    system = build_system(method, k, queries, **kwargs)
    motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
    return measure_cycles(system, positions, motion, cycles=cycles)


def run_one_cycle(method: str, positions: np.ndarray, queries: np.ndarray,
                  k: int = K, vmax: float = VMAX, **kwargs):
    """A closure suitable for the ``benchmark`` fixture: one full cycle.

    The system is loaded once outside the timed region; the timed callable
    performs maintenance + answering for a fresh motion step.
    """
    system = build_system(method, k, queries, **kwargs)
    system.load(positions)
    motion = RandomWalkModel(vmax=vmax, seed=SEED + 2)
    state = {"positions": positions}

    def one_cycle():
        state["positions"] = motion.step(state["positions"])
        system.tick(state["positions"])

    return one_cycle
