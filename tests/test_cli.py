"""Tests for the benchmark CLI (python -m repro.bench)."""

from __future__ import annotations

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig09"])
        assert args.figures == ["fig09"]
        assert args.scale == 1.0
        assert args.markdown is None
        assert args.csv is None

    def test_multiple_figures_and_scale(self):
        args = build_parser().parse_args(["fig09", "fig10", "--scale", "0.5"])
        assert args.figures == ["fig09", "fig10"]
        assert args.scale == 0.5


class TestMain:
    def test_list(self, capsys):
        assert main(["--list", "x"]) == 0
        out = capsys.readouterr().out
        assert "fig11a" in out
        assert "fig22c" in out
        assert "ablation_tpr_degeneration" in out

    def test_run_one_figure(self, capsys):
        assert main(["fig09", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "skew ordering" in out

    def test_markdown_and_csv_outputs(self, tmp_path, capsys):
        md = tmp_path / "out.md"
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "fig09",
                "--scale",
                "0.05",
                "--markdown",
                str(md),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert "### fig09" in md.read_text()
        csv_text = csv_path.read_text()
        assert csv_text.startswith("figure,dataset,")
        assert "fig09,uniform" in csv_text

    def test_unknown_figure_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["fig99"])
