"""Tests for the random-walk motion model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion.random_walk import RandomWalkModel, reflect_into_unit


class TestReflect:
    def test_inside_unchanged(self):
        points = np.asarray([[0.2, 0.8]])
        np.testing.assert_array_equal(reflect_into_unit(points), points)

    def test_small_overshoot(self):
        points = np.asarray([[1.1, -0.1]])
        np.testing.assert_allclose(reflect_into_unit(points), [[0.9, 0.1]])

    def test_large_overshoot(self):
        points = np.asarray([[2.3, -1.7]])
        reflected = reflect_into_unit(points)
        assert np.all((reflected >= 0.0) & (reflected <= 1.0))
        # 2.3 -> fold 0.3 beyond 2 -> 0.3 ; -1.7 -> mod 2 = 0.3 -> 0.3
        np.testing.assert_allclose(reflected, [[0.3, 0.3]])

    def test_boundary_exact(self):
        points = np.asarray([[1.0, 0.0]])
        np.testing.assert_allclose(reflect_into_unit(points), [[1.0, 0.0]])


class TestRandomWalkModel:
    def test_invalid_vmax(self):
        with pytest.raises(ConfigurationError):
            RandomWalkModel(vmax=-0.1)

    def test_invalid_boundary(self):
        with pytest.raises(ConfigurationError):
            RandomWalkModel(boundary="bounce")

    def test_zero_velocity_identity(self, uniform_1k):
        model = RandomWalkModel(vmax=0.0, seed=1)
        stepped = model.step(uniform_1k)
        np.testing.assert_array_equal(stepped, uniform_1k)
        assert stepped is not uniform_1k  # a copy, never an alias

    @pytest.mark.parametrize("boundary", ["reflect", "wrap", "clip"])
    def test_stays_in_unit_square(self, uniform_1k, boundary):
        model = RandomWalkModel(vmax=0.3, boundary=boundary, seed=2)
        current = uniform_1k
        for _ in range(10):
            current = model.step(current)
            assert np.all(current >= 0.0)
            assert np.all(current < 1.0)

    def test_displacement_bounded_interior(self):
        # Away from walls, per-axis displacement never exceeds vmax.
        rng = np.random.default_rng(3)
        points = 0.4 + 0.2 * rng.random((5000, 2))
        model = RandomWalkModel(vmax=0.01, seed=4)
        stepped = model.step(points)
        assert np.max(np.abs(stepped - points)) <= 0.01 + 1e-12

    def test_displacement_distribution(self):
        # Mean displacement of U[-v, v] is ~0, std is v/sqrt(3).
        rng = np.random.default_rng(5)
        points = 0.5 * np.ones((200_000, 2))
        model = RandomWalkModel(vmax=0.01, seed=6)
        displacement = model.step(points) - points
        assert abs(float(np.mean(displacement))) < 1e-4
        assert float(np.std(displacement)) == pytest.approx(0.01 / np.sqrt(3), rel=0.02)

    def test_seeded_reproducible(self, uniform_1k):
        a = RandomWalkModel(vmax=0.01, seed=7).step(uniform_1k)
        b = RandomWalkModel(vmax=0.01, seed=7).step(uniform_1k)
        np.testing.assert_array_equal(a, b)

    def test_run_yields_cycles(self, uniform_1k):
        model = RandomWalkModel(vmax=0.01, seed=8)
        snapshots = list(model.run(uniform_1k, cycles=5))
        assert len(snapshots) == 5
        for snap in snapshots:
            assert snap.shape == uniform_1k.shape
