"""Tests for answer deltas and the DeltaTracker."""

from __future__ import annotations

import pytest

from repro.core.answers import QueryAnswer
from repro.core.deltas import AnswerDelta, DeltaTracker, answer_delta
from repro.core.monitor import MonitoringSystem
from repro.motion import RandomWalkModel, make_dataset, make_queries


class TestAnswerDelta:
    def test_no_change(self):
        answer = [(1, 0.1), (2, 0.2)]
        delta = answer_delta(0, answer, answer)
        assert not delta.changed
        assert delta.churn == 0

    def test_entry_and_exit(self):
        previous = [(1, 0.1), (2, 0.2)]
        current = [(1, 0.1), (3, 0.15)]
        delta = answer_delta(0, previous, current)
        assert delta.entered == (3,)
        assert delta.left == (2,)
        assert delta.churn == 2
        assert delta.changed

    def test_reordering_detected(self):
        previous = [(1, 0.1), (2, 0.2)]
        current = [(2, 0.05), (1, 0.1)]
        delta = answer_delta(0, previous, current)
        assert delta.entered == ()
        assert delta.left == ()
        assert delta.reordered
        assert delta.changed
        assert delta.churn == 0

    def test_first_answer_all_entered(self):
        delta = answer_delta(3, [], [(5, 0.1), (7, 0.2)])
        assert delta.entered == (5, 7)
        assert delta.left == ()

    def test_query_id_passthrough(self):
        assert answer_delta(42, [], []).query_id == 42


class TestDeltaTracker:
    def _answers(self, neighbors_by_query, timestamp=0.0):
        return [
            QueryAnswer(query_id, timestamp, tuple(neighbors))
            for query_id, neighbors in enumerate(neighbors_by_query)
        ]

    def test_first_cycle_counts_entries(self):
        tracker = DeltaTracker()
        deltas = tracker.update(self._answers([[(1, 0.1)], [(2, 0.2)]]))
        assert all(d.entered for d in deltas)
        assert tracker.total_churn == 2

    def test_stable_answers_no_churn(self):
        tracker = DeltaTracker()
        answers = self._answers([[(1, 0.1)], [(2, 0.2)]])
        tracker.update(answers)
        deltas = tracker.update(answers)
        assert all(not d.changed for d in deltas)
        assert tracker.total_churn == 2  # only the initial entries

    def test_mean_churn(self):
        tracker = DeltaTracker()
        tracker.update(self._answers([[(1, 0.1)]]))
        tracker.update(self._answers([[(2, 0.1)]]))
        assert tracker.cycles == 2
        assert tracker.mean_churn_per_cycle() == pytest.approx((1 + 2) / 2)

    def test_empty_tracker(self):
        assert DeltaTracker().mean_churn_per_cycle() == 0.0

    def test_with_real_monitoring_system(self):
        objects = make_dataset("uniform", 500, seed=1)
        queries = make_queries(10, seed=2)
        system = MonitoringSystem.object_indexing(5, queries)
        tracker = DeltaTracker()
        tracker.update(system.load(objects))
        motion = RandomWalkModel(vmax=0.02, seed=3)
        for _ in range(5):
            objects = motion.step(objects)
            deltas = tracker.update(system.tick(objects))
            assert len(deltas) == 10
            # Entered/left come in matched sizes for a fixed k.
            for delta in deltas:
                assert len(delta.entered) == len(delta.left)
        assert tracker.cycles == 6
