"""Tests for continuous reverse k-NN monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rknn import RKNNMonitor, brute_force_rknn
from repro.errors import ConfigurationError
from repro.motion import RandomWalkModel, make_dataset, make_queries


class TestBruteForce:
    def test_small_example(self):
        # Three collinear objects; the query sits next to the left one.
        positions = np.asarray([[0.1, 0.5], [0.5, 0.5], [0.9, 0.5]])
        queries = np.asarray([[0.12, 0.5]])
        # k=1: each object's nearest other object distance is 0.4.
        # dist to query: 0.02, 0.38, 0.78 -> objects 0 and 1 qualify.
        answers = brute_force_rknn(positions, queries, 1)
        assert answers == [[0, 1]]

    def test_requires_enough_objects(self):
        with pytest.raises(ConfigurationError):
            brute_force_rknn(np.asarray([[0.5, 0.5]]), np.asarray([[0.1, 0.1]]), 1)


class TestRKNNMonitor:
    @pytest.mark.parametrize("dataset", ["uniform", "skewed"])
    @pytest.mark.parametrize("k", [1, 3])
    def test_matches_brute(self, dataset, k):
        positions = make_dataset(dataset, 400, seed=1)
        queries = make_queries(8, seed=2)
        monitor = RKNNMonitor(k, queries)
        got = monitor.tick(positions)
        want = brute_force_rknn(positions, queries, k)
        assert [sorted(g) for g in got] == [sorted(w) for w in want]

    def test_stays_exact_over_cycles(self):
        positions = make_dataset("uniform", 300, seed=3)
        queries = make_queries(5, seed=4)
        monitor = RKNNMonitor(2, queries)
        motion = RandomWalkModel(vmax=0.01, seed=5)
        for _ in range(4):
            positions = motion.step(positions)
            got = monitor.tick(positions)
            want = brute_force_rknn(positions, queries, 2)
            assert [sorted(g) for g in got] == [sorted(w) for w in want]

    def test_overhaul_mode(self):
        positions = make_dataset("uniform", 200, seed=6)
        queries = make_queries(4, seed=7)
        incremental = RKNNMonitor(2, queries, incremental=True)
        overhaul = RKNNMonitor(2, queries, incremental=False)
        motion = RandomWalkModel(vmax=0.01, seed=8)
        for _ in range(3):
            positions = motion.step(positions)
            a = incremental.tick(positions)
            b = overhaul.tick(positions)
            assert [sorted(x) for x in a] == [sorted(x) for x in b]

    def test_moving_queries(self):
        positions = make_dataset("uniform", 250, seed=9)
        queries = make_queries(5, seed=10)
        monitor = RKNNMonitor(2, queries)
        monitor.tick(positions)
        query_motion = RandomWalkModel(vmax=0.05, seed=11)
        queries = query_motion.step(queries)
        monitor.set_queries(queries)
        got = monitor.tick(positions)
        want = brute_force_rknn(positions, queries, 2)
        assert [sorted(g) for g in got] == [sorted(w) for w in want]

    def test_query_shape_change_rejected(self):
        monitor = RKNNMonitor(2, make_queries(5, seed=12))
        with pytest.raises(ConfigurationError):
            monitor.set_queries(make_queries(3, seed=13))

    def test_bad_query_shape(self):
        with pytest.raises(ConfigurationError):
            RKNNMonitor(2, np.zeros((3, 3)))

    def test_answer_can_be_empty(self):
        # A query far from a tight cluster is nobody's near neighbor.
        cluster = 0.45 + 0.02 * np.random.default_rng(14).random((50, 2))
        queries = np.asarray([[0.02, 0.02]])
        monitor = RKNNMonitor(1, queries)
        assert monitor.tick(cluster) == [[]]

    def test_kth_distances_exposed(self):
        positions = make_dataset("uniform", 100, seed=15)
        monitor = RKNNMonitor(2, make_queries(3, seed=16))
        monitor.tick(positions)
        dk = monitor.kth_distances()
        assert len(dk) == 100
        assert all(d >= 0.0 for d in dk)
