"""Unit tests for repro.grid.geometry."""

from __future__ import annotations

import math

import pytest

from repro.grid.geometry import (
    CellRect,
    cell_of,
    cells_ring,
    clamp,
    dist,
    dist2,
    min_dist2_point_box,
    min_dist2_point_cell,
    rect_centered,
    rect_for_radius,
    rect_paper_rcrit,
)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-0.1, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(1.7, 0.0, 1.0) == 1.0

    def test_boundaries(self):
        assert clamp(0.0, 0.0, 1.0) == 0.0
        assert clamp(1.0, 0.0, 1.0) == 1.0


class TestDistances:
    def test_dist2_zero(self):
        assert dist2(0.3, 0.4, 0.3, 0.4) == 0.0

    def test_dist2_pythagoras(self):
        assert dist2(0.0, 0.0, 3.0, 4.0) == 25.0

    def test_dist_matches_dist2(self):
        assert dist(0.0, 0.0, 3.0, 4.0) == pytest.approx(5.0)

    def test_dist_symmetry(self):
        assert dist(0.1, 0.2, 0.7, 0.9) == pytest.approx(dist(0.7, 0.9, 0.1, 0.2))


class TestCellOf:
    def test_origin(self):
        assert cell_of(0.0, 0.0, 0.1, 10) == (0, 0)

    def test_interior(self):
        assert cell_of(0.35, 0.75, 0.1, 10) == (3, 7)

    def test_cell_boundary_goes_up(self):
        # Use an exactly representable delta: a point on a cell border
        # belongs to the upper cell (half-open cells).
        assert cell_of(0.5, 0.25, 0.25, 4) == (2, 1)

    def test_upper_boundary_clamped(self):
        assert cell_of(1.0, 1.0, 0.1, 10) == (9, 9)

    def test_negative_clamped(self):
        assert cell_of(-0.01, -5.0, 0.1, 10) == (0, 0)

    def test_single_cell_grid(self):
        assert cell_of(0.9999, 0.0001, 1.0, 1) == (0, 0)


class TestCellRect:
    def test_counts(self):
        rect = CellRect(1, 2, 3, 5)
        assert rect.ncols == 3
        assert rect.nrows == 4
        assert rect.ncells == 12

    def test_contains(self):
        rect = CellRect(1, 1, 3, 3)
        assert (2, 2) in rect
        assert (1, 3) in rect
        assert (0, 2) not in rect
        assert (2, 4) not in rect

    def test_cells_enumeration(self):
        rect = CellRect(0, 0, 1, 1)
        assert list(rect.cells()) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_cells_count_matches_ncells(self):
        rect = CellRect(2, 3, 6, 4)
        assert len(list(rect.cells())) == rect.ncells

    def test_intersection_overlap(self):
        a = CellRect(0, 0, 4, 4)
        b = CellRect(2, 3, 8, 8)
        assert a.intersection(b) == CellRect(2, 3, 4, 4)

    def test_intersection_disjoint(self):
        a = CellRect(0, 0, 1, 1)
        b = CellRect(3, 3, 4, 4)
        assert a.intersection(b) is None

    def test_intersection_self(self):
        a = CellRect(1, 1, 2, 2)
        assert a.intersection(a) == a

    def test_cells_not_in_disjoint(self):
        a = CellRect(0, 0, 1, 1)
        b = CellRect(5, 5, 6, 6)
        assert set(a.cells_not_in(b)) == set(a.cells())

    def test_cells_not_in_subset(self):
        a = CellRect(0, 0, 2, 2)
        assert list(a.cells_not_in(a)) == []

    def test_cells_not_in_partial(self):
        a = CellRect(0, 0, 2, 2)
        b = CellRect(1, 1, 3, 3)
        difference = set(a.cells_not_in(b))
        expected = {cell for cell in a.cells() if cell not in b}
        assert difference == expected

    def test_cells_not_in_is_set_difference_everywhere(self):
        a = CellRect(2, 2, 6, 5)
        for b in (
            CellRect(0, 0, 3, 3),
            CellRect(4, 4, 9, 9),
            CellRect(3, 0, 4, 9),
            CellRect(0, 3, 9, 4),
        ):
            assert set(a.cells_not_in(b)) == set(a.cells()) - set(b.cells())


class TestRectCentered:
    def test_interior(self):
        assert rect_centered(5, 5, 2, 10) == CellRect(3, 3, 7, 7)

    def test_zero_size(self):
        assert rect_centered(4, 4, 0, 10) == CellRect(4, 4, 4, 4)

    def test_clamped_low(self):
        assert rect_centered(0, 1, 2, 10) == CellRect(0, 0, 2, 3)

    def test_clamped_high(self):
        assert rect_centered(9, 8, 3, 10) == CellRect(6, 5, 9, 9)

    def test_covers_whole_grid(self):
        assert rect_centered(5, 5, 100, 10) == CellRect(0, 0, 9, 9)


class TestRectForRadius:
    def test_zero_radius_single_cell(self):
        rect = rect_for_radius(0.55, 0.55, 0.0, 0.1, 10)
        assert rect == CellRect(5, 5, 5, 5)

    def test_covers_disc(self):
        qx, qy, radius = 0.52, 0.47, 0.13
        rect = rect_for_radius(qx, qy, radius, 0.1, 10)
        # Every point of the disc must be inside the covered area.
        for angle_deg in range(0, 360, 5):
            angle = math.radians(angle_deg)
            px = qx + radius * math.cos(angle)
            py = qy + radius * math.sin(angle)
            i, j = cell_of(px, py, 0.1, 10)
            assert (i, j) in rect

    def test_never_larger_than_paper_rect(self):
        for qx, qy, radius in [(0.5, 0.5, 0.2), (0.01, 0.9, 0.05), (0.33, 0.66, 0.4)]:
            tight = rect_for_radius(qx, qy, radius, 0.1, 10)
            paper = rect_paper_rcrit(qx, qy, radius, 0.1, 10)
            assert tight.ncells <= paper.ncells

    def test_paper_rect_covers_disc(self):
        qx, qy, radius = 0.41, 0.77, 0.17
        rect = rect_paper_rcrit(qx, qy, radius, 0.1, 10)
        for angle_deg in range(0, 360, 5):
            angle = math.radians(angle_deg)
            px = clampf(qx + radius * math.cos(angle))
            py = clampf(qy + radius * math.sin(angle))
            assert cell_of(px, py, 0.1, 10) in rect

    def test_clamped_at_border(self):
        rect = rect_for_radius(0.02, 0.98, 0.3, 0.1, 10)
        assert rect.ilo == 0
        assert rect.jhi == 9


def clampf(v: float) -> float:
    return min(max(v, 0.0), 1.0 - 1e-12)


class TestMinDist:
    def test_inside_box_is_zero(self):
        assert min_dist2_point_box(0.5, 0.5, 0.0, 0.0, 1.0, 1.0) == 0.0

    def test_left_of_box(self):
        assert min_dist2_point_box(-1.0, 0.5, 0.0, 0.0, 1.0, 1.0) == 1.0

    def test_corner(self):
        assert min_dist2_point_box(-3.0, -4.0, 0.0, 0.0, 1.0, 1.0) == 25.0

    def test_cell_version(self):
        # Cell (2, 3) with delta 0.1 covers [0.2, 0.3) x [0.3, 0.4).
        assert min_dist2_point_cell(0.25, 0.35, 2, 3, 0.1) == 0.0
        assert min_dist2_point_cell(0.1, 0.35, 2, 3, 0.1) == pytest.approx(0.01)


class TestCellsRing:
    def test_ring_zero_is_center(self):
        assert cells_ring(4, 4, 0, 10) == [(4, 4)]

    def test_ring_one_has_eight_cells(self):
        ring = cells_ring(4, 4, 1, 10)
        assert len(ring) == 8
        assert all(max(abs(i - 4), abs(j - 4)) == 1 for i, j in ring)

    def test_ring_l_has_8l_cells_interior(self):
        for level in (1, 2, 3):
            ring = cells_ring(5, 5, level, 20)
            assert len(ring) == 8 * level

    def test_rings_partition_rect(self):
        # Union of rings 0..l equals the centered rect of size l.
        cells = set()
        for level in range(4):
            cells.update(cells_ring(7, 7, level, 20))
        assert cells == set(rect_centered(7, 7, 3, 20).cells())

    def test_ring_clamped_at_corner(self):
        ring = cells_ring(0, 0, 1, 10)
        assert set(ring) == {(0, 1), (1, 1), (1, 0)}

    def test_ring_outside_grid_empty(self):
        assert cells_ring(0, 0, 25, 10) == []

    def test_no_duplicates(self):
        for level in range(6):
            ring = cells_ring(2, 8, level, 12)
            assert len(ring) == len(set(ring))

    def test_center_outside_grid(self):
        assert cells_ring(-5, -5, 0, 10) == []

    def test_offsets_memoized(self):
        from repro.grid.geometry import _ring_offsets

        _ring_offsets.cache_clear()
        cells_ring(4, 4, 2, 10)
        hits_before = _ring_offsets.cache_info().hits
        # Same level from different centers/grids reuses the cached offsets.
        cells_ring(9, 1, 2, 12)
        cells_ring(0, 0, 2, 30)
        assert _ring_offsets.cache_info().hits == hits_before + 2
        assert _ring_offsets.cache_info().misses == 1

    def test_memoized_rings_keep_translation_invariance(self):
        # The ring of (ci, cj) is the ring of (0, 0) translated, before
        # clamping; verify via an interior center where nothing clamps.
        for level in range(4):
            centered = cells_ring(10, 10, level, 40)
            origin = [(i - 10, j - 10) for i, j in centered]
            shifted = cells_ring(25, 17, level, 40)
            assert [(i - 25, j - 17) for i, j in shifted] == origin
