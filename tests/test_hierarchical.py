"""Unit and integration tests for the hierarchical Object-Index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.hierarchical import HierarchicalObjectIndex, _SubGrid
from repro.errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset
from tests.conftest import assert_same_distances


def built(points, **kwargs):
    index = HierarchicalObjectIndex(**kwargs)
    index.build(points)
    return index


class TestConstruction:
    def test_bad_delta0(self):
        with pytest.raises(ConfigurationError):
            HierarchicalObjectIndex(delta0=0.0)
        with pytest.raises(ConfigurationError):
            HierarchicalObjectIndex(delta0=1.5)

    def test_bad_load(self):
        with pytest.raises(ConfigurationError):
            HierarchicalObjectIndex(max_cell_load=0)

    def test_bad_split_factor(self):
        with pytest.raises(ConfigurationError):
            HierarchicalObjectIndex(split_factor=1)

    def test_bad_max_depth(self):
        with pytest.raises(ConfigurationError):
            HierarchicalObjectIndex(max_depth=0)

    def test_requires_build(self):
        index = HierarchicalObjectIndex()
        with pytest.raises(IndexStateError):
            index.knn_overhaul(0.5, 0.5, 1)
        with pytest.raises(IndexStateError):
            index.update(np.zeros((1, 2)))
        with pytest.raises(IndexStateError):
            index.validate()


class TestBuild:
    def test_uniform_small_stays_one_level(self):
        points = make_dataset("uniform", 50, seed=1)
        # 100 top cells, 50 objects, load 10: no splits expected.
        index = built(points, delta0=0.1, max_cell_load=10)
        assert index.depth() == 1
        index.validate()

    def test_skewed_splits(self, hi_skewed_1k):
        index = built(hi_skewed_1k, delta0=0.1, max_cell_load=10)
        assert index.depth() > 1
        index.validate()

    def test_no_leaf_overflows(self, hi_skewed_1k):
        index = built(hi_skewed_1k)
        index.validate()  # validate() checks the load invariant

    def test_counts(self, skewed_1k):
        index = built(skewed_1k)
        assert index.n_objects == 1000

    def test_cell_counts_structure(self, skewed_1k):
        index = built(skewed_1k, delta0=0.1, split_factor=3)
        index_cells, leaf_cells = index.cell_counts()
        assert index_cells > 0
        # Each split converts one leaf into an index cell plus m*m leaves.
        assert leaf_cells == 100 + index_cells * (3 * 3 - 1)

    def test_rebuild_resets(self, skewed_1k):
        index = built(skewed_1k)
        index.build(skewed_1k[:50])
        assert index.n_objects == 50
        index.validate()

    def test_coincident_points_respect_max_depth(self):
        points = np.full((100, 2), 0.5)
        index = built(points, max_depth=4)
        assert index.depth() <= 4
        index.validate()
        answer = index.knn_overhaul(0.5, 0.5, 10)
        assert answer.kth_dist() == 0.0


class TestKnn:
    @pytest.mark.parametrize("dataset", ["uniform", "skewed", "hi_skewed"])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_overhaul_matches_brute(self, dataset, k):
        points = make_dataset(dataset, 800, seed=3)
        index = built(points)
        for qx, qy in [(0.5, 0.5), (0.02, 0.98), (0.88, 0.12)]:
            got = index.knn_overhaul(qx, qy, k).neighbors()
            want = brute_force_knn(points, qx, qy, k)
            assert_same_distances(got, want)

    def test_k_too_large(self, uniform_1k):
        index = built(uniform_1k)
        with pytest.raises(NotEnoughObjectsError):
            index.knn_overhaul(0.5, 0.5, 1001)

    def test_k_equals_population(self):
        points = make_dataset("uniform", 30, seed=5)
        index = built(points)
        got = index.knn_overhaul(0.4, 0.4, 30).neighbors()
        want = brute_force_knn(points, 0.4, 0.4, 30)
        assert_same_distances(got, want)

    def test_incremental_matches_brute(self, skewed_1k):
        index = built(skewed_1k)
        previous = index.knn_overhaul(0.3, 0.3, 10).object_ids()
        motion = RandomWalkModel(vmax=0.005, seed=4)
        moved = motion.step(skewed_1k)
        index.update(moved)
        got = index.knn_incremental(0.3, 0.3, 10, previous).neighbors()
        want = brute_force_knn(moved, 0.3, 0.3, 10)
        assert_same_distances(got, want)

    def test_incremental_falls_back(self, uniform_1k):
        index = built(uniform_1k)
        got = index.knn_incremental(0.6, 0.6, 5, []).neighbors()
        want = brute_force_knn(uniform_1k, 0.6, 0.6, 5)
        assert_same_distances(got, want)

    def test_query_far_outside(self, uniform_1k):
        index = built(uniform_1k)
        got = index.knn_overhaul(2.0, 2.0, 5).neighbors()
        want = brute_force_knn(uniform_1k, 2.0, 2.0, 5)
        assert_same_distances(got, want)


class TestUpdate:
    def test_no_motion_no_moves(self, skewed_1k):
        index = built(skewed_1k)
        assert index.update(skewed_1k.copy()) == 0
        index.validate()

    def test_motion_preserves_invariants(self, skewed_1k):
        index = built(skewed_1k)
        motion = RandomWalkModel(vmax=0.02, seed=6)
        current = skewed_1k
        for _ in range(8):
            current = motion.step(current)
            index.update(current)
            index.validate()

    def test_queries_exact_after_updates(self, hi_skewed_1k):
        index = built(hi_skewed_1k)
        motion = RandomWalkModel(vmax=0.01, seed=6)
        current = hi_skewed_1k
        for _ in range(5):
            current = motion.step(current)
            index.update(current)
        for qx, qy in [(0.5, 0.5), (0.1, 0.9)]:
            got = index.knn_overhaul(qx, qy, 10).neighbors()
            want = brute_force_knn(current, qx, qy, 10)
            assert_same_distances(got, want)

    def test_collapse_happens(self):
        # Start clustered (forces splits), then teleport everything to be
        # uniform: cluster sub-grids must collapse away.
        clustered = make_dataset("hi_skewed", 500, seed=9)
        index = built(clustered, delta0=0.1, max_cell_load=10)
        deep_before = index.depth()
        assert deep_before > 1
        uniform = make_dataset("uniform", 500, seed=10)
        index.update(uniform)
        index.validate()
        index_cells_after, _ = index.cell_counts()
        index_before = built(uniform, delta0=0.1, max_cell_load=10)
        fresh_cells, _ = index_before.cell_counts()
        # The adapted structure approaches the fresh-built one.
        assert index_cells_after <= fresh_cells * 3 + 5

    def test_population_change_rejected(self, skewed_1k):
        index = built(skewed_1k)
        with pytest.raises(IndexStateError):
            index.update(skewed_1k[:10])


class TestAdaptiveMemory:
    def test_more_objects_more_cells(self):
        small = built(make_dataset("skewed", 300, seed=2))
        large = built(make_dataset("skewed", 3000, seed=2))
        assert sum(large.cell_counts()) > sum(small.cell_counts())

    def test_uniform_uses_fewer_cells_than_skewed(self):
        # delta0=0.1 with load 10: uniform 1000 objects spread at ~10 per
        # top cell rarely split; clusters split heavily.
        uniform = built(make_dataset("uniform", 1000, seed=2))
        skewed = built(make_dataset("hi_skewed", 1000, seed=2))
        assert sum(uniform.cell_counts()) < sum(skewed.cell_counts())
