"""Tests for the differential conformance harness (:mod:`repro.verify`).

Covers the four tentpole pieces end to end:

* trace round-trips through every on-disk format with exact float64;
* record -> replay is bit-identical (answers, digests, and ``verify.*``
  counters) across independent invocations;
* the differential runner sees every registered exact engine agree on a
  fuzzed workload — including ``sharded`` with live worker processes —
  and pins divergences to a cycle/query with counters attached;
* a deliberately injected tie-break bug (mutation test) is caught by the
  fuzzer and shrunk to a trace of at most 5 cycles.
"""

import json

import numpy as np
import pytest

from repro.core.answers import AnswerList
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.verify import (
    EXACT_METHODS,
    MethodSpec,
    TraceRecorder,
    Workload,
    canonical_cycle,
    churn_scenario,
    digest_cycle,
    load_trace,
    make_scenario,
    make_specs,
    replay,
    run_differential,
    run_metamorphic,
    run_workload,
    save_trace,
    scale_workload,
    shrink_workload,
    translate_workload,
    workload_valid,
)
from repro.verify.cli import main as cli_main


def tiny_workload(k=2):
    """Three cycles, lattice coordinates, one knife-edge distance tie."""
    return Workload(
        k=k,
        method="fast_grid",
        cycles=[
            [
                {"t": "join", "oid": 0, "xy": [0.5, 0.5]},
                {"t": "join", "oid": 1, "xy": [0.5, 0.75]},
                {"t": "join", "oid": 2, "xy": [0.75, 0.5]},  # tie with oid 1
                {"t": "join", "oid": 3, "xy": [0.1, 0.9]},
                {"t": "reg", "hid": 0, "xy": [0.5, 0.5]},
            ],
            [
                {
                    "t": "move",
                    "oids": [0, 1, 2, 3],
                    "xy": [[0.5, 0.5], [0.25, 0.5], [0.5, 0.25], [0.2, 0.9]],
                },
                {"t": "reg", "hid": 1, "xy": [0.75, 0.75]},
            ],
            [
                {"t": "leave", "oid": 3},
                {"t": "drop", "hid": 0},
            ],
        ],
    )


# ----------------------------------------------------------------------
# Trace round-trips
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    @pytest.mark.parametrize("ext", ["jsonl", "jsonl.gz", "npz"])
    def test_exact_roundtrip(self, tmp_path, ext):
        w = tiny_workload()
        # Awkward floats: 0.1 and 1/3 have no finite binary expansion, so
        # only shortest-repr (jsonl) / binary (npz) round-trips keep them.
        w.cycles[0][0]["xy"] = [0.1, 1.0 / 3.0]
        w.cycles[1][0]["xy"][0] = [np.nextafter(0.5, 1.0), 0.5]
        w.options = {"ncells": 8}
        w.meta = {"seed": 7}
        w.digests = ["ab" * 16, None, "cd" * 16]
        path = str(tmp_path / f"t.{ext}")
        save_trace(w, path)
        back = load_trace(path)
        assert back.k == w.k
        assert back.method == "fast_grid"
        assert back.options == {"ncells": 8}
        assert back.meta == {"seed": 7}
        assert back.cycles == w.cycles
        assert back.digests == w.digests

    def test_digestless_trace_loads_with_none(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        save_trace(tiny_workload(), path)
        assert load_trace(path).digests is None

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"t": "header", "version": 99, "k": 2}\n')
        with pytest.raises(ConfigurationError, match="version"):
            load_trace(str(path))

    def test_rejects_events_after_last_tick(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"t": "header", "version": 1, "k": 1}\n'
            '{"t": "join", "oid": 0, "xy": [0.5, 0.5]}\n'
        )
        with pytest.raises(ConfigurationError, match="after the last tick"):
            load_trace(str(path))

    def test_rejects_unknown_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"t": "header", "version": 1, "k": 1}\n{"t": "warp"}\n'
        )
        with pytest.raises(ConfigurationError, match="warp"):
            load_trace(str(path))

    def test_workload_valid(self):
        assert workload_valid(tiny_workload())
        bad = tiny_workload()
        bad.cycles[2].append({"t": "leave", "oid": 999})  # never joined
        assert not workload_valid(bad)
        under_k = tiny_workload(k=5)  # only 4 objects ever live
        assert not workload_valid(under_k)


# ----------------------------------------------------------------------
# Record -> replay bit-identity
# ----------------------------------------------------------------------
class TestRecordReplay:
    def test_recorded_trace_replays_bit_identically(self, tmp_path):
        scenario = make_scenario(11, cycles=8)
        recorder = TraceRecorder(
            scenario.workload.k,
            method="fast_grid",
            options=scenario.engine_overrides,
        )
        rec_run = run_workload(
            MethodSpec("fast_grid", scenario.engine_overrides),
            scenario.workload,
            recorder=recorder,
        )
        assert rec_run.ok
        path = str(tmp_path / "trace.jsonl.gz")
        recorder.save(path)

        trace = load_trace(path)
        assert trace.digests == rec_run.digests

        # Two independent replays from the file: answers, digests, and
        # verify.* counters must all be identical.
        outcomes = []
        for _ in range(2):
            registry = MetricsRegistry()
            result = replay(trace, check=True, registry=registry)
            assert result.ok and result.checked and not result.mismatches
            counters = {
                k: v
                for k, v in registry.counter_values().items()
                if k.startswith("verify.")
            }
            outcomes.append((result.run.answers, result.run.digests, counters))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] == rec_run.digests

    def test_recorder_hid_remap_survives_shrinking(self):
        # Dropping query hid=0 leaves a trace whose first surviving reg
        # carries hid=1; the replayer must remap it onto the fresh
        # session's handle 0 without touching the event stream.
        w = tiny_workload()
        w.cycles = [
            [ev for ev in events if not (ev["t"] in ("reg", "drop") and ev["hid"] == 0)]
            for events in w.cycles
        ]
        result = run_workload(MethodSpec("brute_force"), w)
        assert result.ok
        assert [hid for hid, _ in result.answers[1]] == [1]

    def test_replay_flags_tampered_digest(self, tmp_path):
        recorder = TraceRecorder(2, method="brute_force")
        run = run_workload(
            MethodSpec("brute_force"), tiny_workload(), recorder=recorder
        )
        assert run.ok
        trace = recorder.workload()
        trace.digests[1] = "0" * 32
        result = replay(trace, check=True)
        assert result.mismatches == [1]

    def test_replay_without_digests_requires_no_check(self):
        with pytest.raises(ValueError, match="no digests"):
            replay(tiny_workload(), check=True)

    def test_deferred_admissions_are_not_recorded(self):
        from repro.service import AdmissionDeferred, MonitoringSession

        recorder = TraceRecorder(1, method="brute_force")
        with MonitoringSession(
            "brute_force", k=1, max_pending_deltas=2
        ) as session:
            session.attach_recorder(recorder)
            assert session.join_object(0, (0.25, 0.25)) is None
            assert session.join_object(1, (0.75, 0.75)) is None
            deferred = session.join_object(2, (0.5, 0.5))
            assert isinstance(deferred, AdmissionDeferred)
            session.tick()
        trace = recorder.workload()
        assert [ev["oid"] for ev in trace.cycles[0] if ev["t"] == "join"] == [0, 1]
        assert workload_valid(trace)


# ----------------------------------------------------------------------
# Differential runner
# ----------------------------------------------------------------------
class TestDifferential:
    def test_all_exact_methods_agree(self):
        scenario = make_scenario(4, cycles=6)
        specs = make_specs(["all"], overrides=scenario.engine_overrides)
        assert [s.method for s in specs] == list(EXACT_METHODS)
        report = run_differential(scenario.workload, specs)
        assert report.ok, report.divergences or report.errors

    def test_sharded_live_workers_agree(self):
        scenario = make_scenario(2, cycles=4)
        specs = make_specs(
            ["brute_force", "sharded"], sharded_workers=2
        )
        assert specs[1].options["workers"] == 2
        report = run_differential(scenario.workload, specs)
        assert report.ok, report.divergences or report.errors

    def test_make_specs_filters_overrides_per_method(self):
        specs = make_specs(
            ["brute_force", "fast_grid"], overrides={"ncells": 8}
        )
        assert specs[0].options == {}  # brute force has no grid
        assert specs[1].options == {"ncells": 8}
        assert specs[1].label == "fast_grid(ncells=8)"

    def test_needs_two_specs(self):
        with pytest.raises(ValueError, match="two method specs"):
            run_differential(tiny_workload(), make_specs(["brute_force"]))

    def test_engine_error_is_captured_not_raised(self):
        w = tiny_workload(k=5)  # population never reaches k
        result = run_workload(MethodSpec("brute_force"), w)
        assert not result.ok
        assert "NotEnoughObjects" in result.error

    def test_divergence_pins_cycle_query_and_counters(self):
        base = run_workload(MethodSpec("brute_force"), tiny_workload())
        other = run_workload(MethodSpec("fast_grid"), tiny_workload())
        # Forge a divergence at cycle 1 by perturbing one stored answer.
        hid, neighbors = other.answers[1][0]
        other.answers[1] = ((hid, neighbors[:-1] + ((999, 9.0),)),) + tuple(
            other.answers[1][1:]
        )
        report = run_differential(
            tiny_workload(), make_specs(["brute_force", "fast_grid"])
        )
        assert report.ok  # sanity: the real engines agree
        from repro.verify.differential import _first_divergence

        div = _first_divergence(base, other)
        assert div is not None
        assert (div.cycle, div.hid) == (1, hid)
        text = div.describe()
        assert "cycle 1" in text and "999" in text
        assert "objects_scanned" in str(div.baseline_counters)


# ----------------------------------------------------------------------
# Scenario generation
# ----------------------------------------------------------------------
class TestScenarios:
    def test_same_seed_same_workload(self):
        a, b = make_scenario(13), make_scenario(13)
        assert a.describe() == b.describe()
        assert a.workload.cycles == b.workload.cycles

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_workloads_are_statically_valid(self, seed):
        scenario = make_scenario(seed)
        assert workload_valid(scenario.workload), scenario.describe()

    def test_churn_scenario_is_valid_and_sized(self):
        w = churn_scenario(1, cycles=30)
        assert w.n_cycles == 30
        assert workload_valid(w)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
class TestShrink:
    def test_shrinks_to_predicate_core(self):
        # Engine-free predicate: the failure "is" object 1 and query 0
        # coexisting in some cycle; everything else should fall away.
        w = make_scenario(5, cycles=12).workload

        def still_fails(c):
            live = set()
            queries = set()
            for events in c.cycles:
                for ev in events:
                    if ev["t"] == "join":
                        live.add(ev["oid"])
                    elif ev["t"] == "leave":
                        live.discard(ev["oid"])
                    elif ev["t"] == "reg":
                        queries.add(ev["hid"])
                    elif ev["t"] == "drop":
                        queries.discard(ev["hid"])
                if 1 in live and 0 in queries:
                    return True
            return False

        assert still_fails(w)
        result = shrink_workload(w, still_fails)
        assert still_fails(result.workload)
        assert workload_valid(result.workload)
        assert result.workload.n_cycles == 1
        # Only k objects + the culprit query can remain.
        assert result.workload.n_events <= w.k + 2

    def test_respects_run_budget(self):
        w = make_scenario(5, cycles=12).workload
        result = shrink_workload(w, lambda c: True, max_runs=3)
        assert result.runs <= 3


# ----------------------------------------------------------------------
# Metamorphic invariants
# ----------------------------------------------------------------------
class TestMetamorphic:
    def test_transforms_are_exact(self):
        w = tiny_workload()
        scaled = scale_workload(w, 0.5)
        assert scaled.cycles[0][0]["xy"] == [0.25, 0.25]
        moved = translate_workload(scaled, 0.25, 0.25)
        assert moved.cycles[0][0]["xy"] == [0.5, 0.5]
        assert moved.cycles[1][0]["xy"][1] == [0.375, 0.5]

    @pytest.mark.parametrize("method", ["brute_force", "fast_grid", "rtree"])
    def test_invariants_hold(self, method):
        w = make_scenario(9, cycles=6).workload
        failures = run_metamorphic(MethodSpec(method), w)
        assert failures == []

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown metamorphic check"):
            run_metamorphic(
                MethodSpec("brute_force"), tiny_workload(), checks=["pi"]
            )

    def test_containment_catches_dropped_candidates(self, monkeypatch):
        # An engine that silently ignores some object ids violates
        # containment: an object strictly inside the k-th distance is
        # missing from the answer.
        original = AnswerList.offer

        def lossy(self, dist2, object_id):
            if object_id % 5 == 3:
                return False
            return original(self, dist2, object_id)

        monkeypatch.setattr(AnswerList, "offer", lossy)
        w = make_scenario(9, cycles=6).workload
        failures = run_metamorphic(
            MethodSpec("brute_force"), w, checks=["containment"]
        )
        assert failures
        assert failures[0].check == "containment"
        assert "missing" in failures[0].detail


# ----------------------------------------------------------------------
# Mutation test: an injected tie-break bug must be caught and shrunk
# ----------------------------------------------------------------------
class TestMutationCatch:
    def test_tie_break_bug_is_caught_and_shrunk(self, monkeypatch):
        # Mutate AnswerList.offer to prefer the HIGHEST id on exact
        # distance ties.  brute_force funnels every candidate through
        # offer() while fast_grid tie-breaks in a vectorized lexsort, so
        # the two must now disagree on any knife-edge tie.
        def mutated(self, dist2, object_id):
            entries = sorted(
                self._entries + [(dist2, object_id)],
                key=lambda e: (e[0], -e[1]),
            )[: self.k]
            accepted = (dist2, object_id) in entries
            self._entries[:] = entries
            self._neighbors_memo = None
            return accepted

        monkeypatch.setattr(AnswerList, "offer", mutated)
        registry = MetricsRegistry()
        specs = make_specs(["brute_force", "fast_grid"])
        divergence = None
        workload = None
        for seed in range(10):
            scenario = make_scenario(seed)
            report = run_differential(
                scenario.workload, specs, registry=registry
            )
            assert not report.errors
            if not report.ok:
                divergence = report.first_divergence
                workload = scenario.workload
                break
        assert divergence is not None, "fuzzer failed to catch the mutation"

        def still_fails(candidate):
            rep = run_differential(
                candidate, specs, registry=registry, stop_at_first=True
            )
            return bool(rep.divergences)

        shrunk = shrink_workload(
            workload,
            still_fails,
            first_divergence_cycle=divergence.cycle,
            registry=registry,
        )
        assert shrunk.workload.n_cycles <= 5
        assert still_fails(shrunk.workload)
        assert workload_valid(shrunk.workload)
        assert registry.counter_values()["verify.diff.divergences"] >= 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_record_replay_diff_pipeline(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert (
            cli_main(
                ["record", "--out", trace, "--seed", "3", "--cycles", "5"]
            )
            == 0
        )
        assert (
            cli_main(["replay", trace, "--check", "--repeat", "2"]) == 0
        )
        assert (
            cli_main(
                ["diff", trace, "--methods", "brute_force,fast_grid,rtree"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "agree bit-for-bit" in out
        assert "verify.replay.cycles" in out

    def test_fuzz_smoke_passes(self, tmp_path, capsys):
        code = cli_main(
            [
                "fuzz",
                "--scenarios",
                "2",
                "--methods",
                "brute_force,fast_grid",
                "--artifacts",
                str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out
        assert not (tmp_path / "artifacts").exists()

    def test_fuzz_dumps_shrunk_artifact_on_divergence(
        self, tmp_path, capsys, monkeypatch
    ):
        def mutated(self, dist2, object_id):
            entries = sorted(
                self._entries + [(dist2, object_id)],
                key=lambda e: (e[0], -e[1]),
            )[: self.k]
            accepted = (dist2, object_id) in entries
            self._entries[:] = entries
            self._neighbors_memo = None
            return accepted

        monkeypatch.setattr(AnswerList, "offer", mutated)
        artifacts = tmp_path / "artifacts"
        code = cli_main(
            [
                "fuzz",
                "--scenarios",
                "1",
                "--seed",
                "0",  # seed 0 is a lattice scenario: ties guaranteed
                "--methods",
                "brute_force,fast_grid",
                "--artifacts",
                str(artifacts),
            ]
        )
        assert code == 1
        trace_path = artifacts / "shrunk_seed0.jsonl"
        report_path = artifacts / "shrunk_seed0.report.json"
        assert trace_path.exists() and report_path.exists()
        shrunk = load_trace(str(trace_path))
        assert shrunk.n_cycles <= 5
        report = json.loads(report_path.read_text())
        assert report["divergences"]
        assert "diverged from brute_force" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Opt-in fuzz tier (nightly; tier-1 excludes the marker)
# ----------------------------------------------------------------------
@pytest.mark.fuzz
def test_fuzz_fifty_scenarios_all_methods(tmp_path):
    code = cli_main(
        [
            "fuzz",
            "--scenarios",
            "50",
            "--methods",
            "all",
            "--metamorphic",
            "--artifacts",
            str(tmp_path / "artifacts"),
        ]
    )
    assert code == 0


# ----------------------------------------------------------------------
# Canonical answers
# ----------------------------------------------------------------------
class TestCanonical:
    def test_digest_depends_on_float_bits(self):
        canon_a = ((0, ((1, 0.5), (2, 0.75))),)
        canon_b = ((0, ((1, 0.5), (2, np.nextafter(0.75, 1.0)))),)
        assert digest_cycle(canon_a) != digest_cycle(canon_b)
        assert digest_cycle(canon_a) == digest_cycle(canon_a)

    def test_canonical_cycle_sorts_and_remaps(self):
        class H:
            def __init__(self, id):
                self.id = id

        class A:
            def __init__(self, neighbors):
                self.neighbors = neighbors

        answers = {H(5): A([(2, 0.5)]), H(3): A([(1, 0.25)])}
        canon = canonical_cycle(answers, {5: 0, 3: 9})
        assert canon == ((0, ((2, 0.5),)), (9, ((1, 0.25),)))
