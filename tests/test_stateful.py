"""Hypothesis stateful machines: interleaved-operation fuzzing.

These machines drive the mutable index structures through arbitrary
interleavings of inserts, deletes, moves, and queries, checking the
structural invariants and brute-force exactness after every step.  They
catch ordering bugs (e.g. a collapse after the wrong removal) that
fixed-scenario tests cannot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.brute import brute_force_knn
from repro.core.hierarchical import HierarchicalObjectIndex
from repro.rtree import RTree
from tests.conftest import assert_same_distances

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False, width=64
)


class RTreeMachine(RuleBasedStateMachine):
    """Insert / delete / move / query an R-tree against a dict model."""

    def __init__(self) -> None:
        super().__init__()
        self.tree = RTree(max_entries=4)
        self.model: dict[int, tuple[float, float]] = {}
        self.next_id = 0

    @rule(x=coordinate, y=coordinate)
    def insert(self, x: float, y: float) -> None:
        self.tree.insert(self.next_id, x, y)
        self.model[self.next_id] = (x, y)
        self.next_id += 1

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data) -> None:
        victim = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.delete(victim)
        del self.model[victim]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), x=coordinate, y=coordinate)
    def move_bottom_up(self, data, x: float, y: float) -> None:
        mover = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.update_bottom_up(mover, x, y)
        self.model[mover] = (x, y)

    @precondition(lambda self: self.model)
    @rule(qx=coordinate, qy=coordinate, data=st.data())
    def query(self, qx: float, qy: float, data) -> None:
        k = data.draw(st.integers(min_value=1, max_value=len(self.model)))
        ids = sorted(self.model)
        positions = np.asarray([self.model[i] for i in ids])
        got = self.tree.knn(qx, qy, k).neighbors()
        want_rows = brute_force_knn(positions, qx, qy, k)
        want = [(ids[row], d) for row, d in want_rows]
        assert_same_distances(got, want)

    @invariant()
    def structure_holds(self) -> None:
        self.tree.validate()
        assert len(self.tree) == len(self.model)


class HierarchicalMachine(RuleBasedStateMachine):
    """Rebuild / update / query the hierarchical index against a model.

    The hierarchical index works on fixed-size snapshots, so the machine
    mutates a position array and alternates full rebuilds with
    incremental updates.
    """

    @initialize(
        points=st.lists(
            st.tuples(coordinate, coordinate), min_size=3, max_size=25
        )
    )
    def setup(self, points) -> None:
        self.positions = np.asarray(points, dtype=np.float64)
        self.index = HierarchicalObjectIndex(
            delta0=0.25, max_cell_load=3, split_factor=2, max_depth=8
        )
        self.index.build(self.positions)

    @rule(data=st.data(), x=coordinate, y=coordinate)
    def move_one_incremental(self, data, x: float, y: float) -> None:
        row = data.draw(st.integers(min_value=0, max_value=len(self.positions) - 1))
        self.positions = self.positions.copy()
        self.positions[row] = (x, y)
        self.index.update(self.positions)

    @rule(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def jiggle_all_incremental(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        moved = self.positions + rng.uniform(-0.3, 0.3, self.positions.shape)
        self.positions = np.clip(moved, 0.0, 1.0 - 1e-9)
        self.index.update(self.positions)

    @rule()
    def rebuild(self) -> None:
        self.index.build(self.positions)

    @rule(qx=coordinate, qy=coordinate, data=st.data())
    def query(self, qx: float, qy: float, data) -> None:
        k = data.draw(st.integers(min_value=1, max_value=len(self.positions)))
        got = self.index.knn_overhaul(qx, qy, k).neighbors()
        want = brute_force_knn(self.positions, qx, qy, k)
        assert_same_distances(got, want)

    @invariant()
    def structure_holds(self) -> None:
        if getattr(self, "index", None) is not None:
            self.index.validate()


TestRTreeStateful = RTreeMachine.TestCase
TestRTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestHierarchicalStateful = HierarchicalMachine.TestCase
TestHierarchicalStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
