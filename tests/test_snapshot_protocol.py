"""Cross-backend equivalence of the SnapshotIndex protocol.

Every workload operator in :mod:`repro.engines.snapshot` must return
*identical* answers — including lowest-ID resolution of exact duplicate
distances — whether the snapshot is held by the Grid2D-backed
:class:`~repro.core.object_index.ObjectIndex` or the vectorized
:class:`~repro.core.fast_index.CSRGrid`.
"""

import math

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.gnn import GNNMonitor, brute_force_group_knn
from repro.core.knn_join import KNNJoinMonitor, brute_force_knn_join
from repro.core.range_monitor import (
    CircleRegion,
    RangeMonitor,
    RectRegion,
    brute_force_range,
)
from repro.core.rknn import RKNNMonitor, brute_force_rknn
from repro.core.self_join import SelfJoinMonitor
from repro.engines.snapshot import (
    SNAPSHOT_BACKENDS,
    make_snapshot,
    snapshot_knn,
    snapshot_knn_seeded,
    snapshot_range,
)
from repro.errors import ConfigurationError

BACKENDS = list(SNAPSHOT_BACKENDS)


def tie_heavy_positions(rng, n):
    """Random positions with duplicated coordinates (forcing exact
    duplicate distances, hence ID tie-breaks) and corner extremes."""
    positions = rng.random((n, 2))
    positions[n // 2 : n // 2 + n // 4] = positions[: n // 4]
    positions[0] = [0.5, 0.5]
    positions[1] = [0.5, 0.5]
    positions[-1] = [1.0, 1.0]
    positions[-2] = [0.0, 0.0]
    return positions


def canonical(answer):
    """(squared distance, id) pairs of an AnswerList — exact comparison."""
    return [(d2, object_id) for d2, object_id in answer]


REGIONS = [
    RectRegion(0.1, 0.1, 0.4, 0.6),
    RectRegion(0.0, 0.0, 1.0, 1.0),
    CircleRegion(0.5, 0.5, 0.2),
    CircleRegion(0.95, 0.05, 0.3),
    RectRegion(0.3, 0.3, 0.3, 0.3),  # degenerate: a single point
]


class TestProtocolPrimitives:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_snapshot(np.zeros((4, 2)), "nope")

    def test_backends_agree_on_geometry(self):
        rng = np.random.default_rng(11)
        positions = tie_heavy_positions(rng, 200)
        a = make_snapshot(positions, "object_index")
        b = make_snapshot(positions, "csr")
        assert a.ncells == b.ncells
        assert a.delta == pytest.approx(b.delta)
        assert a.n_objects == b.n_objects == 200

    def test_count_and_gather_agree(self):
        rng = np.random.default_rng(12)
        positions = tie_heavy_positions(rng, 300)
        a = make_snapshot(positions, "object_index")
        b = make_snapshot(positions, "csr")
        n = a.ncells
        rects = [(0, 0, n - 1, n - 1)]
        for _ in range(25):
            ilo, jlo = rng.integers(0, n, 2)
            ihi = int(rng.integers(ilo, n))
            jhi = int(rng.integers(jlo, n))
            rects.append((int(ilo), int(jlo), ihi, jhi))
        for ilo, jlo, ihi, jhi in rects:
            count_a = a.count_in_cells(ilo, jlo, ihi, jhi)
            count_b = b.count_in_cells(ilo, jlo, ihi, jhi)
            ids_a, xs_a, ys_a = a.gather_cells(ilo, jlo, ihi, jhi)
            ids_b, xs_b, ys_b = b.gather_cells(ilo, jlo, ihi, jhi)
            assert count_a == count_b == len(ids_a) == len(ids_b)
            assert sorted(ids_a) == sorted(ids_b)
            # Gathered coordinates are the snapshot coordinates, exactly.
            for ids, xs, ys in ((ids_a, xs_a, ys_a), (ids_b, xs_b, ys_b)):
                for object_id, x, y in zip(ids, xs, ys):
                    assert x == positions[object_id, 0]
                    assert y == positions[object_id, 1]

    def test_locate_and_position_of_agree(self):
        rng = np.random.default_rng(13)
        positions = tie_heavy_positions(rng, 150)
        a = make_snapshot(positions, "object_index")
        b = make_snapshot(positions, "csr")
        for x, y in [(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (0.999999, 0.000001)]:
            assert a.locate(x, y) == b.locate(x, y)
        for object_id in range(len(positions)):
            assert a.position_of(object_id) == b.position_of(object_id)


class TestSnapshotKNN:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_brute_force(self, backend):
        rng = np.random.default_rng(21)
        positions = rng.random((250, 2))
        index = make_snapshot(positions, backend)
        for qx, qy in rng.random((15, 2)):
            answer = snapshot_knn(index, float(qx), float(qy), 7)
            expected = brute_force_knn(positions, float(qx), float(qy), 7)
            assert answer.object_ids() == [oid for oid, _ in expected]
            for (d2, _), (_, dist) in zip(answer, expected):
                assert math.sqrt(d2) == pytest.approx(dist)

    def test_backends_identical_including_duplicate_distances(self):
        rng = np.random.default_rng(22)
        positions = tie_heavy_positions(rng, 320)
        a = make_snapshot(positions, "object_index")
        b = make_snapshot(positions, "csr")
        # Probe at duplicated object positions so several candidates tie
        # at exactly equal squared distances (identical float coords).
        probes = [tuple(positions[i]) for i in range(0, 80, 5)]
        probes += [(0.5, 0.5), (0.0, 0.0), (1.0, 1.0)]
        for k in (1, 3, 10):
            for qx, qy in probes:
                left = snapshot_knn(a, qx, qy, k)
                right = snapshot_knn(b, qx, qy, k)
                assert canonical(left) == canonical(right)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_matches_overhaul(self, backend):
        rng = np.random.default_rng(23)
        positions = tie_heavy_positions(rng, 200)
        moved = np.clip(positions + rng.normal(0, 0.01, positions.shape), 0, 1)
        old = make_snapshot(positions, backend)
        new = make_snapshot(moved, backend)
        for qx, qy in rng.random((10, 2)):
            seeds = snapshot_knn(old, float(qx), float(qy), 5).object_ids()
            seeded = snapshot_knn_seeded(new, float(qx), float(qy), 5, seeds)
            overhaul = snapshot_knn(new, float(qx), float(qy), 5)
            assert canonical(seeded) == canonical(overhaul)
        # Garbage seeds fall back to the overhaul path.
        fallback = snapshot_knn_seeded(new, 0.5, 0.5, 5, [9999])
        assert canonical(fallback) == canonical(snapshot_knn(new, 0.5, 0.5, 5))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_operator_matches_brute(self, backend):
        rng = np.random.default_rng(24)
        positions = tie_heavy_positions(rng, 280)
        index = make_snapshot(positions, backend)
        expected = brute_force_range(positions, REGIONS)
        got = [snapshot_range(index, region) for region in REGIONS]
        assert got == expected


class TestWorkloadsAcrossBackends:
    """The satellite suite: range/rknn/gnn identical on both backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_monitor_backend_matches_legacy_and_brute(self, backend):
        rng = np.random.default_rng(31)
        monitor_legacy = RangeMonitor(REGIONS)
        monitor_snapshot = RangeMonitor(REGIONS, backend=backend)
        for _ in range(3):
            positions = tie_heavy_positions(rng, 260)
            expected = brute_force_range(positions, REGIONS)
            assert monitor_legacy.tick(positions) == expected
            assert monitor_snapshot.tick(positions) == expected

    def test_rknn_identical_across_backends(self):
        rng = np.random.default_rng(32)
        queries = rng.random((12, 2))
        monitors = {
            backend: RKNNMonitor(3, queries, backend=backend)
            for backend in BACKENDS
        }
        positions = tie_heavy_positions(rng, 180)
        for _ in range(3):
            positions = np.clip(
                positions + rng.normal(0, 0.01, positions.shape), 0, 1
            )
            answers = {b: m.tick(positions) for b, m in monitors.items()}
            dk = {b: m.kth_distances() for b, m in monitors.items()}
            assert answers["object_index"] == answers["csr"]
            assert dk["object_index"] == dk["csr"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rknn_matches_brute(self, backend):
        rng = np.random.default_rng(33)
        positions = rng.random((150, 2))
        queries = rng.random((10, 2))
        monitor = RKNNMonitor(2, queries, backend=backend)
        assert monitor.tick(positions) == brute_force_rknn(positions, queries, 2)

    def test_gnn_identical_across_backends_and_brute(self):
        rng = np.random.default_rng(34)
        groups = [rng.random((3, 2)), rng.random((5, 2))]
        positions = tie_heavy_positions(rng, 220)
        for aggregate in ("sum", "max"):
            per_backend = {}
            for backend in BACKENDS:
                monitor = GNNMonitor(4, groups, aggregate, backend=backend)
                per_backend[backend] = monitor.tick(positions)
            assert per_backend["object_index"] == per_backend["csr"]
            for group_points, answer in zip(groups, per_backend["csr"]):
                expected = brute_force_group_knn(
                    positions, group_points, 4, aggregate
                )
                assert [oid for oid, _ in answer] == [oid for oid, _ in expected]
                for (_, da), (_, de) in zip(answer, expected):
                    assert da == pytest.approx(de)

    def test_self_join_identical_across_backends(self):
        rng = np.random.default_rng(35)
        monitors = {
            backend: SelfJoinMonitor(3, backend=backend) for backend in BACKENDS
        }
        positions = tie_heavy_positions(rng, 160)
        for _ in range(3):
            positions = np.clip(
                positions + rng.normal(0, 0.01, positions.shape), 0, 1
            )
            answers = {
                b: [canonical(a) for a in m.tick(positions)]
                for b, m in monitors.items()
            }
            assert answers["object_index"] == answers["csr"]

    def test_knn_join_identical_across_backends_and_brute(self):
        rng = np.random.default_rng(36)
        monitors = {
            backend: KNNJoinMonitor(3, backend=backend) for backend in BACKENDS
        }
        a_positions = rng.random((40, 2))
        b_positions = tie_heavy_positions(rng, 120)
        for _ in range(3):
            a_positions = np.clip(
                a_positions + rng.normal(0, 0.01, a_positions.shape), 0, 1
            )
            b_positions = np.clip(
                b_positions + rng.normal(0, 0.01, b_positions.shape), 0, 1
            )
            answers = {
                b: [canonical(a) for a in m.tick(a_positions, b_positions)]
                for b, m in monitors.items()
            }
            assert answers["object_index"] == answers["csr"]
            expected = brute_force_knn_join(a_positions, b_positions, 3)
            got_ids = [[oid for _, oid in row] for row in answers["csr"]]
            assert got_ids == [[oid for oid, _ in row] for row in expected]
