"""Tests for the k-NN self-join (continuous spatial join extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.object_index import ObjectIndex
from repro.core.self_join import (
    SelfJoinMonitor,
    knn_self_join,
    knn_self_join_incremental,
)
from repro.errors import ConfigurationError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset


def brute_self_join(positions, k):
    """Ground truth: each object's k nearest other objects."""
    out = []
    for object_id in range(len(positions)):
        neighbors = brute_force_knn(
            positions, positions[object_id, 0], positions[object_id, 1], k + 1
        )
        out.append([i for i, _ in neighbors if i != object_id][:k])
    return out


class TestOverhaulJoin:
    def test_matches_brute(self):
        points = make_dataset("skewed", 300, seed=1)
        index = ObjectIndex(n_objects=300)
        index.build(points)
        got = knn_self_join(index, 4)
        want = brute_self_join(points, 4)
        for object_id, (answer, expected) in enumerate(zip(got, want)):
            got_d = [d for _, d in answer.neighbors()]
            want_d = sorted(
                float(np.hypot(*(points[e] - points[object_id]))) for e in expected
            )
            np.testing.assert_allclose(got_d, want_d, atol=1e-12)

    def test_distances_match_brute(self):
        points = make_dataset("uniform", 200, seed=2)
        index = ObjectIndex(n_objects=200)
        index.build(points)
        got = knn_self_join(index, 3)
        for object_id, answer in enumerate(got):
            want = brute_force_knn(
                points, points[object_id, 0], points[object_id, 1], 4
            )
            want_d = [d for i, d in want if i != object_id][:3]
            got_d = [d for _, d in answer.neighbors()]
            np.testing.assert_allclose(got_d, want_d, atol=1e-12)

    def test_never_contains_self(self):
        points = make_dataset("hi_skewed", 150, seed=3)
        index = ObjectIndex(n_objects=150)
        index.build(points)
        for object_id, answer in enumerate(knn_self_join(index, 5)):
            assert object_id not in answer.object_ids()

    def test_duplicate_points(self):
        points = np.full((10, 2), 0.5)
        index = ObjectIndex(ncells=3)
        index.build(points)
        answers = knn_self_join(index, 3)
        for object_id, answer in enumerate(answers):
            assert len(answer) == 3
            assert object_id not in answer.object_ids()
            assert answer.kth_dist() == 0.0

    def test_too_few_objects(self):
        index = ObjectIndex(ncells=2)
        index.build(np.asarray([[0.1, 0.1], [0.2, 0.2]]))
        with pytest.raises(NotEnoughObjectsError):
            knn_self_join(index, 2)

    def test_bad_k(self):
        index = ObjectIndex(ncells=2)
        index.build(np.asarray([[0.1, 0.1], [0.2, 0.2]]))
        with pytest.raises(ConfigurationError):
            knn_self_join(index, 0)


class TestIncrementalJoin:
    def test_matches_overhaul_after_motion(self):
        points = make_dataset("uniform", 250, seed=4)
        index = ObjectIndex(n_objects=250)
        index.build(points)
        previous = [a.object_ids() for a in knn_self_join(index, 3)]
        motion = RandomWalkModel(vmax=0.01, seed=5)
        moved = motion.step(points)
        index.build(moved)
        incremental = knn_self_join_incremental(index, 3, previous)
        overhaul = knn_self_join(index, 3)
        for a, b in zip(incremental, overhaul):
            got = [round(d, 12) for _, d in a.neighbors()]
            want = [round(d, 12) for _, d in b.neighbors()]
            assert got == want

    def test_wrong_previous_length(self):
        points = make_dataset("uniform", 50, seed=6)
        index = ObjectIndex(n_objects=50)
        index.build(points)
        with pytest.raises(ConfigurationError):
            knn_self_join_incremental(index, 3, [[]] * 10)

    def test_stale_entries_fall_back(self):
        points = make_dataset("uniform", 60, seed=7)
        index = ObjectIndex(n_objects=60)
        index.build(points)
        stale = [[999, 998, 997]] * 60
        answers = knn_self_join_incremental(index, 3, stale)
        want = knn_self_join(index, 3)
        for a, b in zip(answers, want):
            assert [round(d, 12) for _, d in a.neighbors()] == [
                round(d, 12) for _, d in b.neighbors()
            ]


class TestSelfJoinMonitor:
    def test_cycles_stay_exact(self):
        points = make_dataset("skewed", 200, seed=8)
        monitor = SelfJoinMonitor(3)
        motion = RandomWalkModel(vmax=0.01, seed=9)
        current = points
        for _ in range(4):
            current = motion.step(current)
            answers = monitor.tick(current)
            want = brute_self_join(current, 3)
            for object_id, answer in enumerate(answers):
                got_d = [d for _, d in answer.neighbors()]
                want_d = [
                    float(np.hypot(*(current[w] - current[object_id])))
                    for w in want[object_id]
                ]
                np.testing.assert_allclose(got_d, sorted(want_d), atol=1e-12)

    def test_kth_distances(self):
        points = make_dataset("uniform", 100, seed=10)
        monitor = SelfJoinMonitor(2)
        answers = monitor.tick(points)
        dk = monitor.kth_distances()
        for answer, d in zip(answers, dk):
            assert d == pytest.approx(answer.kth_dist())

    def test_kth_before_tick(self):
        with pytest.raises(ConfigurationError):
            SelfJoinMonitor(2).kth_distances()

    def test_population_change_resets(self):
        monitor = SelfJoinMonitor(2)
        monitor.tick(make_dataset("uniform", 100, seed=11))
        answers = monitor.tick(make_dataset("uniform", 50, seed=12))
        assert len(answers) == 50

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            SelfJoinMonitor(0)
