"""Tests for the piecewise-linear motion model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion.linear import LinearMotionModel


class TestConstruction:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            LinearMotionModel(-1)
        with pytest.raises(ConfigurationError):
            LinearMotionModel(10, vmax=-0.1)
        with pytest.raises(ConfigurationError):
            LinearMotionModel(10, change_probability=1.5)

    def test_velocity_bounds(self):
        model = LinearMotionModel(1000, vmax=0.01, seed=1)
        assert np.all(np.abs(model.velocities) <= 0.01)

    def test_population_mismatch(self):
        model = LinearMotionModel(10, seed=2)
        with pytest.raises(ConfigurationError):
            model.step(np.zeros((5, 2)))


class TestMotion:
    def test_constant_velocity_is_linear(self):
        rng = np.random.default_rng(3)
        positions = 0.4 + 0.2 * rng.random((100, 2))
        model = LinearMotionModel(100, vmax=0.001, change_probability=0.0, seed=4)
        v = model.velocities.copy()
        one = model.step(positions)
        two = model.step(one)
        np.testing.assert_allclose(one, positions + v, atol=1e-12)
        np.testing.assert_allclose(two, positions + 2 * v, atol=1e-12)

    def test_stays_in_region(self):
        positions = np.random.default_rng(5).random((500, 2))
        model = LinearMotionModel(500, vmax=0.05, change_probability=0.1, seed=6)
        for _ in range(30):
            positions = model.step(positions)
            assert np.all((positions >= 0.0) & (positions < 1.0))

    def test_reflection_flips_velocity(self):
        positions = np.asarray([[0.999, 0.5]])
        model = LinearMotionModel(1, vmax=0.01, change_probability=0.0, seed=7)
        model.velocities[0] = (0.01, 0.0)
        moved = model.step(positions)
        assert moved[0, 0] < 1.0
        assert model.velocities[0, 0] == -0.01
        assert 0 in model.last_changed

    def test_no_changes_reported_when_stable(self):
        positions = 0.5 * np.ones((50, 2))
        model = LinearMotionModel(50, vmax=0.001, change_probability=0.0, seed=8)
        model.step(positions)
        assert len(model.last_changed) == 0

    def test_full_change_probability(self):
        positions = 0.5 * np.ones((50, 2))
        model = LinearMotionModel(50, vmax=0.001, change_probability=1.0, seed=9)
        model.step(positions)
        assert len(model.last_changed) == 50

    def test_predicted_positions(self):
        positions = 0.5 * np.ones((10, 2))
        model = LinearMotionModel(10, vmax=0.01, change_probability=0.0, seed=10)
        predicted = model.predicted_positions(positions, 3.0)
        np.testing.assert_allclose(predicted, positions + 3.0 * model.velocities)
