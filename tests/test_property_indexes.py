"""Property-based tests: every index answers exactly like brute force."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_knn
from repro.core.hierarchical import HierarchicalObjectIndex
from repro.core.object_index import ObjectIndex
from repro.core.query_index import QueryIndex
from repro.rtree import RTree
from tests.conftest import assert_same_distances

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False, width=64
)
point = st.tuples(coordinate, coordinate)


def as_array(points):
    return np.asarray(points, dtype=np.float64)


@st.composite
def knn_case(draw, min_points=1, max_points=80):
    points = draw(
        st.lists(point, min_size=min_points, max_size=max_points)
    )
    k = draw(st.integers(min_value=1, max_value=len(points)))
    query = draw(point)
    return as_array(points), query, k


@settings(max_examples=60, deadline=None)
@given(knn_case())
def test_object_index_overhaul_matches_brute(case):
    points, (qx, qy), k = case
    index = ObjectIndex(n_objects=len(points))
    index.build(points)
    got = index.knn_overhaul(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)


@settings(max_examples=60, deadline=None)
@given(knn_case(), st.integers(min_value=1, max_value=9))
def test_object_index_any_grid_size_matches_brute(case, ncells):
    points, (qx, qy), k = case
    index = ObjectIndex(ncells=ncells)
    index.build(points)
    got = index.knn_overhaul(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)


out_of_region = st.floats(
    min_value=-2.0, max_value=3.0, allow_nan=False, width=64
)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(point, min_size=1, max_size=40),
    st.tuples(out_of_region, out_of_region),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=7),
)
def test_object_index_out_of_region_queries(points, query, k, ncells):
    """Queries anywhere in the plane (even far outside the region) must
    still be answered exactly — clamping may never invert a rectangle."""
    points = as_array(points)
    if k > len(points):
        k = len(points)
    qx, qy = query
    index = ObjectIndex(ncells=ncells)
    index.build(points)
    got = index.knn_overhaul(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)
    seeded = index.knn_incremental(qx, qy, k, [i for i, _ in want]).neighbors()
    assert_same_distances(seeded, want)


@settings(max_examples=60, deadline=None)
@given(knn_case())
def test_hierarchical_matches_brute(case):
    points, (qx, qy), k = case
    index = HierarchicalObjectIndex(delta0=0.25, max_cell_load=4, split_factor=2)
    index.build(points)
    index.validate()
    got = index.knn_overhaul(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)


@settings(max_examples=60, deadline=None)
@given(knn_case())
def test_rtree_matches_brute(case):
    points, (qx, qy), k = case
    tree = RTree(max_entries=5)
    tree.bulk_load(points)
    tree.validate()
    got = tree.knn(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)


@settings(max_examples=40, deadline=None)
@given(knn_case(min_points=3))
def test_rtree_incremental_inserts_match_brute(case):
    points, (qx, qy), k = case
    tree = RTree(max_entries=4)
    for object_id, (x, y) in enumerate(points):
        tree.insert(object_id, x, y)
    tree.validate()
    got = tree.knn(qx, qy, k).neighbors()
    want = brute_force_knn(points, qx, qy, k)
    assert_same_distances(got, want)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(point, min_size=5, max_size=60),
    st.lists(point, min_size=1, max_size=5),
    st.integers(min_value=1, max_value=5),
)
def test_query_index_bootstrap_matches_brute(object_points, query_points, k):
    objects = as_array(object_points)
    queries = as_array(query_points)
    index = QueryIndex(queries, k, n_objects=len(objects))
    answers = index.bootstrap(objects)
    index.validate()
    for query_id, answer in enumerate(answers):
        want = brute_force_knn(objects, queries[query_id, 0], queries[query_id, 1], k)
        assert_same_distances(answer.neighbors(), want)


@settings(max_examples=40, deadline=None)
@given(
    knn_case(min_points=1),
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
def test_tprtree_matches_extrapolated_brute(case, tq):
    from repro.tprtree import TPRTree

    points, (qx, qy), k = case
    rng = np.random.default_rng(len(points))
    velocities = rng.uniform(-0.01, 0.01, points.shape)
    tree = TPRTree(max_entries=4)
    for object_id in range(len(points)):
        tree.insert(
            object_id,
            points[object_id, 0],
            points[object_id, 1],
            velocities[object_id, 0],
            velocities[object_id, 1],
            0.0,
        )
    tree.validate(tq)
    future = points + velocities * tq
    got = tree.knn(qx, qy, k, tq).neighbors()
    want = brute_force_knn(future, qx, qy, k)
    assert_same_distances(got, want, tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(knn_case(min_points=2))
def test_incremental_answering_matches_overhaul(case):
    points, (qx, qy), k = case
    index = ObjectIndex(n_objects=len(points))
    index.build(points)
    overhaul = index.knn_overhaul(qx, qy, k)
    incremental = index.knn_incremental(qx, qy, k, overhaul.object_ids())
    assert_same_distances(incremental.neighbors(), overhaul.neighbors())
