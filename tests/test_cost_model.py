"""Tests for the analytical cost models (§3), including Monte-Carlo checks."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cost_model import (
    ObjectIndexingCost,
    SkewedQueryCost,
    expected_knn_radius_uniform,
    fit_linear,
    fit_power_law,
    incremental_maintenance_cost,
    linearity_r2,
    optimal_cell_size,
    pr_exit,
    pr_exit_paper,
)
from repro.errors import ConfigurationError


class TestOptimalCellSize:
    def test_formula(self):
        assert optimal_cell_size(10_000) == pytest.approx(0.01)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            optimal_cell_size(0)


class TestExpectedRadius:
    def test_formula(self):
        assert expected_knn_radius_uniform(10, 100_000) == pytest.approx(
            math.sqrt(10 / (math.pi * 100_000))
        )

    def test_monte_carlo(self):
        # Measure the mean 10-NN distance over uniform data and compare.
        rng = np.random.default_rng(0)
        n, k = 20_000, 10
        points = rng.random((n, 2))
        radii = []
        for _ in range(30):
            q = rng.random(2)
            d2 = np.sum((points - q) ** 2, axis=1)
            radii.append(math.sqrt(np.partition(d2, k - 1)[k - 1]))
        measured = float(np.mean(radii))
        predicted = expected_knn_radius_uniform(k, n)
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            expected_knn_radius_uniform(0, 100)


class TestPrExit:
    def test_zero_velocity(self):
        assert pr_exit(0.1, 0.0) == 0.0
        assert pr_exit_paper(0.1, 0.0) == 0.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            pr_exit(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            pr_exit_paper(-1.0, 0.1)

    def test_small_cells_high_exit(self):
        assert pr_exit(0.001, 0.1) > 0.99

    def test_large_cells_low_exit(self):
        assert pr_exit(0.5, 0.001) < 0.01

    def test_monotone_in_velocity(self):
        values = [pr_exit(0.05, v) for v in (0.001, 0.005, 0.02, 0.05, 0.2)]
        assert values == sorted(values)

    def test_monotone_in_cell_size(self):
        values = [pr_exit(d, 0.01) for d in (0.005, 0.01, 0.05, 0.1, 0.5)]
        assert values == sorted(values, reverse=True)

    def test_paper_branch_delta_le_vmax(self):
        # For delta <= vmax the paper's branch is exact in one axis only;
        # it must still bound our two-axis value from below.
        delta, vmax = 0.01, 0.05
        assert pr_exit_paper(delta, vmax) <= pr_exit(delta, vmax) + 1e-12

    def test_paper_branch_delta_gt_vmax_matches(self):
        # For delta > vmax the printed branch equals the two-axis form.
        for delta, vmax in [(0.1, 0.005), (0.05, 0.02), (0.2, 0.1)]:
            assert pr_exit_paper(delta, vmax) == pytest.approx(pr_exit(delta, vmax))

    @pytest.mark.parametrize("delta,vmax", [(0.1, 0.005), (0.05, 0.05), (0.02, 0.08)])
    def test_monte_carlo(self, delta, vmax):
        rng = np.random.default_rng(7)
        n = 200_000
        x = rng.uniform(0.0, delta, n)
        y = rng.uniform(0.0, delta, n)
        u = rng.uniform(-vmax, vmax, n)
        v = rng.uniform(-vmax, vmax, n)
        stays = ((0.0 <= x + u) & (x + u < delta) & (0.0 <= y + v) & (y + v < delta))
        measured = 1.0 - float(np.mean(stays))
        assert measured == pytest.approx(pr_exit(delta, vmax), abs=0.01)


class TestCostDataclasses:
    def test_object_indexing_cost_shape(self):
        cost = ObjectIndexingCost(a0=1e-7, a1=1e-6, a2=1e-6)
        assert cost.t_index(1000) == pytest.approx(1e-4)
        small = cost.t_query(0.01, 0.01, 1000, 10)
        large = cost.t_query(0.1, 0.01, 1000, 10)
        assert large > small
        assert cost.total(0.01, 0.01, 1000, 10) == pytest.approx(
            cost.t_index(1000) + cost.t_query(0.01, 0.01, 1000, 10)
        )

    def test_theorem1_constant_in_np(self):
        # With delta = 1/sqrt(NP) and lcrit = sqrt(k/(pi NP)), per-query
        # time must not depend on NP.
        cost = ObjectIndexingCost(a0=0.0, a1=1.0, a2=1.0)
        times = []
        for n in (10_000, 100_000, 1_000_000):
            delta = optimal_cell_size(n)
            lcrit = expected_knn_radius_uniform(10, n)
            times.append(cost.t_query(lcrit, delta, n, 1))
        assert max(times) / min(times) == pytest.approx(1.0, rel=1e-9)

    def test_skewed_query_cost_regimes(self):
        cost = SkewedQueryCost(b0=0.0, b1=1.0, b2=1.0)
        mu = 0.01
        # For small NP the sqrt term dominates, for large NP the linear.
        small_ratio = cost.t_query(mu, 400, 1) / math.sqrt(400)
        large = cost.t_query(mu, 10_000_000, 1)
        assert large > mu * mu * 10_000_000 * 0.99


class TestFits:
    def test_fit_linear_exact(self):
        slope, intercept = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_fit_linear_needs_points(self):
        with pytest.raises(ConfigurationError):
            fit_linear([1], [1])

    def test_fit_power_law(self):
        xs = [10, 100, 1000, 10000]
        ys = [3 * x**0.5 for x in xs]
        p, c = fit_power_law(xs, ys)
        assert p == pytest.approx(0.5)
        assert c == pytest.approx(3.0)

    def test_fit_power_law_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1, -2], [1, 2])

    def test_linearity_r2_perfect(self):
        assert linearity_r2([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_linearity_r2_constant(self):
        assert linearity_r2([1, 2, 3], [5, 5, 5]) == pytest.approx(1.0)

    def test_linearity_r2_poor(self):
        xs = list(range(1, 30))
        ys = [x**3 for x in xs]
        assert linearity_r2(xs, ys) < 0.95


class TestIncrementalMaintenanceCost:
    def test_grows_with_velocity(self):
        low = incremental_maintenance_cost(100_000, 0.01, 0.001, 1.0)
        high = incremental_maintenance_cost(100_000, 0.01, 0.02, 1.0)
        assert high > low

    def test_zero_velocity_zero_cost(self):
        assert incremental_maintenance_cost(1000, 0.05, 0.0, 1.0) == 0.0
