"""Tests for the MonitoringSystem orchestration layer and all engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.monitor import (
    BruteForceEngine,
    CycleStats,
    MonitoringSystem,
    ObjectIndexingEngine,
    QueryIndexingEngine,
    RTreeEngine,
)
from repro.errors import ConfigurationError, IndexStateError
from repro.motion import RandomWalkModel, make_dataset, make_queries
from tests.conftest import assert_same_distances

ALL_FACTORIES = [
    ("object/rebuild/overhaul", lambda q: MonitoringSystem.object_indexing(5, q)),
    (
        "object/incremental/incremental",
        lambda q: MonitoringSystem.object_indexing(
            5, q, maintenance="incremental", answering="incremental"
        ),
    ),
    ("query/incremental", lambda q: MonitoringSystem.query_indexing(5, q)),
    (
        "query/rebuild",
        lambda q: MonitoringSystem.query_indexing(5, q, maintenance="rebuild"),
    ),
    ("hier/incremental", lambda q: MonitoringSystem.hierarchical(5, q)),
    (
        "hier/rebuild/overhaul",
        lambda q: MonitoringSystem.hierarchical(
            5, q, maintenance="rebuild", answering="overhaul"
        ),
    ),
    ("rtree/overhaul", lambda q: MonitoringSystem.rtree(5, q)),
    (
        "rtree/bottom_up",
        lambda q: MonitoringSystem.rtree(5, q, maintenance="bottom_up"),
    ),
    (
        "rtree/str_bulk",
        lambda q: MonitoringSystem.rtree(5, q, maintenance="str_bulk"),
    ),
    ("brute", lambda q: MonitoringSystem.brute_force(5, q)),
]


class TestConfiguration:
    def test_bad_k(self, queries_20):
        with pytest.raises(ConfigurationError):
            MonitoringSystem.object_indexing(0, queries_20)

    def test_bad_tau(self, queries_20):
        with pytest.raises(ConfigurationError):
            MonitoringSystem.object_indexing(5, queries_20, tau=0.0)

    def test_bad_maintenance_mode(self, queries_20):
        with pytest.raises(ConfigurationError):
            ObjectIndexingEngine(5, queries_20, maintenance="bogus")
        with pytest.raises(ConfigurationError):
            QueryIndexingEngine(5, queries_20, maintenance="bogus")
        with pytest.raises(ConfigurationError):
            RTreeEngine(5, queries_20, maintenance="bogus")

    def test_bad_answering_mode(self, queries_20):
        with pytest.raises(ConfigurationError):
            ObjectIndexingEngine(5, queries_20, answering="bogus")

    def test_bad_query_shape(self):
        with pytest.raises(ConfigurationError):
            MonitoringSystem.object_indexing(5, np.zeros((4, 3)))

    def test_tick_before_load(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        with pytest.raises(IndexStateError):
            system.tick(uniform_1k)

    def test_engine_guards(self, uniform_1k, queries_20):
        engine = ObjectIndexingEngine(5, queries_20)
        with pytest.raises(IndexStateError):
            engine.maintain(uniform_1k)
        with pytest.raises(IndexStateError):
            engine.answer()
        brute = BruteForceEngine(5, queries_20)
        with pytest.raises(IndexStateError):
            brute.answer()


class TestAllEnginesExact:
    @pytest.mark.parametrize("name,factory", ALL_FACTORIES, ids=[n for n, _ in ALL_FACTORIES])
    def test_exact_over_cycles(self, name, factory, queries_20):
        objects = make_dataset("skewed", 1500, seed=17)
        system = factory(queries_20)
        motion = RandomWalkModel(vmax=0.005, seed=19)
        current = objects
        answers = system.load(current)
        for _ in range(3):
            current = motion.step(current)
            answers = system.tick(current)
        assert len(answers) == 20
        for qa in answers:
            qx, qy = queries_20[qa.query_id]
            want = brute_force_knn(current, qx, qy, 5)
            assert_same_distances(qa.neighbors, want)


class TestAnswerMetadata:
    def test_timestamps_advance_by_tau(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20, tau=0.5)
        system.load(uniform_1k)
        assert system.timestamp == 0.0
        answers = system.tick(uniform_1k)
        assert system.timestamp == 0.5
        assert all(qa.timestamp == 0.5 for qa in answers)
        system.tick(uniform_1k)
        assert system.timestamp == 1.0

    def test_query_ids_sequential(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        answers = system.load(uniform_1k)
        assert [qa.query_id for qa in answers] == list(range(20))

    def test_answers_have_k_neighbors(self, uniform_1k, queries_20):
        system = MonitoringSystem.hierarchical(7, queries_20)
        answers = system.load(uniform_1k)
        assert all(qa.k == 7 for qa in answers)

    def test_neighbors_sorted_by_distance(self, uniform_1k, queries_20):
        system = MonitoringSystem.rtree(6, queries_20)
        answers = system.load(uniform_1k)
        for qa in answers:
            distances = [d for _, d in qa.neighbors]
            assert distances == sorted(distances)


class TestStats:
    def test_history_grows(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        system.load(uniform_1k)
        for _ in range(3):
            system.tick(uniform_1k)
        assert len(system.history) == 4
        assert all(isinstance(stats, CycleStats) for stats in system.history)

    def test_stats_nonnegative(self, uniform_1k, queries_20):
        system = MonitoringSystem.query_indexing(5, queries_20)
        system.load(uniform_1k)
        system.tick(uniform_1k)
        stats = system.last_stats
        assert stats.index_time >= 0.0
        assert stats.answer_time >= 0.0
        assert stats.total_time == stats.index_time + stats.answer_time

    def test_mean_cycle_time(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        system.load(uniform_1k)
        system.tick(uniform_1k)
        assert system.mean_cycle_time() > 0.0

    def test_last_stats_before_run(self, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        with pytest.raises(IndexStateError):
            system.last_stats


class TestMovingQueries:
    @pytest.mark.parametrize("name,factory", ALL_FACTORIES, ids=[n for n, _ in ALL_FACTORIES])
    def test_answers_stay_exact_when_queries_move(self, name, factory):
        objects = make_dataset("uniform", 1200, seed=31)
        queries = make_queries(10, seed=32)
        system = factory(queries)
        system.load(objects)
        object_motion = RandomWalkModel(vmax=0.005, seed=33)
        query_motion = RandomWalkModel(vmax=0.01, seed=34)
        current_objects = objects
        current_queries = queries
        for _ in range(3):
            current_objects = object_motion.step(current_objects)
            current_queries = query_motion.step(current_queries)
            system.set_queries(current_queries)
            answers = system.tick(current_objects)
            for qa in answers:
                qx, qy = current_queries[qa.query_id]
                want = brute_force_knn(current_objects, qx, qy, 5)
                assert_same_distances(qa.neighbors, want)

    def test_query_count_change_rejected(self, uniform_1k, queries_20):
        system = MonitoringSystem.object_indexing(5, queries_20)
        system.load(uniform_1k)
        with pytest.raises(ConfigurationError):
            system.set_queries(queries_20[:5])


class TestPopulationChanges:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda q: MonitoringSystem.object_indexing(
                3, q, maintenance="incremental"
            ),
            lambda q: MonitoringSystem.hierarchical(3, q),
            lambda q: MonitoringSystem.rtree(3, q, maintenance="bottom_up"),
        ],
    )
    def test_incremental_engines_rebuild_on_population_change(
        self, factory, queries_20
    ):
        # Engines fall back to a rebuild when the population size changes.
        objects = make_dataset("uniform", 800, seed=23)
        system = factory(queries_20)
        system.load(objects)
        grown = make_dataset("uniform", 1000, seed=24)
        answers = system.tick(grown)
        for qa in answers[:5]:
            qx, qy = queries_20[qa.query_id]
            want = brute_force_knn(grown, qx, qy, 3)
            assert_same_distances(qa.neighbors, want)
