"""Tests for the road-network substrate (Illinois-data substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion.datasets import skewness_statistic, uniform_dataset, skewed_dataset
from repro.roadnet.generator import synthetic_road_network
from repro.roadnet.network import RoadNetwork
from repro.roadnet.simulator import RoadNetworkModel, roadnet_dataset


class TestRoadNetwork:
    def test_bad_positions(self):
        with pytest.raises(ConfigurationError):
            RoadNetwork(np.zeros((3, 3)), edges=())

    def test_add_edge_and_degree(self):
        network = RoadNetwork(np.asarray([[0.1, 0.1], [0.9, 0.9], [0.5, 0.1]]), [(0, 1)])
        network.add_edge(1, 2)
        assert network.n_edges == 2
        assert network.degree(1) == 2
        assert network.degree(0) == 1

    def test_duplicate_edge_ignored(self):
        network = RoadNetwork(np.asarray([[0.0, 0.0], [1.0, 0.0]]), [(0, 1), (1, 0)])
        assert network.n_edges == 1

    def test_self_loop_rejected(self):
        network = RoadNetwork(np.asarray([[0.0, 0.0]]), ())
        with pytest.raises(ConfigurationError):
            network.add_edge(0, 0)

    def test_unknown_node_rejected(self):
        network = RoadNetwork(np.asarray([[0.0, 0.0]]), ())
        with pytest.raises(ConfigurationError):
            network.add_edge(0, 5)

    def test_edge_length(self):
        network = RoadNetwork(np.asarray([[0.0, 0.0], [0.3, 0.4]]), [(0, 1)])
        assert network.edge_length(0, 1) == pytest.approx(0.5)

    def test_point_on_edge(self):
        network = RoadNetwork(np.asarray([[0.0, 0.0], [1.0, 0.0]]), [(0, 1)])
        assert network.point_on_edge(0, 1, 0.25) == (0.25, 0.0)

    def test_connectivity_detection(self):
        positions = np.asarray([[0.0, 0.0], [1.0, 0.0], [0.5, 0.5]])
        connected = RoadNetwork(positions, [(0, 1), (1, 2)])
        disconnected = RoadNetwork(positions, [(0, 1)])
        assert connected.is_connected()
        assert not disconnected.is_connected()

    def test_major_intersections(self):
        positions = np.asarray([[0.1 * i, 0.1] for i in range(5)])
        network = RoadNetwork(positions, [(0, 1), (0, 2), (0, 3), (1, 2)])
        major = network.major_intersections(2)
        assert list(major) == [0, 1]


class TestGenerator:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            synthetic_road_network(grid_size=1)
        with pytest.raises(ConfigurationError):
            synthetic_road_network(jitter=0.5)
        with pytest.raises(ConfigurationError):
            synthetic_road_network(keep_probability=0.0)

    def test_node_count(self):
        network = synthetic_road_network(grid_size=10, seed=1)
        assert network.n_nodes == 100

    def test_always_connected(self):
        for seed in range(5):
            network = synthetic_road_network(
                grid_size=8, keep_probability=0.6, seed=seed
            )
            assert network.is_connected()

    def test_nodes_in_unit_square(self):
        network = synthetic_road_network(seed=2)
        assert np.all(network.node_positions >= 0.0)
        assert np.all(network.node_positions < 1.0)

    def test_degrees_reasonable(self):
        network = synthetic_road_network(grid_size=15, seed=3)
        degrees = network.degrees()
        assert degrees.max() <= 8
        assert float(np.mean(degrees)) > 2.0

    def test_seeded_reproducible(self):
        a = synthetic_road_network(seed=4)
        b = synthetic_road_network(seed=4)
        np.testing.assert_array_equal(a.node_positions, b.node_positions)
        assert a.edges() == b.edges()


class TestSimulator:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            RoadNetworkModel(-1)
        with pytest.raises(ConfigurationError):
            RoadNetworkModel(10, vmax=0.0)
        with pytest.raises(ConfigurationError):
            RoadNetworkModel(10, start_near_major=2.0)

    def test_positions_shape(self):
        model = RoadNetworkModel(200, seed=1)
        assert model.positions().shape == (200, 2)

    def test_positions_in_region(self):
        model = RoadNetworkModel(500, seed=2)
        for _ in range(10):
            snapshot = model.step()
            assert np.all(snapshot >= 0.0)
            assert np.all(snapshot <= 1.0)

    def test_objects_on_roads(self):
        # Every object position must lie on some edge segment.
        model = RoadNetworkModel(100, seed=3)
        for _ in range(3):
            model.step()
        network = model.network
        snapshot = model.positions()
        for object_id in range(100):
            u = model._from[object_id]
            v = model._to[object_id]
            ax, ay = network.node_positions[u]
            bx, by = network.node_positions[v]
            px, py = snapshot[object_id]
            # Collinearity + betweenness.
            cross = (bx - ax) * (py - ay) - (by - ay) * (px - ax)
            assert abs(cross) < 1e-9
            t_num = (px - ax) * (bx - ax) + (py - ay) * (by - ay)
            t_den = (bx - ax) ** 2 + (by - ay) ** 2
            t = t_num / t_den
            assert -1e-9 <= t <= 1.0 + 1e-9

    def test_objects_actually_move(self):
        model = RoadNetworkModel(50, vmax=0.02, seed=4)
        before = model.positions()
        after = model.step()
        moved = np.linalg.norm(after - before, axis=1)
        assert np.all(moved > 0.0)
        # Travel per cycle is bounded by vmax (along roads).
        assert np.all(moved <= 0.02 * np.sqrt(2) + 1e-9)

    def test_run_generator(self):
        model = RoadNetworkModel(20, seed=5)
        snaps = list(model.run(cycles=4))
        assert len(snaps) == 4


class TestRoadnetDataset:
    def test_shape_and_region(self):
        points = roadnet_dataset(300, warmup_cycles=10, seed=6)
        assert points.shape == (300, 2)
        assert np.all((points >= 0.0) & (points <= 1.0))

    def test_skew_between_uniform_and_clusters(self):
        # The paper's Fig. 17 narrative: "more skewed than the uniform
        # data, but less skewed than the synthetic skewed data".
        n = 4000
        road = skewness_statistic(roadnet_dataset(n, warmup_cycles=30, seed=7))
        uniform = skewness_statistic(uniform_dataset(n, seed=7))
        clustered = skewness_statistic(skewed_dataset(n, seed=7))
        assert uniform < road < clustered
