"""Tests for the synthetic datasets (Fig. 9) and query generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion.datasets import (
    gaussian_clusters_dataset,
    hi_skewed_dataset,
    make_dataset,
    make_queries,
    skewed_dataset,
    skewness_statistic,
    uniform_dataset,
)


class TestShapesAndRanges:
    @pytest.mark.parametrize("name", ["uniform", "skewed", "hi_skewed"])
    def test_shape(self, name):
        points = make_dataset(name, 500, seed=1)
        assert points.shape == (500, 2)

    @pytest.mark.parametrize("name", ["uniform", "skewed", "hi_skewed"])
    def test_in_unit_square(self, name):
        points = make_dataset(name, 2000, seed=2)
        assert np.all(points >= 0.0)
        assert np.all(points < 1.0)

    def test_zero_points(self):
        assert make_dataset("uniform", 0).shape == (0, 2)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_dataset("nope", 10)

    def test_negative_n(self):
        with pytest.raises(ConfigurationError):
            uniform_dataset(-1)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["uniform", "skewed", "hi_skewed"])
    def test_seeded_reproducible(self, name):
        a = make_dataset(name, 100, seed=42)
        b = make_dataset(name, 100, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_dataset("uniform", 100, seed=1)
        b = make_dataset("uniform", 100, seed=2)
        assert not np.array_equal(a, b)


class TestSkewOrdering:
    def test_skew_statistic_ordering(self):
        # The paper's Fig. 9 ordering: uniform < skewed < hi_skewed.
        uniform = skewness_statistic(uniform_dataset(5000, seed=3))
        skewed = skewness_statistic(skewed_dataset(5000, seed=3))
        hi = skewness_statistic(hi_skewed_dataset(5000, seed=3))
        assert uniform < skewed < hi

    def test_empty_skew_is_zero(self):
        assert skewness_statistic(np.empty((0, 2))) == 0.0


class TestGaussianClusters:
    def test_uniform_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            gaussian_clusters_dataset(10, 2, 0.1, uniform_fraction=1.5)

    def test_cluster_count_bounds(self):
        with pytest.raises(ConfigurationError):
            gaussian_clusters_dataset(10, 0, 0.1)

    def test_tight_clusters_are_tight(self):
        points = gaussian_clusters_dataset(2000, n_clusters=1, std=0.01, seed=5)
        # Nearly all mass within ~4 sigma of the single center.
        center = np.median(points, axis=0)
        distances = np.linalg.norm(points - center, axis=1)
        assert np.quantile(distances, 0.95) < 0.05


class TestQueries:
    def test_default_uniform(self):
        queries = make_queries(50, seed=4)
        assert queries.shape == (50, 2)
        assert np.all((queries >= 0) & (queries < 1))

    def test_skewed_queries(self):
        queries = make_queries(500, seed=4, distribution="skewed")
        assert skewness_statistic(queries) > skewness_statistic(
            make_queries(500, seed=4)
        )

    def test_unknown_distribution(self):
        with pytest.raises(ConfigurationError):
            make_queries(10, distribution="bogus")
