"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motion import make_dataset, make_queries


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def uniform_1k():
    """1000 uniform object positions (seeded)."""
    return make_dataset("uniform", 1000, seed=7)


@pytest.fixture
def skewed_1k():
    """1000 skewed (4-cluster) object positions (seeded)."""
    return make_dataset("skewed", 1000, seed=7)


@pytest.fixture
def hi_skewed_1k():
    """1000 highly-skewed (10-cluster) object positions (seeded)."""
    return make_dataset("hi_skewed", 1000, seed=7)


@pytest.fixture
def queries_20():
    """20 uniform query positions (seeded)."""
    return make_queries(20, seed=11)


def assert_same_distances(got, want, tol=1e-12):
    """Compare two (id, distance) answers by their distance profiles.

    Exact ties may legitimately order differently between methods, so IDs
    are compared only as multisets within equal-distance groups (handled
    by comparing the sorted distance lists and the ID sets).
    """
    assert len(got) == len(want), (got, want)
    for (_, dg), (_, dw) in zip(got, want):
        assert abs(dg - dw) <= tol, (got, want)
