"""Cross-process shard telemetry: shipping, labeled merge, health, endpoint."""

import json
import os
import signal
import urllib.request

import numpy as np
import pytest

from repro import MetricsRegistry, MonitoringSystem
from repro.errors import IndexStateError
from repro.obs import prometheus_text, split_labels
from repro.obs.remote import (
    ANSWER_SPAN,
    BUILD_SPAN,
    WorkerTelemetry,
    merge_worker_metrics,
    merged_worker_counters,
    start_metrics_server,
)
from repro.obs.trend import (
    compare_benchmarks,
    flatten_numeric,
    metric_direction,
    render_trend_report,
)

#: Counters that legitimately differ between a clean run and one that
#: respawned a worker (a fresh process rebuilds instead of patching) or
#: between processes (wall-clock).  Everything else must match exactly.
NONDETERMINISTIC = ("delta.", "shard.task.fresh_builds")


def deterministic_aggregates(registry):
    return {
        name: value
        for name, value in merged_worker_counters(registry).items()
        if not name.endswith(".seconds")
        and not any(name.startswith(p) or name == p for p in NONDETERMINISTIC)
    }


def canonical(query_answers, places=12):
    return [
        [(round(dist, places), object_id) for object_id, dist in answer.neighbors]
        for answer in query_answers
    ]


def run_sharded_trace(workers, *, kill_idle_worker=False, seed=11,
                      n=500, nq=20, k=5, cycles=3, shards=2):
    """One deterministic sharded run; returns (registry, answer trace)."""
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 2))
    queries = rng.random((nq, 2))
    motion = [rng.normal(0.0, 0.01, (n, 2)) for _ in range(cycles)]
    registry = MetricsRegistry()
    system = MonitoringSystem.sharded(
        k, queries, workers=workers, shards=shards,
        oversubscribe=True, registry=registry,
    )
    with system:
        trace = [canonical(system.load(positions))]
        if kill_idle_worker:
            os.kill(system.engine.worker_pids()[0], signal.SIGKILL)
        for step in motion:
            positions = np.clip(positions + step, 0.0, 1.0)
            trace.append(canonical(system.tick(positions)))
    return registry, trace


# ------------------------------------------------------------- telemetry
class TestWorkerTelemetry:
    def test_disabled_builds_no_registry_but_spans_still_time(self):
        telemetry = WorkerTelemetry()
        tracer = telemetry.begin(False)
        with tracer.span(BUILD_SPAN) as span:
            pass
        assert span.duration >= 0.0
        assert telemetry.registry is None  # never constructed
        assert telemetry.deltas() is None
        telemetry.inc("anything")  # must be a silent no-op
        assert telemetry.registry is None

    def test_enabled_ships_exactly_one_tasks_deltas(self):
        telemetry = WorkerTelemetry()
        tracer = telemetry.begin(True)
        with tracer.span(BUILD_SPAN):
            pass
        telemetry.inc("work.items", 3)
        first = telemetry.deltas()
        assert first["work.items"] == 3.0
        assert first[f"span.{BUILD_SPAN}.calls"] == 1.0

        tracer = telemetry.begin(True)  # next task: fresh baseline
        with tracer.span(ANSWER_SPAN):
            pass
        second = telemetry.deltas()
        assert "work.items" not in second  # previous task's counters gone
        assert second[f"span.{ANSWER_SPAN}.calls"] == 1.0

    def test_toggles_between_tasks(self):
        telemetry = WorkerTelemetry()
        telemetry.begin(True)
        telemetry.inc("a")
        assert telemetry.deltas() == {"a": 1.0}
        telemetry.begin(False)
        assert telemetry.deltas() is None
        telemetry.begin(True)
        telemetry.inc("a")
        assert telemetry.deltas() == {"a": 1.0}  # not 2.0: per-task delta


class TestMergeWorkerMetrics:
    def test_labeled_and_aggregate_series(self):
        registry = MetricsRegistry()
        merge_worker_metrics(registry, 0, {"fast.answer.queries": 7.0})
        merge_worker_metrics(registry, 1, {"fast.answer.queries": 5.0})
        assert registry.counter(
            "shard.worker.fast.answer.queries", labels={"worker": 0}
        ) == 7.0
        assert registry.counter(
            "shard.worker.fast.answer.queries", labels={"worker": 1}
        ) == 5.0
        assert registry.counter("shard.all.fast.answer.queries") == 12.0
        assert merged_worker_counters(registry) == {"fast.answer.queries": 12.0}
        per_worker = merged_worker_counters(registry, aggregate=False)
        assert per_worker == {
            'fast.answer.queries{worker="0"}': 7.0,
            'fast.answer.queries{worker="1"}': 5.0,
        }

    def test_stage_seconds_exceeding_wall_time_raise(self):
        registry = MetricsRegistry()
        deltas = {
            f"span.{BUILD_SPAN}.seconds": 0.4,
            f"span.{ANSWER_SPAN}.seconds": 0.4,
        }
        merge_worker_metrics(registry, 0, deltas, task_wall=1.0)  # fine
        with pytest.raises(IndexStateError):
            merge_worker_metrics(registry, 0, deltas, task_wall=0.5)


# ---------------------------------------------- cross-process equivalence
class TestShardedTelemetryEquivalence:
    def test_pool_aggregates_equal_serial_counters_and_answers(self):
        serial_reg, serial_trace = run_sharded_trace(0)
        pool_reg, pool_trace = run_sharded_trace(2)
        assert pool_trace == serial_trace  # bit-identical answers
        assert deterministic_aggregates(pool_reg) == deterministic_aggregates(
            serial_reg
        )
        # Even the run-sensitive counters must agree with no crash in play.
        assert merged_worker_counters(pool_reg)[
            "shard.task.fresh_builds"
        ] == merged_worker_counters(serial_reg)["shard.task.fresh_builds"]

    def test_per_worker_series_sum_to_aggregate(self):
        pool_reg, _ = run_sharded_trace(2)
        per_worker = merged_worker_counters(pool_reg, aggregate=False)
        aggregates = merged_worker_counters(pool_reg)
        sums = {}
        for key, value in per_worker.items():
            name, labels = split_labels(key)
            assert set(labels) == {"worker"}
            sums[name] = sums.get(name, 0.0) + value
        for name, total in sums.items():
            assert total == pytest.approx(aggregates[name])
        # With two workers both stripes did real work.
        workers = {split_labels(k)[1]["worker"] for k in per_worker}
        assert workers == {"0", "1"}

    def test_crash_and_respawn_does_not_double_count(self):
        clean_reg, clean_trace = run_sharded_trace(2)
        crash_reg, crash_trace = run_sharded_trace(2, kill_idle_worker=True)
        assert crash_trace == clean_trace
        assert crash_reg.counter("shard.respawns") >= 1
        # The re-dispatched task merged exactly once: every deterministic
        # counter matches the crash-free run (the respawned worker's full
        # rebuild only moves delta.*/fresh_builds, which are excluded).
        assert deterministic_aggregates(crash_reg) == deterministic_aggregates(
            clean_reg
        )


# ------------------------------------------------------------ health
class TestHealthGauges:
    def test_stripe_population_and_imbalance(self):
        registry, _ = run_sharded_trace(2, n=600)
        total = sum(
            registry.gauge("shard.stripe.objects", labels={"shard": s})
            for s in range(2)
        )
        assert total == 600
        assert registry.gauge("shard.imbalance_ratio") >= 1.0
        assert (
            registry.gauge("shard.stripe.queries", labels={"shard": 0})
            + registry.gauge("shard.stripe.queries", labels={"shard": 1})
            >= 20
        )
        assert registry.gauge("shard.pool.last_queue_wait_seconds") >= 0.0
        assert registry.histogram("shard.pool.queue_wait_seconds").count > 0

    def test_heartbeat_latency_gauges(self):
        rng = np.random.default_rng(3)
        registry = MetricsRegistry()
        system = MonitoringSystem.sharded(
            2, rng.random((6, 2)), workers=2, shards=2,
            oversubscribe=True, registry=registry,
        )
        with system:
            system.load(rng.random((80, 2)))
            alive = system.engine.heartbeat(timeout=10.0)
            assert all(alive.values())
            for worker in alive:
                latency = registry.gauge(
                    "shard.pool.heartbeat_seconds", labels={"worker": worker}
                )
                assert 0.0 < latency < 10.0
            assert registry.gauge("shard.pool.heartbeat_seconds_max") >= max(
                registry.gauge(
                    "shard.pool.heartbeat_seconds", labels={"worker": w}
                )
                for w in alive
            )

    def test_respawn_gauge_tracks_pool(self):
        registry, _ = run_sharded_trace(2, kill_idle_worker=True)
        assert registry.gauge("shard.pool.respawns") == registry.counter(
            "shard.respawns"
        )


# ------------------------------------------------------------ endpoint
class TestMetricsServer:
    def test_serves_published_labeled_text(self):
        registry = MetricsRegistry()
        merge_worker_metrics(registry, 0, {"fast.answer.queries": 4.0})
        server, _ = start_metrics_server(registry, port=0)
        try:
            host, port = server.server_address[:2]
            body = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ).read().decode()
            assert (
                'repro_shard_worker_fast_answer_queries_total{worker="0"} 4'
                in body
            )
            # The endpoint serves the published snapshot, not the live
            # registry: new counts appear only after the next publish().
            merge_worker_metrics(registry, 0, {"fast.answer.queries": 1.0})
            stale = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ).read().decode()
            assert stale == body
            server.publish()
            fresh = urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ).read().decode()
            assert "queries_total{worker=\"0\"} 5" in fresh
            with pytest.raises(urllib.request.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/other", timeout=10
                )
        finally:
            server.shutdown()

    def test_publish_accepts_prerendered_text(self):
        registry = MetricsRegistry()
        server, _ = start_metrics_server(registry, port=0)
        try:
            server.publish("custom snapshot\n")
            assert server.render() == "custom snapshot\n"
            registry.inc("x")
            server.publish(prometheus_text(registry))
            assert "repro_x_total 1" in server.render()
        finally:
            server.shutdown()


# ------------------------------------------------------------ trend
class TestTrend:
    def test_flatten_numeric_paths(self):
        flat = flatten_numeric(
            {"runs": {"fast": {"total_s": 1.5, "ok": True}},
             "samples": [0.1, 0.2]}
        )
        assert flat == {
            "runs.fast.total_s": 1.5,
            "samples[0]": 0.1,
            "samples[1]": 0.2,
        }

    def test_metric_direction_heuristics(self):
        assert metric_direction("runs.fast.total_s") == "lower"
        assert metric_direction("variants.2w2s.answer_seconds") == "lower"
        assert metric_direction("respawns") == "lower"
        assert metric_direction("speedup_maxw_vs_1w") == "higher"
        assert metric_direction("workload.np") is None
        assert metric_direction("runs.fast.index_std") is None  # _std != _s
        assert metric_direction("total_s.details") is None  # leaf only

    def test_regressions_and_improvements(self):
        baseline = {"total_s": 1.0, "speedup": 2.0, "np": 1000}
        worse = {"total_s": 1.3, "speedup": 1.2, "np": 1000}
        entries = {e.path: e for e in compare_benchmarks(baseline, worse)}
        assert entries["total_s"].regression
        assert entries["speedup"].regression
        assert not entries["np"].regression  # no direction, never flagged
        better = {"total_s": 0.5, "speedup": 4.0, "np": 1000}
        entries = {e.path: e for e in compare_benchmarks(baseline, better)}
        assert not entries["total_s"].regression
        assert entries["total_s"].improvement
        within = {"total_s": 1.05, "speedup": 2.1, "np": 1000}
        entries = {e.path: e for e in compare_benchmarks(baseline, within)}
        assert not any(e.regression or e.improvement for e in entries.values())

    def test_report_flags_fail_only_on_regression(self):
        baseline = {"total_s": 1.0}
        ok_report = render_trend_report(
            {"B.json": compare_benchmarks(baseline, {"total_s": 1.0})}
        )
        assert "TREND OK" in ok_report
        fail_report = render_trend_report(
            {"B.json": compare_benchmarks(baseline, {"total_s": 2.0})}
        )
        assert "TREND FAIL" in fail_report and "REGRESSION" in fail_report

    def test_round_trips_real_bench_json(self, tmp_path):
        payload = {"workload": {"np": 100}, "runs": {"a": {"total_s": 0.5}}}
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(payload))
        current = json.loads(path.read_text())
        entries = compare_benchmarks(payload, current)
        assert all(not e.regression for e in entries)


# ------------------------------------------------------------ validation
class TestShardedValidation:
    def test_run_sharded_validation_passes(self):
        from repro.obs.validate import run_sharded_validation

        report = run_sharded_validation(
            n_objects=400, n_queries=16, k=4, cycles=2
        )
        assert report.ok, report.render()
        names = [check.name for check in report.checks]
        assert "worker_vs_serial_counter_mismatches" in names
        assert "candidates/query" in names
