"""Tests for motion trace recording and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.monitor import MonitoringSystem
from repro.errors import ConfigurationError
from repro.motion import (
    MotionTrace,
    RandomWalkModel,
    TraceReplay,
    make_dataset,
    make_queries,
)


class TestConstruction:
    def test_needs_snapshots(self):
        with pytest.raises(ConfigurationError):
            MotionTrace([])

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            MotionTrace([np.zeros((3, 3))])
        with pytest.raises(ConfigurationError):
            MotionTrace([np.zeros((3, 2)), np.zeros((4, 2))])

    def test_record_negative_cycles(self):
        with pytest.raises(ConfigurationError):
            MotionTrace.record(np.zeros((2, 2)), RandomWalkModel(seed=1), -1)


class TestRecordReplay:
    def test_record_lengths(self, uniform_1k):
        trace = MotionTrace.record(uniform_1k, RandomWalkModel(seed=2), cycles=5)
        assert len(trace) == 6
        assert trace.cycles == 5
        assert trace.n_objects == 1000

    def test_record_matches_direct_simulation(self, uniform_1k):
        motion_a = RandomWalkModel(vmax=0.01, seed=3)
        trace = MotionTrace.record(uniform_1k, motion_a, cycles=4)
        motion_b = RandomWalkModel(vmax=0.01, seed=3)
        current = uniform_1k
        for step in range(1, 5):
            current = motion_b.step(current)
            np.testing.assert_array_equal(trace[step], current)

    def test_replay_sequence(self, uniform_1k):
        trace = MotionTrace.record(uniform_1k, RandomWalkModel(seed=4), cycles=3)
        replay = trace.replay()
        np.testing.assert_array_equal(replay.initial(), uniform_1k)
        seen = [replay.step() for _ in range(3)]
        for step, snapshot in enumerate(seen, start=1):
            np.testing.assert_array_equal(snapshot, trace[step])
        assert replay.exhausted
        with pytest.raises(ConfigurationError):
            replay.step()

    def test_rewind(self, uniform_1k):
        trace = MotionTrace.record(uniform_1k, RandomWalkModel(seed=5), cycles=2)
        replay = trace.replay()
        first = replay.step()
        replay.rewind()
        np.testing.assert_array_equal(replay.step(), first)

    def test_snapshots_are_isolated_copies(self, uniform_1k):
        trace = MotionTrace.record(uniform_1k, RandomWalkModel(seed=6), cycles=1)
        trace[0][0, 0] = 99.0  # mutate a returned array
        # The stored copy changed (same object), but the original input
        # array used by the caller was copied at record time.
        assert uniform_1k[0, 0] != 99.0


class TestPersistence:
    def test_save_load_roundtrip(self, uniform_1k, tmp_path):
        trace = MotionTrace.record(uniform_1k, RandomWalkModel(seed=7), cycles=3)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = MotionTrace.load(path)
        assert loaded.cycles == trace.cycles
        for a, b in zip(trace, loaded):
            np.testing.assert_array_equal(a, b)


class TestFairComparison:
    def test_two_methods_same_trace_same_answers(self):
        objects = make_dataset("uniform", 600, seed=8)
        queries = make_queries(5, seed=9)
        trace = MotionTrace.record(objects, RandomWalkModel(seed=10), cycles=3)

        def run(factory):
            system = factory(4, queries)
            replay = trace.replay()
            system.load(replay.initial())
            answers = None
            while not replay.exhausted:
                answers = system.tick(replay.step())
            return answers

        a = run(MonitoringSystem.object_indexing)
        b = run(MonitoringSystem.hierarchical)
        for qa, qb in zip(a, b):
            assert [round(d, 12) for _, d in qa.neighbors] == [
                round(d, 12) for _, d in qb.neighbors
            ]
