"""Unit tests for repro.core.answers."""

from __future__ import annotations

import math

import pytest

from repro.core.answers import AnswerList, QueryAnswer, answers_equal
from repro.errors import ConfigurationError


class TestAnswerList:
    def test_k_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AnswerList(0)

    def test_empty(self):
        answers = AnswerList(3)
        assert len(answers) == 0
        assert not answers.full
        assert answers.worst_dist2 == math.inf
        assert answers.kth_dist() == math.inf

    def test_offer_fills(self):
        answers = AnswerList(2)
        assert answers.offer(0.5, 1)
        assert answers.offer(0.2, 2)
        assert answers.full
        assert answers.object_ids() == [2, 1]

    def test_offer_rejects_worse(self):
        answers = AnswerList(2)
        answers.offer(0.1, 1)
        answers.offer(0.2, 2)
        assert not answers.offer(0.3, 3)
        assert answers.object_ids() == [1, 2]

    def test_offer_replaces_worst(self):
        answers = AnswerList(2)
        answers.offer(0.1, 1)
        answers.offer(0.5, 2)
        assert answers.offer(0.2, 3)
        assert answers.object_ids() == [1, 3]

    def test_worst_dist2_tracks_kth(self):
        answers = AnswerList(2)
        answers.offer(0.4, 1)
        assert answers.worst_dist2 == math.inf
        answers.offer(0.1, 2)
        assert answers.worst_dist2 == 0.4
        answers.offer(0.2, 3)
        assert answers.worst_dist2 == pytest.approx(0.2)

    def test_ties_broken_by_id(self):
        answers = AnswerList(3)
        answers.offer(0.5, 9)
        answers.offer(0.5, 3)
        answers.offer(0.5, 6)
        assert answers.object_ids() == [3, 6, 9]

    def test_neighbors_take_sqrt(self):
        answers = AnswerList(1)
        answers.offer(0.25, 4)
        assert answers.neighbors() == [(4, 0.5)]

    def test_kth_dist(self):
        answers = AnswerList(2)
        answers.offer(0.04, 1)
        answers.offer(0.09, 2)
        assert answers.kth_dist() == pytest.approx(0.3)

    def test_clear(self):
        answers = AnswerList(2)
        answers.offer(0.1, 1)
        answers.clear()
        assert len(answers) == 0

    def test_equal_distance_resolves_to_lowest_id(self):
        # Ties at the k-th slot resolve to the lowest ID regardless of
        # arrival order — the list is a pure function of the candidate
        # multiset, so different index backends agree exactly.
        answers = AnswerList(1)
        answers.offer(0.2, 1)
        assert answers.offer(0.2, 0)
        assert answers.object_ids() == [0]
        assert not answers.offer(0.2, 1)
        reversed_order = AnswerList(1)
        reversed_order.offer(0.2, 0)
        assert not reversed_order.offer(0.2, 1)
        assert reversed_order.object_ids() == [0]

    def test_iteration_yields_sorted_pairs(self):
        answers = AnswerList(3)
        for d2, ident in [(0.3, 1), (0.1, 2), (0.2, 3)]:
            answers.offer(d2, ident)
        assert list(answers) == [(0.1, 2), (0.2, 3), (0.3, 1)]


class TestQueryAnswer:
    def test_fields(self):
        qa = QueryAnswer(3, 7.0, ((10, 0.1), (20, 0.2)))
        assert qa.query_id == 3
        assert qa.timestamp == 7.0
        assert qa.k == 2
        assert qa.object_ids() == (10, 20)
        assert qa.kth_dist() == 0.2

    def test_empty_answer(self):
        qa = QueryAnswer(0, 0.0)
        assert qa.k == 0
        assert qa.kth_dist() == math.inf

    def test_frozen(self):
        qa = QueryAnswer(0, 0.0)
        with pytest.raises(AttributeError):
            qa.query_id = 5


class TestAnswersEqual:
    def test_identical(self):
        answer = [(1, 0.1), (2, 0.2)]
        assert answers_equal(answer, answer)

    def test_different_lengths(self):
        assert not answers_equal([(1, 0.1)], [(1, 0.1), (2, 0.2)])

    def test_different_distances(self):
        assert not answers_equal([(1, 0.1)], [(1, 0.2)])

    def test_tie_reordering_allowed(self):
        left = [(1, 0.1), (2, 0.1), (3, 0.5)]
        right = [(2, 0.1), (1, 0.1), (3, 0.5)]
        assert answers_equal(left, right)

    def test_interior_tie_with_different_ids_rejected(self):
        left = [(1, 0.1), (2, 0.1), (9, 0.5)]
        right = [(1, 0.1), (3, 0.1), (9, 0.5)]
        assert not answers_equal(left, right)

    def test_kth_boundary_tie_with_different_ids_accepted(self):
        # Both are valid 2-NN answers when three objects tie at the k-th
        # distance; the comparator must accept either truncation.
        left = [(1, 0.1), (2, 0.2)]
        right = [(1, 0.1), (3, 0.2)]
        assert answers_equal(left, right)

    def test_near_ties_within_tolerance(self):
        left = [(1, 0.1), (2, 0.1 + 1e-13)]
        right = [(2, 0.1), (1, 0.1 + 1e-13)]
        assert answers_equal(left, right)
