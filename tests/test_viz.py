"""Tests for the ASCII density plot helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion import make_dataset
from repro.viz import density_plot, side_by_side


class TestDensityPlot:
    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            density_plot(np.zeros((1, 2)), width=0)
        with pytest.raises(ConfigurationError):
            density_plot(np.zeros((1, 2)), ramp="x")

    def test_dimensions_with_border(self):
        plot = density_plot(make_dataset("uniform", 100, seed=1), width=20, height=10)
        lines = plot.splitlines()
        assert len(lines) == 12  # 10 rows + 2 border lines
        assert all(len(line) == 22 for line in lines)

    def test_dimensions_without_border(self):
        plot = density_plot(
            make_dataset("uniform", 100, seed=1), width=20, height=10, border=False
        )
        lines = plot.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_empty_points(self):
        plot = density_plot(np.empty((0, 2)), width=5, height=3, border=False)
        assert plot == "\n".join([" " * 5] * 3)

    def test_single_point_position(self):
        # A point near (0, 0) must appear in the bottom-left corner
        # (the y axis points up).
        plot = density_plot(
            np.asarray([[0.01, 0.01]]), width=10, height=5, border=False
        )
        lines = plot.splitlines()
        assert lines[-1][0] != " "
        assert all(c == " " for c in lines[0])

    def test_dense_cell_darker_than_sparse(self):
        ramp = " .#"
        points = np.asarray([[0.05, 0.05]] * 10 + [[0.95, 0.95]])
        plot = density_plot(points, width=10, height=10, ramp=ramp, border=False)
        lines = plot.splitlines()
        assert lines[-1][0] == "#"  # dense corner
        assert lines[0][-1] == "."  # single point still visible

    def test_skewed_data_uses_darker_chars(self):
        uniform = density_plot(make_dataset("uniform", 2000, seed=2), border=False)
        skewed = density_plot(make_dataset("hi_skewed", 2000, seed=2), border=False)
        # Highly skewed data leaves far more empty space.
        assert skewed.count(" ") > uniform.count(" ")


class TestSideBySide:
    def test_empty(self):
        assert side_by_side([]) == ""

    def test_joins_rows(self):
        a = "ab\ncd"
        b = "ef\ngh"
        joined = side_by_side([a, b], gap=1)
        assert joined.splitlines() == ["ab ef", "cd gh"]

    def test_labels(self):
        joined = side_by_side(["ab\ncd"], labels=["X"])
        assert joined.splitlines()[0].strip() == "X"

    def test_label_mismatch(self):
        with pytest.raises(ConfigurationError):
            side_by_side(["ab"], labels=["x", "y"])

    def test_uneven_heights_padded(self):
        joined = side_by_side(["ab", "ef\ngh"], gap=1)
        assert joined.splitlines() == ["ab ef", "   gh"]
