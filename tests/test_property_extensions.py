"""Property-based tests for the extension monitors (RkNN, GNN, range)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.gnn import GroupQuery, brute_force_group_knn, group_knn
from repro.core.object_index import ObjectIndex
from repro.core.range_monitor import (
    CircleRegion,
    RangeMonitor,
    RectRegion,
    brute_force_range,
)
from repro.core.rknn import RKNNMonitor

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False, width=64
)
point = st.tuples(coordinate, coordinate)


def as_array(points):
    return np.asarray(points, dtype=np.float64)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(point, min_size=4, max_size=40),
    st.lists(point, min_size=1, max_size=4),
    st.integers(min_value=1, max_value=3),
)
def test_rknn_reverse_condition_holds(object_points, query_points, k):
    """Every reported reverse neighbor p satisfies dist(p, q) <= dk(p),
    and every object not reported fails it (up to float boundary ties)."""
    positions = as_array(object_points)
    queries = as_array(query_points)
    monitor = RKNNMonitor(k, queries)
    answers = monitor.tick(positions)
    dk = monitor.kth_distances()
    for query_id, members in enumerate(answers):
        qx, qy = queries[query_id]
        member_set = set(members)
        for object_id in range(len(positions)):
            px, py = positions[object_id]
            distance = float(np.hypot(px - qx, py - qy))
            if object_id in member_set:
                assert distance <= dk[object_id] + 1e-9
            else:
                assert distance >= dk[object_id] - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(point, min_size=2, max_size=40),
    st.lists(point, min_size=1, max_size=5),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["sum", "max"]),
)
def test_group_knn_matches_brute(object_points, group_points, k, aggregate):
    positions = as_array(object_points)
    if k > len(positions):
        k = len(positions)
    index = ObjectIndex(n_objects=len(positions))
    index.build(positions)
    group = as_array(group_points)
    got = group_knn(index, GroupQuery(group), k, aggregate)
    want = brute_force_group_knn(positions, group, k, aggregate)
    got_d = [round(d, 9) for _, d in got]
    want_d = [round(d, 9) for _, d in want]
    assert got_d == want_d


@st.composite
def region(draw):
    if draw(st.booleans()):
        x1, y1 = draw(point)
        x2, y2 = draw(point)
        return RectRegion(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
    cx, cy = draw(point)
    radius = draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    return CircleRegion(cx, cy, radius)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(point, min_size=0, max_size=60),
    st.lists(region(), min_size=1, max_size=4),
)
def test_range_monitor_matches_brute(object_points, regions):
    positions = as_array(object_points).reshape(-1, 2)
    monitor = RangeMonitor(regions, ncells=16)
    got = monitor.tick(positions)
    want = brute_force_range(positions, regions)
    assert [sorted(g) for g in got] == want
