"""Unit and integration tests for the one-level Object-Index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.object_index import ObjectIndex
from repro.errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset
from tests.conftest import assert_same_distances


def built_index(points, **kwargs):
    index = ObjectIndex(**kwargs) if kwargs else ObjectIndex(n_objects=len(points))
    index.build(points)
    return index


class TestConstruction:
    def test_needs_one_size_spec(self):
        with pytest.raises(ConfigurationError):
            ObjectIndex()
        with pytest.raises(ConfigurationError):
            ObjectIndex(ncells=4, delta=0.25)

    def test_optimal_sizing(self):
        index = ObjectIndex(n_objects=400)
        assert index.ncells == 20
        assert index.delta == pytest.approx(0.05)

    def test_not_built_initially(self):
        index = ObjectIndex(ncells=4)
        assert not index.built
        with pytest.raises(IndexStateError):
            index.knn_overhaul(0.5, 0.5, 1)
        with pytest.raises(IndexStateError):
            index.update(np.zeros((1, 2)))
        with pytest.raises(IndexStateError):
            index.validate()


class TestBuild:
    def test_build_sets_state(self, uniform_1k):
        index = built_index(uniform_1k)
        assert index.built
        assert index.n_objects == 1000
        index.validate()

    def test_rebuild_replaces(self, uniform_1k):
        index = built_index(uniform_1k)
        index.build(uniform_1k[:100])
        assert index.n_objects == 100
        index.validate()

    def test_position_of(self, uniform_1k):
        index = built_index(uniform_1k)
        x, y = index.position_of(17)
        assert (x, y) == (uniform_1k[17, 0], uniform_1k[17, 1])

    def test_empty_population(self):
        index = ObjectIndex(ncells=4)
        index.build(np.empty((0, 2)))
        assert index.n_objects == 0
        with pytest.raises(NotEnoughObjectsError):
            index.knn_overhaul(0.5, 0.5, 1)


class TestKnnOverhaul:
    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_matches_brute_force_uniform(self, uniform_1k, k):
        index = built_index(uniform_1k)
        for qx, qy in [(0.5, 0.5), (0.01, 0.01), (0.99, 0.45), (0.33, 0.92)]:
            got = index.knn_overhaul(qx, qy, k).neighbors()
            want = brute_force_knn(uniform_1k, qx, qy, k)
            assert_same_distances(got, want)

    def test_matches_brute_force_skewed(self, skewed_1k):
        index = built_index(skewed_1k)
        for qx, qy in [(0.5, 0.5), (0.05, 0.95)]:
            got = index.knn_overhaul(qx, qy, 10).neighbors()
            want = brute_force_knn(skewed_1k, qx, qy, 10)
            assert_same_distances(got, want)

    def test_k_equals_population(self):
        points = np.asarray([[0.1, 0.1], [0.9, 0.9], [0.5, 0.2]])
        index = built_index(points, ncells=3)
        got = index.knn_overhaul(0.5, 0.5, 3).neighbors()
        want = brute_force_knn(points, 0.5, 0.5, 3)
        assert_same_distances(got, want)

    def test_k_too_large_raises(self, uniform_1k):
        index = built_index(uniform_1k)
        with pytest.raises(NotEnoughObjectsError):
            index.knn_overhaul(0.5, 0.5, 1001)

    def test_query_outside_region_still_exact(self, uniform_1k):
        # locate() clamps, so even out-of-region queries are answered.
        index = built_index(uniform_1k)
        got = index.knn_overhaul(1.2, -0.3, 5).neighbors()
        want = brute_force_knn(uniform_1k, 1.2, -0.3, 5)
        assert_same_distances(got, want)

    def test_strict_paper_rcrit_also_exact(self, uniform_1k):
        index = built_index(uniform_1k, ncells=31, strict_paper_rcrit=True)
        for qx, qy in [(0.5, 0.5), (0.02, 0.97)]:
            got = index.knn_overhaul(qx, qy, 10).neighbors()
            want = brute_force_knn(uniform_1k, qx, qy, 10)
            assert_same_distances(got, want)

    def test_pruning_does_not_change_answers(self, skewed_1k):
        pruned = built_index(skewed_1k, ncells=31, prune_cells=True)
        plain = built_index(skewed_1k, ncells=31, prune_cells=False)
        for qx, qy in [(0.5, 0.5), (0.1, 0.1), (0.77, 0.31)]:
            a = pruned.knn_overhaul(qx, qy, 8).neighbors()
            b = plain.knn_overhaul(qx, qy, 8).neighbors()
            assert_same_distances(a, b)

    def test_single_cell_grid(self, uniform_1k):
        index = built_index(uniform_1k, ncells=1)
        got = index.knn_overhaul(0.4, 0.6, 7).neighbors()
        want = brute_force_knn(uniform_1k, 0.4, 0.6, 7)
        assert_same_distances(got, want)

    def test_boundary_float_regression(self):
        # Regression: y just below 1.0 used to land in different cells in
        # the bulk loader (y * n) and the query path (y / delta), making
        # the critical rectangle invert and the answer come back empty.
        y = 0.9999999999999999
        points = np.asarray([[0.0, y]])
        index = built_index(points, ncells=3)
        got = index.knn_overhaul(0.0, y, 1).neighbors()
        want = brute_force_knn(points, 0.0, y, 1)
        assert_same_distances(got, want)

    def test_duplicate_points(self):
        points = np.full((20, 2), 0.5)
        index = built_index(points, ncells=5)
        answer = index.knn_overhaul(0.5, 0.5, 5)
        assert answer.kth_dist() == 0.0
        assert len(answer) == 5


class TestIncrementalUpdate:
    def test_no_motion_no_moves(self, uniform_1k):
        index = built_index(uniform_1k)
        assert index.update(uniform_1k.copy()) == 0
        index.validate()

    def test_small_motion_few_moves(self, uniform_1k):
        index = built_index(uniform_1k)
        motion = RandomWalkModel(vmax=0.001, seed=3)
        moved = motion.step(uniform_1k)
        moves = index.update(moved)
        # With vmax far below delta (~0.0316) most objects stay put.
        assert 0 < moves < 200
        index.validate()

    def test_large_motion_many_moves(self, uniform_1k):
        index = built_index(uniform_1k)
        motion = RandomWalkModel(vmax=0.2, seed=3)
        moves = index.update(motion.step(uniform_1k))
        assert moves > 500
        index.validate()

    def test_update_then_queries_exact(self, uniform_1k):
        index = built_index(uniform_1k)
        motion = RandomWalkModel(vmax=0.01, seed=5)
        current = uniform_1k
        for _ in range(5):
            current = motion.step(current)
            index.update(current)
        got = index.knn_overhaul(0.42, 0.58, 10).neighbors()
        want = brute_force_knn(current, 0.42, 0.58, 10)
        assert_same_distances(got, want)

    def test_population_change_rejected(self, uniform_1k):
        index = built_index(uniform_1k)
        with pytest.raises(IndexStateError):
            index.update(uniform_1k[:500])

    def test_update_matches_fresh_build(self, uniform_1k):
        """Incremental update reuses the stored flat-cell array, so after
        any number of updates the grid must equal a from-scratch build."""
        index = built_index(uniform_1k)
        fresh = ObjectIndex(n_objects=len(uniform_1k))
        motion = RandomWalkModel(vmax=0.05, seed=9)
        current = uniform_1k
        for _ in range(4):
            current = motion.step(current)
            index.update(current)
        fresh.build(current)
        index.validate()
        assert np.array_equal(index._cell_flat, fresh._cell_flat)
        assert index._x == fresh._x and index._y == fresh._y
        got = [sorted(b) for b in index.grid._buckets]
        want = [sorted(b) for b in fresh.grid._buckets]
        assert got == want

    def test_sorted_cells_mode(self, uniform_1k):
        index = built_index(uniform_1k, ncells=31, sorted_cells=True)
        motion = RandomWalkModel(vmax=0.05, seed=5)
        current = motion.step(uniform_1k)
        index.update(current)
        index.validate()
        got = index.knn_overhaul(0.5, 0.5, 5).neighbors()
        want = brute_force_knn(current, 0.5, 0.5, 5)
        assert_same_distances(got, want)


class TestKnnIncremental:
    def test_matches_brute_after_motion(self, uniform_1k):
        index = built_index(uniform_1k)
        previous = index.knn_overhaul(0.5, 0.5, 10).object_ids()
        motion = RandomWalkModel(vmax=0.005, seed=9)
        moved = motion.step(uniform_1k)
        index.build(moved)
        got = index.knn_incremental(0.5, 0.5, 10, previous).neighbors()
        want = brute_force_knn(moved, 0.5, 0.5, 10)
        assert_same_distances(got, want)

    def test_falls_back_without_previous(self, uniform_1k):
        index = built_index(uniform_1k)
        got = index.knn_incremental(0.5, 0.5, 10, []).neighbors()
        want = brute_force_knn(uniform_1k, 0.5, 0.5, 10)
        assert_same_distances(got, want)

    def test_falls_back_on_stale_ids(self, uniform_1k):
        index = built_index(uniform_1k)
        got = index.knn_incremental(0.5, 0.5, 3, [5000, 6000, 7000]).neighbors()
        want = brute_force_knn(uniform_1k, 0.5, 0.5, 3)
        assert_same_distances(got, want)

    def test_repeated_cycles_stay_exact(self, skewed_1k):
        index = built_index(skewed_1k)
        motion = RandomWalkModel(vmax=0.01, seed=1)
        current = skewed_1k
        previous = index.knn_overhaul(0.3, 0.7, 8).object_ids()
        for _ in range(10):
            current = motion.step(current)
            index.update(current)
            answer = index.knn_incremental(0.3, 0.7, 8, previous)
            want = brute_force_knn(current, 0.3, 0.7, 8)
            assert_same_distances(answer.neighbors(), want)
            previous = answer.object_ids()


class TestCriticalRectStats:
    def test_stats_cover_k(self, uniform_1k):
        index = built_index(uniform_1k)
        cells, objects = index.critical_rect_stats(0.5, 0.5, 10)
        assert cells >= 1
        assert objects >= 10

    def test_dense_area_has_fewer_cells(self, hi_skewed_1k):
        index = built_index(hi_skewed_1k)
        # Find a dense spot: the cell with the most objects.
        occupancy = index.grid.occupancy()
        dense_flat = int(np.argmax(occupancy))
        n = index.ncells
        dense_x = (dense_flat % n + 0.5) * index.delta
        dense_y = (dense_flat // n + 0.5) * index.delta
        dense_cells, _ = index.critical_rect_stats(dense_x, dense_y, 5)
        sparse_cells, _ = index.critical_rect_stats(0.999, 0.001, 5)
        assert dense_cells <= sparse_cells
