"""Unit tests for the observability layer: registry, spans, exporters."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    CounterBlock,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    history_records,
    label_key,
    mean_cycle_counters,
    parse_prometheus_text,
    split_labels,
    prometheus_text,
    read_history_jsonl,
    span_seconds,
    write_history_jsonl,
)


# ---------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 4)
        assert reg.counter("a.b") == 5.0
        assert reg.counter("missing") == 0.0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 2.5)
        assert reg.gauge("g") == 2.5
        assert reg.gauge_values() == {"g": 2.5}

    def test_counters_since_returns_nonzero_deltas(self):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        reg.inc("y", 1)
        before = reg.counter_values()
        reg.inc("x", 2)
        reg.inc("z", 7)
        delta = reg.counters_since(before)
        assert delta == {"x": 2.0, "z": 7.0}

    def test_counters_since_none_means_everything(self):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        assert reg.counters_since(None) == {"x": 3.0}

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        reg.reset()
        assert reg.counter_values() == {}
        assert reg.gauge_values() == {}
        assert reg.snapshot()["histograms"] == {}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False
        assert NULL_REGISTRY.enabled is False

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.inc("a", 5)
        null.set_gauge("g", 1.0)
        null.observe("h", 0.1)
        assert null.counter("a") == 0.0
        assert null.counter_values() == {}
        assert null.counters_since(None) == {}
        null.inc("a", 5, labels={"worker": 1})  # labeled no-ops too
        assert null.counter("a", labels={"worker": 1}) == 0.0


class TestLabels:
    def test_label_key_sorts_and_round_trips(self):
        key = label_key("a.b", {"worker": 2, "shard": 0})
        assert key == 'a.b{shard="0",worker="2"}'  # keys sorted
        assert label_key("a.b", {"shard": 0, "worker": 2}) == key
        assert split_labels(key) == ("a.b", {"shard": "0", "worker": "2"})
        assert label_key("a.b", None) == "a.b"
        assert split_labels("a.b") == ("a.b", {})

    def test_labeled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.inc("tasks", 2, labels={"worker": 0})
        reg.inc("tasks", 3, labels={"worker": 1})
        reg.inc("tasks", 10)  # the unlabeled series is its own sample
        assert reg.counter("tasks", labels={"worker": 0}) == 2.0
        assert reg.counter("tasks", labels={"worker": 1}) == 3.0
        assert reg.counter("tasks") == 10.0
        reg.set_gauge("pop", 7, labels={"shard": 1})
        assert reg.gauge("pop", labels={"shard": 1}) == 7.0
        reg.observe("wait", 0.01, labels={"worker": 0})
        assert reg.histogram("wait", labels={"worker": 0}).count == 1
        assert reg.histogram("wait") is None

    def test_labeled_counters_survive_counters_since(self):
        reg = MetricsRegistry()
        reg.inc("tasks", 1, labels={"worker": 0})
        before = reg.counter_values()
        reg.inc("tasks", 4, labels={"worker": 0})
        assert reg.counters_since(before) == {'tasks{worker="0"}': 4.0}

    def test_prometheus_renders_native_label_sets(self):
        reg = MetricsRegistry()
        reg.inc("shard.worker.tasks", 3, labels={"worker": 0})
        reg.inc("shard.worker.tasks", 5, labels={"worker": 1})
        reg.set_gauge("shard.stripe.objects", 42, labels={"shard": 1})
        text = prometheus_text(reg)
        assert 'repro_shard_worker_tasks_total{worker="0"} 3' in text
        assert 'repro_shard_worker_tasks_total{worker="1"} 5' in text
        assert 'repro_shard_stripe_objects{shard="1"} 42' in text
        # One HELP/TYPE header per metric name, not per labeled series.
        assert text.count("# TYPE repro_shard_worker_tasks_total counter") == 1
        parsed = parse_prometheus_text(text)
        key = 'repro_shard_worker_tasks_total{worker="1"}'
        assert parsed[key] == 5.0
        name, labels = split_labels(key)
        assert name == "repro_shard_worker_tasks_total"
        assert labels == {"worker": "1"}

    def test_prometheus_labeled_histogram_merges_le(self):
        reg = MetricsRegistry()
        reg.observe("wait", 0.01, bounds=(0.1, 1.0), labels={"worker": 0})
        text = prometheus_text(reg)
        assert 'repro_wait_bucket{le="0.1",worker="0"} 1' in text
        assert 'repro_wait_bucket{le="+Inf",worker="0"} 1' in text
        assert 'repro_wait_count{worker="0"} 1' in text
        parsed = parse_prometheus_text(text)
        assert parsed['repro_wait_sum{worker="0"}'] == pytest.approx(0.01)

    def test_label_values_escaped_in_exposition(self):
        reg = MetricsRegistry()
        reg.inc("weird", 1, labels={"path": 'a"b\\c'})
        text = prometheus_text(reg)
        assert 'path="a\\"b\\\\c"' in text


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram(bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        # cumulative (bound, count) pairs: <=0.1, <=1.0, <=10.0, +Inf
        assert [c for _, c in h.cumulative()] == [1, 2, 3, 4]
        assert h.cumulative()[-1][0] == float("inf")

    def test_boundary_value_falls_in_bucket(self):
        h = Histogram(bounds=(1.0,))
        h.observe(1.0)
        assert [c for _, c in h.cumulative()] == [1, 1]

    def test_registry_observe_uses_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("cycle.total_seconds", 0.002)
        h = reg.histogram("cycle.total_seconds")
        assert h.bounds == DEFAULT_TIME_BUCKETS
        assert h.count == 1


# ----------------------------------------------------------------- tracing
class TestTracer:
    def test_nested_span_paths(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        with tracer.span("answer"):
            with tracer.span("gather"):
                pass
            with tracer.span("select"):
                pass
        counters = reg.counter_values()
        assert counters["span.answer.calls"] == 1.0
        assert counters["span.answer.gather.calls"] == 1.0
        assert counters["span.answer.select.calls"] == 1.0
        assert counters["span.answer.seconds"] >= (
            counters["span.answer.gather.seconds"]
            + counters["span.answer.select.seconds"]
        )
        assert tracer.depth == 0

    def test_exception_still_pops_and_records(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.depth == 0
        counters = reg.counter_values()
        assert counters["span.outer.calls"] == 1.0
        assert counters["span.outer.inner.calls"] == 1.0
        # a fresh span after the exception nests from the root again
        with tracer.span("next"):
            pass
        assert "span.next.calls" in reg.counter_values()

    def test_span_duration_recorded(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("s") as span:
            time.sleep(0.001)
        assert span.duration >= 0.001

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            with NULL_TRACER.span("nested"):
                pass
        assert span.duration == 0.0
        assert NULL_TRACER.depth == 0

    def test_span_seconds_helper(self):
        counters = {
            "span.answer.seconds": 0.5,
            "span.answer.calls": 2.0,
            "oi.answer.cells_visited": 9.0,
        }
        assert span_seconds(counters) == {"answer": 0.5}


class TestNoOpOverhead:
    def test_disabled_emission_is_cheap(self):
        """A null-registry inc must cost roughly a method call, not more.

        Generous bound (20x an attribute lookup loop) so the test cannot
        flake on slow CI; the real <3% gate lives in
        benchmarks/bench_obs_overhead.py.
        """
        null = NULL_REGISTRY
        n = 50_000
        start = time.perf_counter()
        for _ in range(n):
            null.inc("a.b", 3)
        null_cost = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(n):
            pass
        loop_cost = time.perf_counter() - start
        assert null_cost < max(20 * loop_cost, 0.25)


# ---------------------------------------------------------------- counters
class TestCounterBlock:
    def test_snapshot_and_diff(self):
        class Block(CounterBlock):
            FIELDS = ("hits", "misses")

        b = Block()
        assert b.hits == 0 and b.misses == 0
        before = b.snapshot()
        b.hits += 3
        assert b.diff(before) == {"hits": 3}
        b.reset()
        assert b.snapshot() == {"hits": 0, "misses": 0}
        assert "hits=3" not in repr(b)


# --------------------------------------------------------------- exporters
def _run_instrumented_system(cycles=3, n=400, k=4, nq=6, seed=3):
    import numpy as np

    from repro.core.monitor import MonitoringSystem
    from repro.motion import RandomWalkModel, make_dataset, make_queries

    registry = MetricsRegistry()
    queries = make_queries(nq, seed=seed)
    system = MonitoringSystem.object_indexing(k, queries, registry=registry)
    positions = make_dataset("uniform", n, seed=seed + 1)
    motion = RandomWalkModel(vmax=0.01, seed=seed + 2)
    system.load(positions)
    for _ in range(cycles):
        positions = motion.step(positions)
        system.tick(positions)
    return system


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        system = _run_instrumented_system()
        path = tmp_path / "cycles.jsonl"
        written = write_history_jsonl(system, path)
        assert written == len(system.history)
        records = read_history_jsonl(path)
        assert len(records) == written
        for rec, stats in zip(records, system.history):
            assert rec["timestamp"] == pytest.approx(stats.timestamp)
            assert rec["index_time"] == pytest.approx(stats.index_time)
            assert rec["answer_time"] == pytest.approx(stats.answer_time)
            assert rec["counters"] == pytest.approx(dict(stats.counters))
        # each line is independently parseable JSON
        lines = path.read_text().strip().split("\n")
        assert all(json.loads(line) for line in lines)

    def test_jsonl_accepts_file_object_and_plain_history(self):
        system = _run_instrumented_system(cycles=1)
        buf = io.StringIO()
        written = write_history_jsonl(system.history, buf)
        assert written == 2
        assert len(history_records(system.history)) == 2

    def test_prometheus_round_trip(self):
        system = _run_instrumented_system()
        reg = system.registry
        text = prometheus_text(reg, prefix="repro")
        assert "# TYPE" in text and "# HELP" in text
        parsed = parse_prometheus_text(text)
        assert parsed["repro_cycle_count_total"] == reg.counter("cycle.count")
        hist = reg.histogram("cycle.total_seconds")
        assert parsed["repro_cycle_total_seconds_count"] == hist.count
        assert parsed["repro_cycle_total_seconds_sum"] == pytest.approx(hist.sum)
        # cumulative buckets are monotone and end at +Inf == count
        bucket_keys = [k for k in parsed if "_bucket{" in k]
        assert any('le="+Inf"' in k for k in bucket_keys)

    def test_prometheus_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.inc("oi.answer.cells-visited", 2)
        text = prometheus_text(reg)
        assert "repro_oi_answer_cells_visited_total 2" in text

    def test_mean_cycle_counters_skips_load(self):
        system = _run_instrumented_system(cycles=2)
        means = mean_cycle_counters(system.history)
        ticks = system.history[1:]
        expected = sum(s.counters["oi.answer.overhaul_calls"] for s in ticks) / len(
            ticks
        )
        assert means["oi.answer.overhaul_calls"] == pytest.approx(expected)

    def test_cycle_report_contains_key_sections(self):
        from repro.obs import cycle_report

        system = _run_instrumented_system()
        report = cycle_report(system)
        assert system.engine.name in report
        assert "oi.answer.cells_visited" in report
        assert "maintain" in report
