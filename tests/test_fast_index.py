"""Tests for the vectorized CSR fast engine (repro.core.fast_index).

The contract: byte-identical k-NN answer sets to the brute-force oracle
(ties broken deterministically by object ID) under every snapshot shape —
random, clustered, duplicated points, edge-of-domain queries, and k larger
than the query's home-cell population.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answers import answers_equal
from repro.core.brute import brute_force_knn
from repro.core.fast_index import (
    STAGE_NAMES,
    CSRGrid,
    FastGridEngine,
    StageTimings,
)
from repro.core.monitor import MonitoringSystem
from repro.errors import IndexStateError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset, make_queries


def lexicographic_knn(positions, qx, qy, k):
    """Reference k-NN with (distance, id) lexicographic tie-breaking."""
    d2 = (positions[:, 0] - qx) ** 2 + (positions[:, 1] - qy) ** 2
    order = np.lexsort((np.arange(len(positions)), d2))[:k]
    return [(int(i), float(np.sqrt(d2[i]))) for i in order]


def fast_answers(positions, queries, k, **kwargs):
    engine = FastGridEngine(k, queries, **kwargs)
    engine.load(positions)
    return engine.answer()


class TestCSRGrid:
    def test_layout_invariants(self):
        rng = np.random.default_rng(3)
        positions = rng.random((500, 2))
        csr = CSRGrid(positions, ncells=7)
        n = csr.ncells
        assert csr.cell_start[0] == 0
        assert csr.cell_start[-1] == len(positions)
        # Every object sits in the slice of its own cell.
        for flat in range(n * n):
            lo, hi = csr.cell_start[flat], csr.cell_start[flat + 1]
            i, j = flat % n, flat // n
            for pos in range(lo, hi):
                assert int(csr.xs[pos] * n) == i
                assert int(csr.ys[pos] * n) == j
        # The permutation covers every object exactly once.
        assert sorted(csr.ids.tolist()) == list(range(len(positions)))

    def test_prefix_counts_match_direct_counts(self):
        rng = np.random.default_rng(4)
        positions = rng.random((300, 2))
        csr = CSRGrid(positions, ncells=5)
        n = csr.ncells
        ii = np.clip((positions[:, 0] * n).astype(int), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(int), 0, n - 1)
        for _ in range(25):
            ilo, ihi = sorted(rng.integers(0, n, 2))
            jlo, jhi = sorted(rng.integers(0, n, 2))
            want = int(
                np.sum((ii >= ilo) & (ii <= ihi) & (jj >= jlo) & (jj <= jhi))
            )
            got = csr.count_in_rects(
                np.array([ilo]), np.array([jlo]), np.array([ihi]), np.array([jhi])
            )
            assert int(got[0]) == want

    def test_row_runs_are_contiguous(self):
        """Cells (ilo..ihi, j) form one contiguous CSR slice."""
        rng = np.random.default_rng(5)
        positions = rng.random((400, 2))
        csr = CSRGrid(positions, ncells=6)
        n = csr.ncells
        j, ilo, ihi = 2, 1, 4
        lo = csr.cell_start[j * n + ilo]
        hi = csr.cell_start[j * n + ihi + 1]
        jj = np.clip((csr.ys[lo:hi] * n).astype(int), 0, n - 1)
        ii = np.clip((csr.xs[lo:hi] * n).astype(int), 0, n - 1)
        assert (jj == j).all()
        assert ((ii >= ilo) & (ii <= ihi)).all()


class TestFastEngineExactness:
    def test_property_random_snapshots_match_brute_force(self):
        """~50 random snapshots: byte-identical answers to the oracle."""
        rng = np.random.default_rng(42)
        for trial in range(50):
            n = int(rng.integers(5, 800))
            nq = int(rng.integers(1, 40))
            k = int(rng.integers(1, min(25, n) + 1))
            positions = rng.random((n, 2))
            queries = rng.random((nq, 2))
            answers = fast_answers(positions, queries, k)
            for answer, (qx, qy) in zip(answers, queries):
                got = answer.neighbors()
                want = lexicographic_knn(positions, qx, qy, k)
                assert got == pytest.approx(want), (trial, qx, qy)
                assert answers_equal(
                    got, brute_force_knn(positions, qx, qy, k)
                ), (trial, qx, qy)

    def test_edge_of_domain_queries(self):
        rng = np.random.default_rng(10)
        positions = rng.random((300, 2))
        queries = np.array(
            [
                [0.0, 0.0],
                [1.0, 1.0],
                [0.0, 1.0],
                [1.0, 0.0],
                [0.5, 0.0],
                [0.0, 0.5],
                [0.999999, 0.5],
            ]
        )
        answers = fast_answers(positions, queries, k=7)
        for answer, (qx, qy) in zip(answers, queries):
            assert answer.neighbors() == pytest.approx(
                lexicographic_knn(positions, qx, qy, 7)
            )

    def test_k_exceeds_home_cell_population(self):
        """Ring growth must escape sparsely populated home cells."""
        rng = np.random.default_rng(11)
        # Everything clustered in one corner; query in the opposite corner
        # has an empty home cell (and empty first rings).
        positions = 0.05 * rng.random((200, 2))
        queries = np.array([[0.95, 0.95], [0.5, 0.5], [0.04, 0.03]])
        answers = fast_answers(positions, queries, k=60)
        for answer, (qx, qy) in zip(answers, queries):
            assert answer.neighbors() == pytest.approx(
                lexicographic_knn(positions, qx, qy, 60)
            )

    def test_k_equals_population(self):
        rng = np.random.default_rng(12)
        positions = rng.random((30, 2))
        queries = rng.random((5, 2))
        answers = fast_answers(positions, queries, k=30)
        for answer, (qx, qy) in zip(answers, queries):
            assert answer.neighbors() == pytest.approx(
                lexicographic_knn(positions, qx, qy, 30)
            )

    def test_duplicate_points_tie_break_by_id(self):
        """Coincident objects: the engine reports the smallest tied IDs."""
        positions = np.array([[0.5, 0.5]] * 6 + [[0.9, 0.9], [0.1, 0.2]])
        queries = np.array([[0.5, 0.5]])
        (answer,) = fast_answers(positions, queries, k=3)
        assert answer.object_ids() == [0, 1, 2]
        assert answer.neighbors() == pytest.approx(
            lexicographic_knn(positions, queries[0, 0], queries[0, 1], 3)
        )

    def test_queries_sharing_home_cell_share_gather(self):
        """Co-located queries (one union rect) still get exact answers."""
        rng = np.random.default_rng(13)
        positions = rng.random((500, 2))
        base = np.array([0.437, 0.561])
        queries = base + 1e-4 * rng.random((8, 2))
        answers = fast_answers(positions, queries, k=9)
        for answer, (qx, qy) in zip(answers, queries):
            assert answer.neighbors() == pytest.approx(
                lexicographic_knn(positions, qx, qy, 9)
            )

    def test_ragged_fallback_path(self, monkeypatch):
        """The global-lexsort fallback gives the same exact answers."""
        from repro.core import fast_index

        rng = np.random.default_rng(14)
        # One huge cluster makes one query's candidate block much larger
        # than the others', so padding would dominate: with the dense
        # limit forced to 0, the ragged path must run.
        cluster = 0.02 * rng.random((2000, 2)) + 0.5
        sparse = rng.random((50, 2))
        positions = np.vstack([cluster, sparse])
        queries = np.vstack(
            [np.array([[0.51, 0.51]]), rng.random((9, 2)) * 0.2 + 0.75]
        )
        expected = [
            lexicographic_knn(positions, qx, qy, 5) for qx, qy in queries
        ]
        monkeypatch.setattr(fast_index, "DENSE_SELECT_LIMIT", 0)
        answers = fast_answers(positions, queries, k=5)
        for answer, want in zip(answers, expected):
            assert answer.neighbors() == pytest.approx(want)

    def test_skewed_dataset_cycles(self):
        """Multi-cycle run over clustered data stays exact."""
        positions = make_dataset("hi_skewed", 2000, seed=21)
        queries = make_queries(50, seed=22)
        motion = RandomWalkModel(vmax=0.01, seed=23)
        system = MonitoringSystem.fast_grid(10, queries)
        system.load(positions)
        for _ in range(3):
            positions = motion.step(positions)
            answers = system.tick(positions)
            for qa, (qx, qy) in zip(answers, queries):
                assert list(qa.neighbors) == pytest.approx(
                    lexicographic_knn(positions, qx, qy, 10)
                )


class TestFastEngineContract:
    def test_answer_before_load_raises(self):
        engine = FastGridEngine(3, np.array([[0.5, 0.5]]))
        with pytest.raises(IndexStateError):
            engine.answer()

    def test_k_larger_than_population_raises(self):
        engine = FastGridEngine(10, np.array([[0.5, 0.5]]))
        engine.load(np.random.default_rng(0).random((4, 2)))
        with pytest.raises(NotEnoughObjectsError):
            engine.answer()

    def test_no_queries(self):
        engine = FastGridEngine(2, np.empty((0, 2)))
        engine.load(np.random.default_rng(0).random((10, 2)))
        assert engine.answer() == []

    def test_set_queries_moves_queries(self):
        rng = np.random.default_rng(30)
        positions = rng.random((200, 2))
        queries = rng.random((6, 2))
        system = MonitoringSystem.fast_grid(4, queries)
        system.load(positions)
        moved = rng.random((6, 2))
        system.set_queries(moved)
        answers = system.tick(positions)
        for qa, (qx, qy) in zip(answers, moved):
            assert list(qa.neighbors) == pytest.approx(
                lexicographic_knn(positions, qx, qy, 4)
            )

    def test_explicit_grid_resolution(self):
        rng = np.random.default_rng(31)
        positions = rng.random((150, 2))
        queries = rng.random((4, 2))
        for kwargs in ({"ncells": 3}, {"delta": 0.25}):
            answers = fast_answers(positions, queries, 5, **kwargs)
            for answer, (qx, qy) in zip(answers, queries):
                assert answer.neighbors() == pytest.approx(
                    lexicographic_knn(positions, qx, qy, 5)
                )

    def test_stage_timing_history(self):
        rng = np.random.default_rng(32)
        positions = rng.random((300, 2))
        queries = rng.random((10, 2))
        system = MonitoringSystem.fast_grid(5, queries)
        system.load(positions)
        system.tick(rng.random((300, 2)))
        engine = system.engine
        assert len(engine.stage_history) == 2
        assert isinstance(engine.last_stages, StageTimings)
        means = engine.mean_stage_times()
        assert set(means) == set(STAGE_NAMES)
        assert all(v >= 0.0 for v in means.values())
        assert engine.last_stages.total == pytest.approx(
            sum(engine.last_stages.as_dict().values())
        )

    def test_stage_history_resets_on_load(self):
        rng = np.random.default_rng(33)
        positions = rng.random((100, 2))
        engine = FastGridEngine(3, rng.random((5, 2)))
        engine.load(positions)
        engine.answer()
        engine.load(positions)
        engine.answer()
        assert len(engine.stage_history) == 1

    def test_registered_in_bench_runner(self):
        from repro.engines.registry import build_system

        system = build_system("fast_grid", 3, np.array([[0.5, 0.5]]))
        assert system.engine.name == "fast-grid"
