"""Sharded engine: cross-engine equivalence, routing, and fault recovery."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import MetricsRegistry, MonitoringSystem
from repro.errors import ConfigurationError, NotEnoughObjectsError
from repro.shard import ShardedGridEngine, StripePartition, shard_grid_shape
from repro.shard.engine import _merge_chunks
from repro.shard.tasks import build_shard_csr


def canonical(query_answers, places=12):
    """Rounded (distance, id) lists per query — exact across engines.

    Distances are rounded because the brute-force oracle stores
    ``sqrt(d2)`` and re-squares, which differs from the grid engines'
    direct ``d2`` in the final ulp.
    """
    return [
        [(round(dist, places), object_id) for object_id, dist in answer.neighbors]
        for answer in query_answers
    ]


def boundary_heavy_dataset(rng, n, n_shards):
    """Positions with many objects exactly on stripe boundaries and many
    duplicate coordinates (forcing distance ties)."""
    positions = rng.random((n, 2))
    boundaries = np.arange(1, n_shards) / n_shards
    m = min(n // 4, 8 * len(boundaries)) if len(boundaries) else 0
    if m:
        positions[:m, 0] = np.resize(boundaries, m)
    # Duplicate whole coordinates -> duplicate distances -> ID tie-breaks.
    positions[n // 2 : n // 2 + n // 4] = positions[: n // 4]
    positions[-1] = [1.0, 1.0]
    positions[-2] = [0.0, 0.0]
    return positions


class TestPartition:
    def test_shard_of_boundaries(self):
        partition = StripePartition(4)
        xs = np.array([0.0, 0.2499, 0.25, 0.5, 0.75, 0.999, 1.0])
        assert partition.shard_of(xs).tolist() == [0, 0, 1, 2, 3, 3, 3]

    def test_every_object_owned_once(self):
        rng = np.random.default_rng(3)
        positions = boundary_heavy_dataset(rng, 500, 5)
        owners = StripePartition(5).shard_of(positions[:, 0])
        assert owners.min() >= 0 and owners.max() <= 4
        total = sum(
            len(build_shard_csr(positions, s, 5).ids) for s in range(5)
        )
        assert total == len(positions)

    def test_range_overlapping_closed_on_boundaries(self):
        partition = StripePartition(4)
        # A rectangle whose left edge sits exactly on 0.5 must include
        # stripe 1 (an object at x=0.5 belongs to stripe 2, but one at
        # x=0.5-eps in stripe 1 can be at the same distance).
        lo, hi = partition.range_overlapping(np.array([0.5]), np.array([0.6]))
        assert (lo[0], hi[0]) == (1, 2)
        lo, hi = partition.range_overlapping(np.array([-0.3]), np.array([1.7]))
        assert (lo[0], hi[0]) == (0, 3)

    def test_shard_grid_shape_square_cells(self):
        nx, ny = shard_grid_shape(10_000, 4)
        assert nx >= 1 and ny >= 1
        # ~square cells: stripe is 4x taller than wide.
        assert 2 <= ny // nx <= 8

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            StripePartition(0)


class TestMergeChunks:
    def test_global_tiebreak_by_id(self):
        # Two shards offer equal distances; lower ID must win.
        chunks = [
            (np.array([0, 0]), np.array([0.25, 0.5]), np.array([7, 9])),
            (np.array([0, 0]), np.array([0.25, 0.5]), np.array([3, 1])),
        ]
        top_d2, top_ids, counts = _merge_chunks(chunks, nq=1, k=3)
        assert top_ids[0].tolist() == [3, 7, 1]
        assert counts[0] == 4

    def test_padding_below_k(self):
        chunks = [(np.array([1]), np.array([0.1]), np.array([5]))]
        top_d2, top_ids, counts = _merge_chunks(chunks, nq=2, k=2)
        assert top_ids[0].tolist() == [-1, -1]
        assert top_ids[1].tolist() == [5, -1]
        assert np.isinf(top_d2[1, 1])
        assert counts.tolist() == [0, 1]


class TestEquivalence:
    """sharded (serial + pooled), fast_grid, brute_force answer identically."""

    N, NQ, K, CYCLES = 400, 25, 6, 50

    def _walk(self, build_system):
        rng = np.random.default_rng(11)
        positions = boundary_heavy_dataset(rng, self.N, 4)
        queries = rng.random((self.NQ, 2))
        queries[0] = [0.5, 0.5]     # exactly on a shard boundary
        queries[1] = [0.25, 0.75]
        system = build_system(self.K, queries)
        try:
            trace = [canonical(system.load(positions))]
            for _ in range(self.CYCLES):
                step = rng.normal(0.0, 0.01, positions.shape)
                positions = np.clip(positions + step, 0.0, 1.0)
                trace.append(canonical(system.tick(positions)))
        finally:
            system.close()
        return trace

    @pytest.fixture(scope="class")
    def reference(self):
        return self._walk(lambda k, q: MonitoringSystem.brute_force(k, q))

    @pytest.mark.parametrize(
        "label,options",
        [
            ("serial-1shard", {"workers": 0, "shards": 1}),
            ("serial-4shards", {"workers": 0, "shards": 4}),
            # oversubscribe: the pool tests need two real workers even on
            # single-core CI boxes, where the default cap would shrink them.
            ("pool-2w2s", {"workers": 2, "shards": 2, "oversubscribe": True}),
            ("pool-2w5s", {"workers": 2, "shards": 5, "oversubscribe": True}),
        ],
    )
    def test_sharded_matches_brute_force(self, reference, label, options):
        trace = self._walk(
            lambda k, q: MonitoringSystem.sharded(k, q, **options)
        )
        assert trace == reference

    def test_fast_grid_matches_brute_force(self, reference):
        trace = self._walk(lambda k, q: MonitoringSystem.fast_grid(k, q))
        assert trace == reference

    def test_stale_seed_escalation_is_exact(self, reference):
        # Zero slack + fast motion makes the seeded routing wrong almost
        # every cycle; escalation must still recover the exact answer.
        registry = MetricsRegistry()
        trace = self._walk(
            lambda k, q: MonitoringSystem.sharded(
                k, q, workers=0, shards=4, seed_slack=0.0, registry=registry
            )
        )
        assert trace == reference


class TestEscalation:
    def test_seeded_bound_goes_stale_across_stripes(self):
        # Cycle 0: the cluster around the query sits in stripe 0, so the
        # seeded rectangle for cycle 1 stays inside stripe 0.  Cycle 1:
        # the cluster teleports to stripe 3, leaving only far objects in
        # stripe 0 -> the merged kth-distance disc pokes out of the
        # consulted stripes and the query must escalate to stay exact.
        k = 3
        queries = np.array([[0.05, 0.5]])
        near = np.column_stack([
            np.full(6, 0.06), np.linspace(0.48, 0.52, 6)
        ])
        far = np.column_stack([
            np.full(6, 0.12), np.linspace(0.05, 0.95, 6)
        ])
        cycle0 = np.vstack([near, far])
        moved = cycle0.copy()
        moved[:6, 0] = 0.9   # cluster leaves stripe 0
        registry = MetricsRegistry()
        system = MonitoringSystem.sharded(
            k, queries, workers=0, shards=4, seed_slack=0.0, registry=registry
        )
        with system:
            system.load(cycle0)
            got = canonical(system.tick(moved))
        oracle = MonitoringSystem.brute_force(k, queries)
        oracle.load(cycle0)
        expected = canonical(oracle.tick(moved))
        assert got == expected
        assert registry.counter("shard.escalated_queries") >= 1
        assert registry.counter("shard.rounds") > registry.counter("cycle.count")


class TestContracts:
    def test_not_enough_objects(self):
        queries = np.array([[0.5, 0.5]])
        engine = ShardedGridEngine(5, queries, workers=0, shards=2)
        engine.load(np.random.default_rng(0).random((3, 2)))
        with pytest.raises(NotEnoughObjectsError):
            engine.answer()

    def test_rejects_bad_options(self):
        queries = np.array([[0.5, 0.5]])
        with pytest.raises(ConfigurationError):
            ShardedGridEngine(3, queries, workers=-1)
        with pytest.raises(ConfigurationError):
            ShardedGridEngine(3, queries, workers=0, shards=0)
        with pytest.raises(ConfigurationError):
            MonitoringSystem.sharded(3, queries, shardz=2)

    def test_no_queries(self):
        engine = ShardedGridEngine(2, np.empty((0, 2)), workers=0, shards=2)
        engine.load(np.random.default_rng(0).random((10, 2)))
        assert engine.answer() == []

    def test_worker_cap_defaults_to_cpu_count(self):
        queries = np.array([[0.5, 0.5]])
        ncpu = os.cpu_count() or 1
        capped = ShardedGridEngine(2, queries, workers=ncpu + 3)
        assert capped.requested_workers == ncpu + 3
        assert capped.workers == ncpu
        assert capped.worker_cap_applied
        # Shards default from the *effective* worker count.
        assert capped.n_shards == ncpu
        forced = ShardedGridEngine(2, queries, workers=ncpu + 3, oversubscribe=True)
        assert forced.workers == ncpu + 3
        assert not forced.worker_cap_applied
        serial = ShardedGridEngine(2, queries, workers=0)
        assert not serial.worker_cap_applied

    def test_worker_cap_emits_warning_counter(self):
        registry = MetricsRegistry()
        rng = np.random.default_rng(9)
        ncpu = os.cpu_count() or 1
        system = MonitoringSystem.sharded(
            2, rng.random((3, 2)), workers=ncpu + 3, registry=registry
        )
        with system:
            system.load(rng.random((50, 2)))
            system.tick(rng.random((50, 2)))
        # One warning per engine lifetime, not one per cycle.
        assert registry.counter("shard.worker_cap_applied") == 1

    def test_build_time_attributed_to_index_phase(self):
        # The stripe indexes build lazily inside answer(); the pipeline
        # must move those seconds into the cycle's index time.
        registry = MetricsRegistry()
        rng = np.random.default_rng(13)
        system = MonitoringSystem.sharded(
            3, rng.random((10, 2)), workers=0, shards=2, registry=registry
        )
        with system:
            system.load(rng.random((5000, 2)))
            system.tick(rng.random((5000, 2)))
        assert registry.counter("shard.build_seconds") > 0.0
        record = system.last_stats
        assert record.index_time > 0.0
        assert record.answer_time >= 0.0
        # The engine's accumulator is drained each cycle.
        assert system.engine.pop_deferred_index_seconds() == 0.0

    def test_metrics_emitted(self):
        registry = MetricsRegistry()
        rng = np.random.default_rng(5)
        system = MonitoringSystem.sharded(
            3, rng.random((10, 2)), workers=0, shards=2, registry=registry
        )
        with system:
            system.load(rng.random((200, 2)))
            system.tick(rng.random((200, 2)))
        assert registry.counter("shard.dispatch_seconds") > 0.0
        assert registry.counter("shard.merge_seconds") > 0.0
        assert registry.counter("shard.queries_routed") >= 10
        assert registry.counter("shard.tasks") >= 2
        assert registry.counter("shard.respawns") == 0.0

    def test_stripe_query_gauges_refresh_on_set_queries(self):
        # Regression: the per-stripe query gauges used to go stale when
        # set_queries swapped the query population — they reported the
        # previous population's routing until the next answer() ran.
        registry = MetricsRegistry()
        rng = np.random.default_rng(21)
        left = np.column_stack([rng.uniform(0.0, 0.45, 6), rng.random(6)])
        right = np.column_stack([rng.uniform(0.55, 1.0, 6), rng.random(6)])
        engine = ShardedGridEngine(2, left, workers=0, shards=2)
        engine.metrics = registry
        try:
            engine.set_queries(left)
            assert registry.gauge("shard.stripe.queries", {"shard": 0}) == 6.0
            assert registry.gauge("shard.stripe.queries", {"shard": 1}) == 0.0
            engine.set_queries(right)  # no cycle in between
            assert registry.gauge("shard.stripe.queries", {"shard": 0}) == 0.0
            assert registry.gauge("shard.stripe.queries", {"shard": 1}) == 6.0
        finally:
            engine.close()


class TestFaultTolerance:
    N, NQ, K = 3000, 30, 5

    def _reference(self, positions, queries):
        oracle = MonitoringSystem.brute_force(self.K, queries)
        oracle.load(positions)
        return canonical(oracle.tick(positions))

    def test_sigkill_idle_worker_recovers(self):
        rng = np.random.default_rng(17)
        positions = rng.random((self.N, 2))
        queries = rng.random((self.NQ, 2))
        registry = MetricsRegistry()
        system = MonitoringSystem.sharded(
            self.K, queries, workers=2, shards=4, registry=registry,
            oversubscribe=True,
        )
        with system:
            system.load(positions)
            victim = system.engine.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            # The kill lands before dispatch; collect() sees the dead
            # pipe mid-cycle, respawns, and re-dispatches the task.
            got = canonical(system.tick(positions))
            assert got == self._reference(positions, queries)
            assert system.engine.respawns >= 1
            assert registry.counter("shard.respawns") >= 1
            assert victim not in system.engine.worker_pids()

    def test_sigkill_mid_answer_recovers(self):
        rng = np.random.default_rng(19)
        positions = rng.random((60_000, 2))
        queries = rng.random((self.NQ, 2))
        system = MonitoringSystem.sharded(
            self.K, queries, workers=2, shards=4, oversubscribe=True
        )
        with system:
            system.load(positions)
            victim = system.engine.worker_pids()[1]
            killer = threading.Timer(0.005, os.kill, (victim, signal.SIGKILL))
            killer.start()
            try:
                got = canonical(system.tick(positions))
            finally:
                killer.cancel()
            # Whether the kill landed mid-collect or between cycles, the
            # answers must be exact; run one more cycle so a late kill is
            # also detected and absorbed.
            assert got == self._reference(positions, queries)
            for _ in range(20):
                if system.engine.respawns >= 1:
                    break
                system.engine.heartbeat(timeout=2.0)
                time.sleep(0.05)
            got2 = canonical(system.tick(positions))
            assert got2 == self._reference(positions, queries)
            assert system.engine.respawns >= 1

    def test_heartbeat_detects_and_respawns(self):
        rng = np.random.default_rng(23)
        system = MonitoringSystem.sharded(
            2, rng.random((4, 2)), workers=2, shards=2, oversubscribe=True
        )
        with system:
            system.load(rng.random((100, 2)))
            victim = system.engine.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            status = system.engine.heartbeat(timeout=5.0)
            assert status[0] is False and status[1] is True
            assert system.engine.respawns == 1
            # Replacement is alive and serving.
            assert system.engine.heartbeat(timeout=5.0) == {0: True, 1: True}
