"""Property-based tests: incremental maintenance is equivalent to rebuild."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_knn
from repro.core.hierarchical import HierarchicalObjectIndex
from repro.core.object_index import ObjectIndex
from repro.core.query_index import QueryIndex
from repro.motion.random_walk import reflect_into_unit
from repro.rtree import RTree
from tests.conftest import assert_same_distances

coordinate = st.floats(
    min_value=0.0, max_value=1.0, exclude_max=True, allow_nan=False, width=64
)
point = st.tuples(coordinate, coordinate)


@st.composite
def motion_sequence(draw, min_points=4, max_points=40, max_steps=4):
    """An initial configuration plus a short sequence of displacements."""
    points = np.asarray(
        draw(st.lists(point, min_size=min_points, max_size=max_points)),
        dtype=np.float64,
    )
    n_steps = draw(st.integers(min_value=1, max_value=max_steps))
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=n_steps,
            max_size=n_steps,
        )
    )
    vmax = draw(st.sampled_from([0.001, 0.01, 0.1, 0.5]))
    snapshots = []
    current = points
    for seed in seeds:
        rng = np.random.default_rng(seed)
        current = reflect_into_unit(
            current + rng.uniform(-vmax, vmax, size=current.shape)
        )
        current = np.clip(current, 0.0, 1.0 - 1e-9)
        snapshots.append(current)
    return points, snapshots


@settings(max_examples=40, deadline=None)
@given(motion_sequence())
def test_object_index_update_equals_rebuild(sequence):
    initial, snapshots = sequence
    updated = ObjectIndex(n_objects=len(initial))
    updated.build(initial)
    for snapshot in snapshots:
        updated.update(snapshot)
    updated.validate()
    rebuilt = ObjectIndex(n_objects=len(initial))
    rebuilt.build(snapshots[-1])
    # Cell contents must agree as multisets.
    got = [sorted(bucket) for bucket in updated.grid._buckets]
    want = [sorted(bucket) for bucket in rebuilt.grid._buckets]
    assert got == want


@settings(max_examples=30, deadline=None)
@given(motion_sequence())
def test_hierarchical_update_preserves_invariants_and_exactness(sequence):
    initial, snapshots = sequence
    index = HierarchicalObjectIndex(delta0=0.25, max_cell_load=4, split_factor=2)
    index.build(initial)
    for snapshot in snapshots:
        index.update(snapshot)
        index.validate()
    final = snapshots[-1]
    k = min(3, len(final))
    got = index.knn_overhaul(0.5, 0.5, k).neighbors()
    want = brute_force_knn(final, 0.5, 0.5, k)
    assert_same_distances(got, want)


@settings(max_examples=25, deadline=None)
@given(motion_sequence())
def test_rtree_bottom_up_preserves_invariants_and_exactness(sequence):
    initial, snapshots = sequence
    tree = RTree(max_entries=4)
    tree.bulk_load(initial)
    for snapshot in snapshots:
        for object_id in range(len(snapshot)):
            tree.update_bottom_up(
                object_id, snapshot[object_id, 0], snapshot[object_id, 1]
            )
        tree.validate()
    final = snapshots[-1]
    k = min(3, len(final))
    got = tree.knn(0.3, 0.7, k).neighbors()
    want = brute_force_knn(final, 0.3, 0.7, k)
    assert_same_distances(got, want)


@settings(max_examples=25, deadline=None)
@given(motion_sequence(min_points=6), st.lists(point, min_size=1, max_size=4))
def test_query_index_update_equals_rebuild(sequence, query_points):
    initial, snapshots = sequence
    queries = np.asarray(query_points, dtype=np.float64)
    k = min(3, len(initial))

    updated = QueryIndex(queries, k, n_objects=len(initial))
    updated.bootstrap(initial)
    rebuilt = QueryIndex(queries, k, n_objects=len(initial))
    rebuilt.bootstrap(initial)

    for snapshot in snapshots:
        updated.update_index(snapshot)
        rebuilt.rebuild_index(snapshot)
        for query_id in range(len(queries)):
            assert updated.critical_rect(query_id) == rebuilt.critical_rect(query_id)
        updated.validate()
        # Answering advances the previous-answer state identically.
        got = updated.answer(snapshot)
        want = rebuilt.answer(snapshot)
        for answer_got, answer_want in zip(got, want):
            assert_same_distances(answer_got.neighbors(), answer_want.neighbors())


@settings(max_examples=30, deadline=None)
@given(motion_sequence())
def test_monitoring_cycle_exact_after_arbitrary_motion(sequence):
    initial, snapshots = sequence
    k = min(2, len(initial))
    index = ObjectIndex(n_objects=len(initial))
    index.build(initial)
    previous = index.knn_overhaul(0.5, 0.5, k).object_ids()
    for snapshot in snapshots:
        index.update(snapshot)
        answer = index.knn_incremental(0.5, 0.5, k, previous)
        want = brute_force_knn(snapshot, 0.5, 0.5, k)
        assert_same_distances(answer.neighbors(), want)
        previous = answer.object_ids()
