"""Integration tests: instrumentation wired through every engine.

Covers the acceptance criteria of the observability layer: all seven
engines emit spans and counters through one registry, counters on a
hand-checkable grid match pencil-and-paper values, the bench layer's
``CycleTiming`` derives from ``CycleStats``, and the observed-vs-predicted
cost-model validation passes on the object-index overhaul path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.runner import CycleTiming, measure_method
from repro.engines.registry import build_system
from repro.core.monitor import CycleStats, MonitoringSystem
from repro.core.object_index import ObjectIndex
from repro.errors import IndexStateError
from repro.motion import RandomWalkModel, make_dataset, make_queries
from repro.obs import (
    MetricsRegistry,
    Tracer,
    run_validation,
    validate_object_indexing,
)
from repro.tprtree import TPREngine

ENGINE_FACTORIES = [
    ("object_indexing", lambda q, reg: MonitoringSystem.object_indexing(
        4, q, registry=reg
    )),
    ("query_indexing", lambda q, reg: MonitoringSystem.query_indexing(
        4, q, registry=reg
    )),
    ("hierarchical", lambda q, reg: MonitoringSystem.hierarchical(
        4, q, registry=reg
    )),
    ("rtree", lambda q, reg: MonitoringSystem.rtree(4, q, registry=reg)),
    ("brute_force", lambda q, reg: MonitoringSystem.brute_force(4, q, registry=reg)),
    ("fast_grid", lambda q, reg: MonitoringSystem.fast_grid(4, q, registry=reg)),
    ("tpr", lambda q, reg: MonitoringSystem(TPREngine(4, q), registry=reg)),
]


@pytest.mark.parametrize(
    "label,factory", ENGINE_FACTORIES, ids=[l for l, _ in ENGINE_FACTORIES]
)
def test_every_engine_emits_spans_and_counters(label, factory):
    registry = MetricsRegistry()
    queries = make_queries(6, seed=5)
    system = factory(queries, registry)
    positions = make_dataset("uniform", 300, seed=6)
    motion = RandomWalkModel(vmax=0.01, seed=7)
    system.load(positions)
    for _ in range(2):
        positions = motion.step(positions)
        system.tick(positions)

    # Every cycle recorded its counter deltas on the CycleStats entry.
    assert len(system.history) == 3
    for stats in system.history:
        assert stats.counters is not None

    tick = system.history[-1].counters
    # The system-level stage spans are always present...
    assert tick["span.maintain.calls"] == 1.0
    assert tick["span.answer.calls"] == 1.0
    assert tick["span.maintain.seconds"] > 0.0
    # ...and every engine contributes at least one algorithmic counter
    # beyond the system spans.
    assert any(not name.startswith("span.") for name in tick), tick
    assert registry.counter("cycle.count") == 3.0


def test_uninstrumented_system_records_no_counters():
    queries = make_queries(4, seed=1)
    system = MonitoringSystem.object_indexing(3, queries)
    positions = make_dataset("uniform", 100, seed=2)
    system.load(positions)
    system.tick(positions)
    assert all(stats.counters is None for stats in system.history)


def test_3x3_grid_counters_match_hand_count():
    """Pencil-and-paper check on a 3x3 grid with prune disabled.

    Three objects, one query in the centre cell, k=2.  The overhaul
    answer grows r0 over one ring (9 cells seen in growth), then the
    Rcrit scan visits all 9 cells (pruning off) and touches all 3
    objects.
    """
    index = ObjectIndex(delta=1.0 / 3.0, prune_cells=False)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    index.tracer = tracer
    positions = np.array([[0.5, 0.5], [0.1, 0.1], [0.9, 0.9]])
    index.build(positions)
    answer = index.knn_overhaul(0.5, 0.5, k=2)
    assert len(answer) == 2

    c = index.counters
    assert c.overhaul_calls == 1
    assert c.r0_rings == 1  # home cell alone lacks k=2 objects
    assert c.r0_objects == 3  # the full ring sees every object
    assert c.cells_visited == 9  # Rcrit rect = whole grid, pruning off
    assert c.cells_pruned == 0
    assert c.objects_scanned == 3
    counters = registry.counter_values()
    assert counters["span.r0_growth.calls"] == 1.0
    assert counters["span.rcrit_scan.calls"] == 1.0


def test_3x3_grid_counts_pruning():
    """Same setup with pruning on: far empty cells are pruned, not scanned."""
    index = ObjectIndex(delta=1.0 / 3.0, prune_cells=True)
    positions = np.array([[0.5, 0.5], [0.1, 0.1], [0.9, 0.9]])
    index.build(positions)
    index.knn_overhaul(0.5, 0.5, k=2)
    c = index.counters
    assert c.cells_visited + c.cells_pruned <= 9
    assert c.objects_scanned <= 3
    assert c.overhaul_calls == 1


class TestCycleStatsCompat:
    def test_positional_construction_still_works(self):
        stats = CycleStats(1.0, 0.5, 0.25)
        assert stats.timestamp == 1.0
        assert stats.index_time == 0.5
        assert stats.answer_time == 0.25
        assert stats.counters is None
        assert stats.total_time == 0.75

    def test_equality_ignores_counters(self):
        a = CycleStats(1.0, 0.5, 0.25, counters={"x": 1.0})
        b = CycleStats(1.0, 0.5, 0.25)
        assert a == b

    def test_mean_of(self):
        history = [
            CycleStats(0.0, 1.0, 1.0),
            CycleStats(1.0, 0.2, 0.4),
            CycleStats(2.0, 0.4, 0.6),
        ]
        index_mean, answer_mean, cycles = CycleStats.mean_of(history)
        assert index_mean == pytest.approx(0.3)
        assert answer_mean == pytest.approx(0.5)
        assert cycles == 2
        with pytest.raises(IndexStateError):
            CycleStats.mean_of([])


class TestCycleTimingDerivation:
    def test_from_history_matches_mean_of(self):
        registry = MetricsRegistry()
        queries = make_queries(4, seed=11)
        system = MonitoringSystem.object_indexing(3, queries, registry=registry)
        positions = make_dataset("uniform", 200, seed=12)
        motion = RandomWalkModel(vmax=0.01, seed=13)
        system.load(positions)
        for _ in range(3):
            positions = motion.step(positions)
            system.tick(positions)
        timing = CycleTiming.from_history(system.history)
        index_mean, answer_mean, cycles = CycleStats.mean_of(system.history)
        assert timing.index_time == pytest.approx(index_mean)
        assert timing.answer_time == pytest.approx(answer_mean)
        assert timing.cycles == cycles
        assert timing.counters["oi.answer.overhaul_calls"] == pytest.approx(4.0)
        assert "answer" in timing.span_means()

    def test_measure_method_instrumented(self):
        timing = measure_method(
            "object_overhaul", 200, 4, k=3, cycles=2, instrument=True
        )
        assert timing.counters is not None
        assert timing.span_means()

    def test_measure_method_uninstrumented_has_no_counters(self):
        timing = measure_method("object_overhaul", 200, 4, k=3, cycles=2)
        assert timing.counters is None
        assert timing.span_means() == {}

    def test_make_system_registry_passthrough_all_methods(self):
        queries = make_queries(3, seed=21)
        for method in (
            "object_overhaul",
            "query_indexing",
            "hierarchical",
            "rtree_bottom_up",
            "brute_force",
            "tpr_predictive",
            "fast_grid",
        ):
            registry = MetricsRegistry()
            system = build_system(method, 3, queries, registry=registry)
            assert system.registry is registry


class TestFastGridStageCompat:
    def test_stage_history_populates_without_registry(self):
        queries = make_queries(4, seed=31)
        system = MonitoringSystem.fast_grid(3, queries)
        positions = make_dataset("uniform", 200, seed=32)
        system.load(positions)
        system.tick(positions)
        engine = system.engine
        assert len(engine.stage_history) == 2
        means = engine.mean_stage_times()
        assert set(means) == {"snapshot_csr", "radii", "gather", "select"}

    def test_stage_spans_mirror_stage_history_when_instrumented(self):
        registry = MetricsRegistry()
        queries = make_queries(4, seed=31)
        system = MonitoringSystem.fast_grid(3, queries, registry=registry)
        positions = make_dataset("uniform", 200, seed=32)
        system.load(positions)
        system.tick(positions)
        counters = system.history[-1].counters
        assert counters["span.maintain.csr_snapshot.calls"] == 1.0
        assert counters["span.answer.radii.calls"] == 1.0
        assert counters["span.answer.gather.calls"] == 1.0
        assert counters["span.answer.select.calls"] == 1.0
        assert counters["fast.answer.queries"] == 4.0
        timings = system.engine.stage_history[-1]
        assert timings.radii == pytest.approx(
            counters["span.answer.radii.seconds"]
        )


class TestCostModelValidation:
    def test_validate_object_indexing_accepts_consistent_counters(self):
        predicted = {
            "oi.answer.overhaul_calls": 10.0,
            "oi.answer.cells_visited": 10.0 * 25.0,
            "oi.answer.objects_scanned": 10.0 * 40.0,
            "oi.answer.r0_rings": 10.0 * 2.0,
        }
        report = validate_object_indexing(
            predicted, n_objects=2000, n_queries=10, k=8, delta=None
        )
        assert report.params["NP"] == 2000
        assert report.render()

    def test_run_validation_passes_on_overhaul_path(self):
        report = run_validation(n_objects=1500, n_queries=24, k=8, cycles=3)
        assert report.ok, report.render()
        names = {check.name for check in report.checks}
        assert {
            "cells_visited/query",
            "objects_scanned/query",
            "overhaul_calls/query",
        } <= names

    def test_run_validation_fails_with_absurd_tolerance(self):
        report = run_validation(
            n_objects=1500, n_queries=24, k=8, cycles=2, tolerance_factor=1.0001
        )
        # A razor-thin band must trip at least one ratio check — proof the
        # validation actually compares numbers rather than rubber-stamping.
        assert not report.ok


class TestBufferCounters:
    def test_buffer_reports_counters_on_publish(self):
        from repro.core.buffer import PositionBuffer

        registry = MetricsRegistry()
        queries = make_queries(3, seed=41)
        system = MonitoringSystem.object_indexing(3, queries, registry=registry)
        positions = make_dataset("uniform", 50, seed=42)
        buffer = PositionBuffer(positions, registry=registry)
        system.load(buffer.publish())
        buffer.report(0, 0.5, 0.5)
        buffer.report(0, 0.6, 0.6)  # coalesced: same object, same cycle
        buffer.report(1, 0.7, 0.7)
        system.tick(buffer.publish())
        assert registry.counter("buffer.reports") == 3.0
        assert registry.counter("buffer.coalesced_hits") == 1.0
        assert registry.counter("buffer.objects_folded") == 2.0
