"""Tests for the bichromatic k-NN join monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knn_join import KNNJoinMonitor, brute_force_knn_join
from repro.errors import ConfigurationError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset


def assert_join_matches(got, want, tol=1e-12):
    assert len(got) == len(want)
    for answer, expected in zip(got, want):
        got_d = [d for _, d in answer.neighbors()]
        want_d = [d for _, d in expected]
        np.testing.assert_allclose(got_d, want_d, atol=tol)


class TestJoin:
    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            KNNJoinMonitor(0)

    def test_b_too_small(self):
        monitor = KNNJoinMonitor(5)
        with pytest.raises(NotEnoughObjectsError):
            monitor.tick(np.zeros((3, 2)), np.zeros((2, 2)))

    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_brute(self, k):
        a = make_dataset("uniform", 80, seed=1)
        b = make_dataset("skewed", 500, seed=2)
        monitor = KNNJoinMonitor(k)
        got = monitor.tick(a, b)
        want = brute_force_knn_join(a, b, k)
        assert_join_matches(got, want)

    def test_cycles_stay_exact_both_moving(self):
        a = make_dataset("uniform", 50, seed=3)
        b = make_dataset("uniform", 400, seed=4)
        monitor = KNNJoinMonitor(3)
        motion_a = RandomWalkModel(vmax=0.01, seed=5)
        motion_b = RandomWalkModel(vmax=0.01, seed=6)
        for _ in range(5):
            a = motion_a.step(a)
            b = motion_b.step(b)
            got = monitor.tick(a, b)
            want = brute_force_knn_join(a, b, 3)
            assert_join_matches(got, want)

    def test_incremental_equals_overhaul(self):
        a = make_dataset("uniform", 40, seed=7)
        b = make_dataset("uniform", 300, seed=8)
        incremental = KNNJoinMonitor(3, incremental=True)
        overhaul = KNNJoinMonitor(3, incremental=False)
        motion = RandomWalkModel(vmax=0.01, seed=9)
        current_b = b
        for _ in range(3):
            current_b = motion.step(current_b)
            x = incremental.tick(a, current_b)
            y = overhaul.tick(a, current_b)
            assert_join_matches(
                x, [answer.neighbors() for answer in y]
            )

    def test_population_change_handled(self):
        a = make_dataset("uniform", 20, seed=10)
        monitor = KNNJoinMonitor(2)
        monitor.tick(a, make_dataset("uniform", 100, seed=11))
        b2 = make_dataset("uniform", 150, seed=12)
        got = monitor.tick(a, b2)
        want = brute_force_knn_join(a, b2, 2)
        assert_join_matches(got, want)

    def test_empty_a(self):
        monitor = KNNJoinMonitor(2)
        answers = monitor.tick(np.empty((0, 2)), make_dataset("uniform", 50, seed=13))
        assert answers == []


class TestClosestPairs:
    def test_requires_tick(self):
        with pytest.raises(ConfigurationError):
            KNNJoinMonitor(2).closest_pairs(1)

    def test_bounds(self):
        a = make_dataset("uniform", 10, seed=14)
        b = make_dataset("uniform", 50, seed=15)
        monitor = KNNJoinMonitor(2)
        monitor.tick(a, b)
        with pytest.raises(ConfigurationError):
            monitor.closest_pairs(0)
        with pytest.raises(ConfigurationError):
            monitor.closest_pairs(3)  # n > k

    def test_matches_brute_force_pairs(self):
        a = make_dataset("uniform", 30, seed=16)
        b = make_dataset("uniform", 200, seed=17)
        k = 5
        monitor = KNNJoinMonitor(k)
        monitor.tick(a, b)
        got = monitor.closest_pairs(k)
        # Ground truth: all |A| x |B| pairs sorted by distance.
        diffs = a[:, None, :] - b[None, :, :]
        all_d = np.sqrt(np.sum(diffs * diffs, axis=2))
        flat = [
            (float(all_d[i, j]), i, j)
            for i in range(len(a))
            for j in range(len(b))
        ]
        flat.sort()
        want = [(i, j, d) for d, i, j in flat[:k]]
        got_d = [round(d, 12) for _, _, d in got]
        want_d = [round(d, 12) for _, _, d in want]
        assert got_d == want_d

    def test_pairs_sorted(self):
        a = make_dataset("uniform", 20, seed=18)
        b = make_dataset("uniform", 100, seed=19)
        monitor = KNNJoinMonitor(4)
        monitor.tick(a, b)
        pairs = monitor.closest_pairs(4)
        distances = [d for _, _, d in pairs]
        assert distances == sorted(distances)
