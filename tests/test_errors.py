"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    IndexStateError,
    NotEnoughObjectsError,
    OutOfRegionError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError("x"),
            IndexStateError("x"),
            NotEnoughObjectsError(5, 3),
            OutOfRegionError(1.5, -0.2),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_out_of_region_payload(self):
        exc = OutOfRegionError(1.5, -0.2)
        assert exc.x == 1.5
        assert exc.y == -0.2
        assert "1.5" in str(exc)

    def test_not_enough_objects_payload(self):
        exc = NotEnoughObjectsError(10, 3)
        assert exc.k == 10
        assert exc.population == 3
        assert "10" in str(exc) and "3" in str(exc)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise NotEnoughObjectsError(2, 1)
