"""Unit and integration tests for the Query-Index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.object_index import ObjectIndex
from repro.core.query_index import QueryIndex
from repro.errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_queries
from tests.conftest import assert_same_distances


def bootstrapped(points, queries, k=10, **kwargs):
    if not kwargs:
        kwargs = {"n_objects": len(points)}
    index = QueryIndex(queries, k, **kwargs)
    index.bootstrap(points)
    return index


class TestConstruction:
    def test_bad_queries_shape(self):
        with pytest.raises(ConfigurationError):
            QueryIndex(np.zeros((3, 3)), 5, ncells=4)

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            QueryIndex(np.zeros((3, 2)), 0, ncells=4)

    def test_requires_bootstrap(self, uniform_1k, queries_20):
        index = QueryIndex(queries_20, 5, n_objects=1000)
        assert not index.bootstrapped
        with pytest.raises(IndexStateError):
            index.rebuild_index(uniform_1k)
        with pytest.raises(IndexStateError):
            index.update_index(uniform_1k)
        with pytest.raises(IndexStateError):
            index.answer(uniform_1k)

    def test_k_larger_than_population(self, queries_20):
        index = QueryIndex(queries_20, 10, ncells=4)
        with pytest.raises(NotEnoughObjectsError):
            index.bootstrap(np.random.default_rng(0).random((5, 2)))


class TestBootstrap:
    def test_initial_answers_exact(self, uniform_1k, queries_20):
        index = QueryIndex(queries_20, 10, n_objects=1000)
        answers = index.bootstrap(uniform_1k)
        assert len(answers) == 20
        for query_id, answer in enumerate(answers):
            qx, qy = queries_20[query_id]
            want = brute_force_knn(uniform_1k, qx, qy, 10)
            assert_same_distances(answer.neighbors(), want)

    def test_bootstrap_builds_rects(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        for query_id in range(20):
            assert index.critical_rect(query_id) is not None
        index.validate()

    def test_bootstrap_with_shared_object_index(self, uniform_1k, queries_20):
        object_index = ObjectIndex(n_objects=1000)
        object_index.build(uniform_1k)
        index = QueryIndex(queries_20, 10, n_objects=1000)
        index.bootstrap(uniform_1k, object_index=object_index)
        index.validate()

    def test_rects_contain_previous_answers(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        for query_id in range(20):
            rect = index.critical_rect(query_id)
            for object_id in index.previous_answer_ids(query_id):
                x, y = uniform_1k[object_id]
                assert index.grid.locate(x, y) in rect


class TestMaintenance:
    def test_rebuild_equals_update(self, uniform_1k, queries_20):
        motion = RandomWalkModel(vmax=0.01, seed=3)
        moved = motion.step(uniform_1k)

        rebuilt = bootstrapped(uniform_1k, queries_20)
        rebuilt.rebuild_index(moved)
        updated = bootstrapped(uniform_1k, queries_20)
        updated.update_index(moved)

        for query_id in range(20):
            assert rebuilt.critical_rect(query_id) == updated.critical_rect(query_id)
        rebuilt.validate()
        updated.validate()

    def test_update_no_motion_zero_ops(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        assert index.update_index(uniform_1k.copy()) == 0

    def test_update_with_motion_some_ops(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        motion = RandomWalkModel(vmax=0.05, seed=3)
        ops = index.update_index(motion.step(uniform_1k))
        assert ops > 0
        index.validate()

    def test_population_change_rejected(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        with pytest.raises(IndexStateError):
            index.rebuild_index(uniform_1k[:100])


class TestAnswering:
    def test_answers_exact_over_cycles(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        motion = RandomWalkModel(vmax=0.005, seed=13)
        current = uniform_1k
        for _ in range(6):
            current = motion.step(current)
            index.update_index(current)
            answers = index.answer(current)
            for query_id, answer in enumerate(answers):
                qx, qy = queries_20[query_id]
                want = brute_force_knn(current, qx, qy, 10)
                assert_same_distances(answer.neighbors(), want)

    def test_rebuild_maintenance_also_exact(self, skewed_1k, queries_20):
        index = bootstrapped(skewed_1k, queries_20)
        motion = RandomWalkModel(vmax=0.02, seed=13)
        current = skewed_1k
        for _ in range(3):
            current = motion.step(current)
            index.rebuild_index(current)
            answers = index.answer(current)
            for query_id, answer in enumerate(answers):
                qx, qy = queries_20[query_id]
                want = brute_force_knn(current, qx, qy, 10)
                assert_same_distances(answer.neighbors(), want)

    def test_single_query(self, uniform_1k):
        queries = np.asarray([[0.5, 0.5]])
        index = bootstrapped(uniform_1k, queries, k=5)
        motion = RandomWalkModel(vmax=0.01, seed=2)
        moved = motion.step(uniform_1k)
        index.update_index(moved)
        answers = index.answer(moved)
        want = brute_force_knn(moved, 0.5, 0.5, 5)
        assert_same_distances(answers[0].neighbors(), want)


class TestStats:
    def test_mean_rect_cells_positive(self, uniform_1k, queries_20):
        index = bootstrapped(uniform_1k, queries_20)
        assert index.mean_rect_cells() >= 1.0

    def test_ql_identity(self, uniform_1k, queries_20):
        # |QL| * ncells^2 == |Rcrit| * NQ (the paper's identity).
        index = bootstrapped(uniform_1k, queries_20)
        lhs = index.mean_query_list_length() * index.grid.ncells**2
        rhs = index.mean_rect_cells() * index.n_queries
        assert lhs == pytest.approx(rhs)

    def test_empty_rects_before_bootstrap(self, queries_20):
        index = QueryIndex(queries_20, 5, ncells=8)
        assert index.mean_rect_cells() == 0.0
