"""Tests for the benchmark harness (runner, results, experiment registry)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.results import ExperimentResult, format_table
from repro.bench.runner import (
    METHOD_FACTORIES,
    measure_cycles,
    measure_method,
)
from repro.engines.registry import build_system
from repro.errors import ConfigurationError
from repro.motion import RandomWalkModel, make_dataset, make_queries


class TestExperimentResult:
    def test_add_row_validates_width(self):
        result = ExperimentResult("figX", "t", ["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column(self):
        result = ExperimentResult("figX", "t", ["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_render_contains_everything(self):
        result = ExperimentResult(
            "figX", "Title", ["a"], expectation="paper says"
        )
        result.add_row(0.123456)
        result.findings.append("it held")
        text = result.render()
        assert "figX" in text
        assert "Title" in text
        assert "paper says" in text
        assert "it held" in text

    def test_render_markdown_is_a_table(self):
        result = ExperimentResult("figX", "Title", ["a", "b"])
        result.add_row(1, 0.5)
        md = result.render_markdown()
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert md.count("|") >= 9

    def test_render_csv(self):
        result = ExperimentResult("figX", "Title", ["a", "b"])
        result.add_row(1, 0.5)
        result.add_row(2, 1.5)
        lines = result.render_csv().strip().splitlines()
        assert lines[0] == "figure,a,b"
        assert lines[1] == "figX,1,0.5"
        assert lines[2] == "figX,2,1.5"

    def test_to_records(self):
        result = ExperimentResult("figX", "Title", ["a", "b"])
        result.add_row(1, 2)
        assert result.to_records() == [{"a": 1, "b": 2}]


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "v"], [["x", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.00001], [123456.0], [0.5]])
        assert "e-05" in table
        assert "e+05" in table.lower() or "1.235e" in table


class TestRunner:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            build_system("nope", 5, make_queries(3, seed=1))

    def test_every_factory_builds(self):
        queries = make_queries(3, seed=1)
        for method in METHOD_FACTORIES:
            system = build_system(method, 2, queries)
            assert system.k == 2

    def test_measure_cycles(self):
        positions = make_dataset("uniform", 200, seed=2)
        queries = make_queries(3, seed=3)
        system = build_system("object_overhaul", 2, queries)
        motion = RandomWalkModel(vmax=0.01, seed=4)
        timing = measure_cycles(system, positions, motion, cycles=2)
        assert timing.cycles == 2
        assert timing.total_time == timing.index_time + timing.answer_time
        assert timing.total_time > 0.0

    def test_measure_cycles_requires_cycles(self):
        positions = make_dataset("uniform", 50, seed=5)
        system = build_system("brute_force", 2, make_queries(2, seed=6))
        with pytest.raises(ConfigurationError):
            measure_cycles(system, positions, RandomWalkModel(seed=7), cycles=0)

    def test_measure_method_one_call(self):
        timing = measure_method(
            "query_indexing", n_objects=300, n_queries=5, k=2, cycles=1
        )
        assert timing.total_time > 0.0


class TestRegistry:
    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_registry_covers_every_paper_figure(self):
        for figure in (
            "fig09", "fig10", "fig11a", "fig11b", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18a", "fig18b", "fig19a",
            "fig19b", "fig20", "fig21a", "fig21b", "fig22a", "fig22b",
            "fig22c",
        ):
            assert figure in EXPERIMENTS

    def test_every_experiment_has_doc_and_callable(self):
        for name, experiment in EXPERIMENTS.items():
            assert callable(experiment)
            assert experiment.__doc__, name

    @pytest.mark.parametrize("figure", ["fig09", "fig21a", "fig21b"])
    def test_cheap_experiments_run_tiny(self, figure):
        result = run_experiment(figure, scale=0.02)
        assert result.rows
        assert result.columns
        assert result.figure == figure
