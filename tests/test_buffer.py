"""Tests for the snapshot buffer and the (deprecated) monitoring service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.buffer import MonitoringService, PositionBuffer
from repro.core.monitor import MonitoringSystem
from repro.errors import ConfigurationError, OutOfRegionError
from repro.motion import make_dataset, make_queries
from tests.conftest import assert_same_distances


class TestPositionBuffer:
    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            PositionBuffer(np.zeros((3, 3)))

    def test_initial_out_of_region(self):
        with pytest.raises(OutOfRegionError):
            PositionBuffer(np.asarray([[0.5, 1.5]]))

    def test_snapshot_is_immutable(self):
        # The snapshot is a read-only view of the published store epoch,
        # shared zero-copy with every consumer — writes must raise.
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        snap = buffer.snapshot()
        with pytest.raises(ValueError):
            snap[0, 0] = 0.9
        assert buffer.snapshot()[0, 0] == 0.5

    def test_clean_snapshot_shares_memory(self):
        # No dirty reports -> the same epoch is republished: same bytes,
        # no copy anywhere on the path.
        buffer = PositionBuffer(np.asarray([[0.5, 0.5], [0.1, 0.2]]))
        first = buffer.snapshot()
        second = buffer.snapshot()
        assert np.shares_memory(first, second)
        buffer.report(1, 0.3, 0.3)
        third = buffer.snapshot()
        assert tuple(third[1]) == (0.3, 0.3)
        # Earlier snapshots stay frozen at their epoch's content.
        assert tuple(first[1]) == (0.1, 0.2)

    def test_publish_returns_versioned_snapshot(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        snap = buffer.publish()
        again = buffer.publish()
        assert again.epoch == snap.epoch and again.token == snap.token
        buffer.report(0, 0.6, 0.6)
        bumped = buffer.publish()
        assert bumped.epoch > snap.epoch

    def test_report_applies_on_snapshot(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5], [0.1, 0.1]]))
        buffer.report(0, 0.7, 0.8)
        assert buffer.pending_reports == 1
        snap = buffer.snapshot()
        assert tuple(snap[0]) == (0.7, 0.8)
        assert tuple(snap[1]) == (0.1, 0.1)
        assert buffer.pending_reports == 0

    def test_last_report_wins(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        buffer.report(0, 0.2, 0.2)
        buffer.report(0, 0.3, 0.3)
        assert tuple(buffer.snapshot()[0]) == (0.3, 0.3)
        assert buffer.reports_received == 2

    def test_unknown_object(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        with pytest.raises(ConfigurationError):
            buffer.report(5, 0.1, 0.1)

    def test_out_of_region_report(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        with pytest.raises(OutOfRegionError):
            buffer.report(0, 1.0, 0.5)

    def test_report_batch(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5], [0.4, 0.4], [0.3, 0.3]]))
        buffer.report_batch([2, 0], np.asarray([[0.9, 0.9], [0.8, 0.8]]))
        snap = buffer.snapshot()
        assert tuple(snap[2]) == (0.9, 0.9)
        assert tuple(snap[0]) == (0.8, 0.8)

    def test_report_batch_length_mismatch(self):
        buffer = PositionBuffer(np.asarray([[0.5, 0.5]]))
        with pytest.raises(ConfigurationError):
            buffer.report_batch([0, 1], np.asarray([[0.1, 0.1]]))

    def test_empty_population(self):
        buffer = PositionBuffer(np.empty((0, 2)))
        assert buffer.snapshot().shape == (0, 2)


def make_service(system, objects):
    with pytest.warns(DeprecationWarning):
        return MonitoringService(system, objects)


class TestMonitoringService:
    def test_constructing_one_warns(self):
        objects = make_dataset("uniform", 100, seed=1)
        queries = make_queries(2, seed=2)
        with pytest.warns(DeprecationWarning, match="MonitoringSession"):
            MonitoringService(MonitoringSystem.object_indexing(2, queries), objects)

    def test_streaming_cycle_exact(self):
        objects = make_dataset("uniform", 600, seed=1)
        queries = make_queries(5, seed=2)
        system = MonitoringSystem.object_indexing(4, queries)
        service = make_service(system, objects)
        assert len(service.initial_answers) == 5

        # A burst of asynchronous reports, then a cycle.
        rng = np.random.default_rng(3)
        moved = objects.copy()
        movers = rng.choice(600, size=200, replace=False)
        for object_id in movers:
            x, y = rng.random(2)
            service.report(int(object_id), float(x), float(y))
            moved[object_id] = (x, y)
        answers = service.run_cycle()
        assert service.timestamp == system.tau
        for qa in answers:
            qx, qy = queries[qa.query_id]
            want = brute_force_knn(moved, qx, qy, 4)
            assert_same_distances(qa.neighbors, want)

    def test_multiple_cycles(self):
        objects = make_dataset("uniform", 200, seed=4)
        queries = make_queries(3, seed=5)
        service = make_service(MonitoringSystem.hierarchical(3, queries), objects)
        rng = np.random.default_rng(6)
        current = objects.copy()
        for _ in range(3):
            for object_id in range(0, 200, 7):
                x, y = rng.random(2)
                service.report(object_id, float(x), float(y))
                current[object_id] = (x, y)
            answers = service.run_cycle()
            for qa in answers:
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(current, qx, qy, 3)
                assert_same_distances(qa.neighbors, want)

    def test_cycle_without_reports(self):
        objects = make_dataset("uniform", 100, seed=7)
        queries = make_queries(2, seed=8)
        service = make_service(
            MonitoringSystem.object_indexing(2, queries), objects
        )
        first = service.run_cycle()
        second = service.run_cycle()
        assert [qa.object_ids() for qa in first] == [
            qa.object_ids() for qa in second
        ]
