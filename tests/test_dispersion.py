"""Tests for the cluster-dispersion process (Fig. 21(b) workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.motion.datasets import skewness_statistic
from repro.motion.dispersion import DispersionProcess


class TestConstruction:
    def test_bad_steps(self):
        with pytest.raises(ConfigurationError):
            DispersionProcess(100, steps=0)

    def test_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            DispersionProcess(100, steps=5, jitter=-0.1)

    def test_bad_step_query(self):
        process = DispersionProcess(100, steps=5, seed=1)
        with pytest.raises(ConfigurationError):
            process.positions_at(-1)


class TestDispersion:
    def test_endpoints(self):
        process = DispersionProcess(500, steps=10, seed=2)
        np.testing.assert_array_equal(process.positions_at(0), process.start)
        np.testing.assert_allclose(
            process.positions_at(10), np.clip(process.target, 0, 1 - 1e-9)
        )

    def test_beyond_final_step_stays_at_target(self):
        process = DispersionProcess(100, steps=4, seed=3)
        np.testing.assert_allclose(process.positions_at(4), process.positions_at(9))

    def test_skew_decreases_monotonically(self):
        process = DispersionProcess(5000, steps=10, seed=4)
        skews = [
            skewness_statistic(process.positions_at(step)) for step in range(11)
        ]
        # Start clustered, end uniform; trend must be clearly decreasing.
        assert skews[0] > 5 * skews[-1]
        assert all(skews[i] >= skews[i + 2] * 0.9 for i in range(len(skews) - 2))

    def test_snapshots_count(self):
        process = DispersionProcess(50, steps=7, seed=5)
        assert len(list(process.snapshots())) == 8

    def test_all_in_region(self):
        process = DispersionProcess(1000, steps=5, jitter=0.02, seed=6)
        for snapshot in process.snapshots():
            assert np.all(snapshot >= 0.0)
            assert np.all(snapshot < 1.0)

    def test_jitter_changes_paths(self):
        smooth = DispersionProcess(100, steps=5, jitter=0.0, seed=7)
        noisy = DispersionProcess(100, steps=5, jitter=0.01, seed=7)
        np.testing.assert_array_equal(smooth.positions_at(0), noisy.positions_at(0))
        assert not np.array_equal(smooth.positions_at(3), noisy.positions_at(3))
