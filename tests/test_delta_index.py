"""Delta-CSR engine: bit-identical equivalence, reuse soundness, patching."""

import numpy as np
import pytest

from repro import MetricsRegistry, MonitoringSystem
from repro.core import delta_index
from repro.core.delta_index import DeltaCSRGrid, DeltaGridEngine
from repro.core.fast_index import batch_knn
from repro.errors import (
    ConfigurationError,
    IndexStateError,
    NotEnoughObjectsError,
)
from repro.motion.random_walk import RandomWalkModel


def canonical(query_answers, places=12):
    """Rounded (distance, id) lists per query — exact across engines.

    Distances are rounded because the brute-force oracle stores
    ``sqrt(d2)`` and re-squares, which differs from the grid engines'
    direct ``d2`` in the final ulp.
    """
    return [
        [(round(dist, places), object_id) for object_id, dist in answer.neighbors]
        for answer in query_answers
    ]


def sitter_dataset(rng, n, ncells):
    """Positions with objects exactly on cell boundaries, duplicate
    coordinates (distance ties -> ID tie-breaks), and the corners."""
    positions = rng.random((n, 2))
    edges = np.arange(1, ncells) / ncells
    m = min(n // 4, 4 * len(edges))
    positions[:m, 0] = np.resize(edges, m)
    positions[m : 2 * m, 1] = np.resize(edges, m)
    positions[n // 2 : n // 2 + n // 4] = positions[: n // 4]
    positions[-1] = [1.0, 1.0]
    positions[-2] = [0.0, 0.0]
    return positions


class TestEquivalence:
    """delta_grid == fast_grid == brute_force, bit for bit, 50+ cycles.

    The walk covers both maintenance regimes: 25 cycles of fast
    reflecting-boundary motion (every object moves -> rebuild regime),
    then 25 cycles where only ~1% of objects move (patch regime + answer
    reuse).  The query set is swapped mid-run.
    """

    N, NQ, K, SWAP_AT = 400, 25, 6, 30

    @pytest.fixture(scope="class")
    def snapshots(self):
        rng = np.random.default_rng(42)
        # Sitters on the boundaries of both the delta engine's default
        # grid (10 cells/side at N=400) and fast_grid's (20 cells/side).
        current = sitter_dataset(rng, self.N, 20)
        snaps = [current]
        fast = RandomWalkModel(vmax=0.2, boundary="reflect", seed=1)
        for _ in range(25):
            current = fast.step(current)
            snaps.append(current)
        slow = RandomWalkModel(
            vmax=0.05, boundary="reflect", seed=2, update_fraction=0.01
        )
        for _ in range(25):
            current = slow.step(current)
            snaps.append(current)
        return snaps

    @pytest.fixture(scope="class")
    def queries(self):
        rng = np.random.default_rng(43)
        first = rng.random((self.NQ, 2))
        first[0] = [0.5, 0.5]     # exactly on a cell corner in both grids
        first[1] = [0.1, 0.9]
        second = rng.random((self.NQ, 2))
        return first, second

    def _walk(self, build_system, snapshots, queries):
        system = build_system(self.K, queries[0])
        try:
            trace = [canonical(system.load(snapshots[0]))]
            for cycle, positions in enumerate(snapshots[1:], start=1):
                if cycle == self.SWAP_AT:
                    system.set_queries(queries[1])
                trace.append(canonical(system.tick(positions)))
        finally:
            system.close()
        return trace

    @pytest.fixture(scope="class")
    def reference(self, snapshots, queries):
        return self._walk(
            lambda k, q: MonitoringSystem.brute_force(k, q), snapshots, queries
        )

    def test_fast_grid_matches_brute_force(self, reference, snapshots, queries):
        trace = self._walk(
            lambda k, q: MonitoringSystem.fast_grid(k, q), snapshots, queries
        )
        assert trace == reference

    def test_delta_grid_matches_and_covers_both_regimes(
        self, reference, snapshots, queries
    ):
        registry = MetricsRegistry()
        trace = self._walk(
            lambda k, q: MonitoringSystem.delta_grid(k, q, registry=registry),
            snapshots,
            queries,
        )
        assert trace == reference
        # The walk must actually exercise what it claims to exercise.
        assert registry.counter("delta.rebuild_cycles") > 0
        assert registry.counter("delta.patch_cycles") > 0
        assert registry.counter("delta.queries_reused") > 0
        assert registry.counter("delta.queries_reanswered") > 0

    @pytest.mark.parametrize(
        "label,options",
        [
            ("no-reuse", {"reuse": False}),
            ("patch-forced", {"patch_threshold": 1.0}),
            ("rebuild-forced", {"patch_threshold": 0.0}),
            ("coarse-grid", {"ncells": 5}),
            ("fine-grid", {"ncells": 31}),
        ],
    )
    def test_delta_grid_variants_match(
        self, reference, snapshots, queries, label, options
    ):
        trace = self._walk(
            lambda k, q: MonitoringSystem.delta_grid(k, q, **options),
            snapshots,
            queries,
        )
        assert trace == reference

    def test_argsort_fallback_matches(
        self, reference, snapshots, queries, monkeypatch
    ):
        # CI has no scipy; locally, force the fallback grouping path so
        # both grouping implementations face the full walk.
        monkeypatch.setattr(delta_index, "_USE_SCIPY", False)
        trace = self._walk(
            lambda k, q: MonitoringSystem.delta_grid(k, q), snapshots, queries
        )
        assert trace == reference


class TestCompaction:
    def test_overflowing_slack_compacts_and_stays_exact(self):
        rng = np.random.default_rng(5)
        positions = rng.random((500, 2))
        queries = rng.random((12, 2))
        registry = MetricsRegistry()
        system = MonitoringSystem.delta_grid(
            4, queries, slack=0.01, patch_threshold=1.0, registry=registry
        )
        oracle = MonitoringSystem.brute_force(4, queries)
        assert canonical(system.load(positions)) == canonical(
            oracle.load(positions)
        )
        walk = RandomWalkModel(vmax=0.02, boundary="reflect", seed=6)
        for positions in walk.run(positions, 30):
            assert canonical(system.tick(positions)) == canonical(
                oracle.tick(positions)
            )
        assert system.engine.grid.compactions > 0
        assert registry.counter("delta.compactions") > 0


class TestAnswerReuse:
    def test_reused_answers_are_previous_answers(self):
        rng = np.random.default_rng(8)
        positions = rng.random((2000, 2))
        queries = rng.random((40, 2))
        system = MonitoringSystem.delta_grid(6, queries)
        oracle = MonitoringSystem.brute_force(6, queries)
        previous = canonical(system.load(positions))
        oracle.load(positions)
        reused_total = 0
        for _ in range(20):
            positions = positions.copy()
            movers = rng.choice(2000, 5, replace=False)
            positions[movers] = rng.random((5, 2))
            got = canonical(system.tick(positions))
            assert got == canonical(oracle.tick(positions))
            mask = system.engine.last_reuse_mask
            for q in np.flatnonzero(mask):
                assert got[q] == previous[q]
            reused_total += int(mask.sum())
            previous = got
        assert reused_total > 0

    def test_knife_edge_mover_into_rect_border_is_detected(self):
        # A cluster far from the query fixes a large k-th distance; an
        # object teleporting right next to the query must evict a
        # neighbor even though most of the grid is untouched.
        queries = np.array([[0.05, 0.05]])
        positions = np.vstack([
            np.column_stack([
                np.linspace(0.3, 0.4, 6), np.full(6, 0.05)
            ]),
            np.random.default_rng(3).random((500, 2)) * 0.2 + [0.7, 0.7],
        ])
        system = MonitoringSystem.delta_grid(3, queries)
        oracle = MonitoringSystem.brute_force(3, queries)
        system.load(positions)
        oracle.load(positions)
        moved = positions.copy()
        moved[-1] = [0.051, 0.05]   # lands inside the critical rectangle
        assert canonical(system.tick(moved)) == canonical(oracle.tick(moved))


class TestGridInternals:
    def test_membership_churn_matches_fresh_grid(self):
        # Simulates the sharded stripes: the member set changes between
        # updates, and the patched grid must answer exactly like a grid
        # built from scratch over the new members.
        rng = np.random.default_rng(11)
        n = 3000
        positions = rng.random((n, 2))
        members = np.flatnonzero(positions[:, 0] < 0.5)
        grid = DeltaCSRGrid(
            positions,
            region=(0.0, 0.0, 0.5, 1.0),
            nx=8,
            ny=16,
            track_dirty=False,
            member_idx=members,
        )
        for _ in range(10):
            positions = positions.copy()
            movers = rng.choice(n, 200, replace=False)
            positions[movers] = rng.random((200, 2))
            members = np.flatnonzero(positions[:, 0] < 0.5)
            grid.update(positions, member_idx=members)
            assert grid.n_objects == len(members)
            fresh = DeltaCSRGrid(
                positions,
                region=(0.0, 0.0, 0.5, 1.0),
                nx=8,
                ny=16,
                track_dirty=False,
                member_idx=members,
            )
            qx = rng.random(10) * 0.5
            qy = rng.random(10)
            got = batch_knn(grid, qx, qy, 4)
            want = batch_knn(fresh, qx, qy, 4)
            np.testing.assert_array_equal(got.top_ids, want.top_ids)
            np.testing.assert_array_equal(got.top_d2, want.top_d2)

    def test_in_place_mutation_disables_reuse_but_stays_exact(self):
        rng = np.random.default_rng(13)
        positions = rng.random((1000, 2))
        grid = DeltaCSRGrid(positions, 10)
        positions[rng.choice(1000, 10, replace=False)] = rng.random((10, 2))
        stats = grid.update(positions)   # same array object, mutated
        assert stats.dirty_all
        fresh = DeltaCSRGrid(positions.copy(), 10)
        qx, qy = rng.random(8), rng.random(8)
        got = batch_knn(grid, qx, qy, 5)
        want = batch_knn(fresh, qx, qy, 5)
        np.testing.assert_array_equal(got.top_ids, want.top_ids)

    def test_population_resize_rebuilds(self):
        rng = np.random.default_rng(17)
        grid = DeltaCSRGrid(rng.random((100, 2)), 4)
        stats = grid.update(rng.random((250, 2)))
        assert stats.mode == "rebuild"
        assert grid.n_objects == 250


class TestContracts:
    def test_not_enough_objects(self):
        engine = DeltaGridEngine(5, np.array([[0.5, 0.5]]))
        engine.load(np.random.default_rng(0).random((3, 2)))
        with pytest.raises(NotEnoughObjectsError):
            engine.answer()

    def test_answer_before_load(self):
        engine = DeltaGridEngine(2, np.array([[0.5, 0.5]]))
        with pytest.raises(IndexStateError):
            engine.answer()

    def test_no_queries(self):
        engine = DeltaGridEngine(2, np.empty((0, 2)))
        engine.load(np.random.default_rng(0).random((10, 2)))
        assert engine.answer() == []

    def test_rejects_bad_options(self):
        queries = np.array([[0.5, 0.5]])
        with pytest.raises(ConfigurationError):
            MonitoringSystem.delta_grid(2, queries, ncell=8)
        with pytest.raises(ConfigurationError):
            # ncells and delta are mutually exclusive; resolved at build.
            MonitoringSystem.delta_grid(2, queries, ncells=8, delta=0.1).load(
                np.random.default_rng(0).random((10, 2))
            )
        with pytest.raises(ConfigurationError):
            DeltaCSRGrid(np.zeros((4, 3)), 4)

    def test_engine_name_and_registry_entry(self):
        system = MonitoringSystem.delta_grid(2, np.array([[0.5, 0.5]]))
        assert system.engine.name == "delta-grid"
