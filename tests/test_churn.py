"""Churn equivalence: a long-lived session must match fresh rebuilds bit-for-bit.

The contract under test is the strongest one the service layer makes: a
:class:`~repro.service.MonitoringSession` driven through hundreds of
cycles of interleaved query registration/drops, object joins/leaves, and
motion must report answers *bit-identical* — same neighbor IDs in the
same order, same float64 distances — to a throwaway engine built fresh
every cycle from the surviving population.  Any drift in the incremental
delta paths (stale reuse state, mis-remapped rows after compaction, a
stripe cache surviving an epoch bump) shows up here as a first-class
failure with the cycle number attached.

Positions live on a coarse lattice so duplicate query-object distances
are common: the equality of answers therefore also pins down the
(distance, id) tie-break through every churn path, not just the metric.
"""

import os
import signal

import numpy as np
import pytest

from repro.engines.registry import build_system
from repro.service import MonitoringSession

K = 3
LATTICE = 16  # positions on the i/LATTICE grid -> frequent exact ties


def _lattice(rng, n):
    return rng.integers(0, LATTICE + 1, size=(n, 2)) / LATTICE


def _lattice_walk(rng, pos):
    """One random-walk step that stays on the lattice inside [0, 1]."""
    step = rng.integers(-1, 2, size=pos.shape) / LATTICE
    return np.clip(pos + step, 0.0, 1.0).round(6)


def drive_churn(
    method,
    session_opts=None,
    baseline_opts=None,
    cycles=200,
    seed=2005,
    kill_worker_at=None,
):
    """Run the dual-driver: churned session vs per-cycle fresh engine.

    Every cycle applies a random mix of register/drop/join/leave plus a
    lattice random-walk of the whole live population, ticks the session,
    then builds a *fresh* system from the session's own surviving
    population and compares answers exactly.
    """
    rng = np.random.default_rng(seed)
    session_opts = dict(session_opts or {})
    baseline_opts = dict(baseline_opts or {})
    next_oid = 0

    with MonitoringSession(method, k=K, **session_opts) as session:
        # Seed population and queries.
        for xy in _lattice(rng, 30):
            session.join_object(next_oid, xy)
            next_oid += 1
        for xy in _lattice(rng, 5):
            session.register_query(xy)

        for cycle in range(cycles):
            if cycle > 0:
                # --- lifecycle churn -----------------------------------
                live_ids, live_pos = session.population()
                handles = session.handles()
                n_live, nq = len(live_ids), len(handles)
                for _ in range(int(rng.integers(0, 4))):  # joins
                    session.join_object(next_oid, _lattice(rng, 1)[0])
                    next_oid += 1
                n_leave = int(rng.integers(0, 4))
                # Keep the post-admission population comfortably >= K.
                n_leave = min(n_leave, max(0, n_live - (K + 2)))
                for oid in rng.choice(live_ids, size=n_leave, replace=False):
                    session.leave_object(int(oid))
                if nq > 1 and rng.random() < 0.4:
                    session.drop_query(handles[int(rng.integers(nq))])
                if nq < 12 and rng.random() < 0.5:
                    session.register_query(_lattice(rng, 1)[0])
                # --- motion (streaming, not part of the admission set) --
                _, live_pos = session.population()
                session.update_positions(_lattice_walk(rng, live_pos))

            if kill_worker_at is not None and cycle == kill_worker_at:
                os.kill(session.engine.worker_pids()[0], signal.SIGKILL)

            answers = session.tick()

            # --- the oracle: fresh engine over the survivors -----------
            ids, pos = session.population()
            fresh = build_system(
                method, K, session.query_points(), **baseline_opts
            )
            try:
                fresh_answers = fresh.load(pos)
            finally:
                fresh.close()
            for row, handle in enumerate(session.handles()):
                want = tuple(
                    (int(ids[oid]), dist)
                    for oid, dist in fresh_answers[row].neighbors
                )
                got = answers[handle].neighbors
                assert got == want, (
                    f"{method}: cycle {cycle} query row {row} diverged:\n"
                    f"  session: {got}\n  fresh:   {want}"
                )
        assert session.n_live_objects >= K
    return next_oid


@pytest.mark.parametrize(
    "method",
    ["object_indexing", "fast_grid", "delta_grid"],
)
def test_churn_matches_fresh_rebuild_200_cycles(method):
    drive_churn(method)


def test_churn_differential_query_indexing_and_hierarchical():
    """200-cycle churn equivalence for the remaining exact engines.

    ``query_indexing`` and ``hierarchical`` run the same churn profile as
    :func:`drive_churn` but through the differential runner: one recorded
    workload, ``brute_force`` as the oracle, answers compared
    ``(distance, id)``-exact every cycle.  A failure reports the first
    divergent cycle and query instead of a bare assert."""
    from repro.verify import churn_scenario, make_specs, run_differential

    workload = churn_scenario(2005, k=K, cycles=200, lattice=LATTICE)
    specs = make_specs(["brute_force", "query_indexing", "hierarchical"])
    report = run_differential(workload, specs)
    assert report.ok, "\n".join(
        [d.describe() for d in report.divergences] + report.errors
    )


@pytest.mark.slow
def test_churn_differential_all_methods_long():
    """Nightly tier: 400 churn cycles across every exact engine at once,
    sharded running live worker processes."""
    from repro.verify import churn_scenario, make_specs, run_differential

    workload = churn_scenario(11, k=K, cycles=400, lattice=LATTICE)
    specs = make_specs(["all"], sharded_workers=2)
    report = run_differential(workload, specs)
    assert report.ok, "\n".join(
        [d.describe() for d in report.divergences] + report.errors
    )


def test_churn_matches_fresh_rebuild_sharded_serial():
    drive_churn(
        "sharded",
        session_opts={"shards": 2, "workers": 0},
        baseline_opts={"shards": 2, "workers": 0},
    )


def test_churn_matches_fresh_rebuild_sharded_workers():
    # Fewer cycles: each one round-trips a process pool.  The serial and
    # worker paths share run_shard_task, so the long run above covers the
    # stripe logic; this run covers dispatch/shared-memory under churn.
    drive_churn(
        "sharded",
        session_opts={"shards": 2, "workers": 2, "oversubscribe": True},
        baseline_opts={"shards": 2, "workers": 0},
        cycles=60,
    )


def test_churn_survives_worker_sigkill():
    """SIGKILL a stripe worker mid-churn: the pool respawns it, the fresh
    process rebuilds its stripe from the snapshot, and answers never
    deviate from the fresh-engine oracle — before, during, or after."""
    drive_churn(
        "sharded",
        session_opts={"shards": 2, "workers": 2, "oversubscribe": True},
        baseline_opts={"shards": 2, "workers": 0},
        cycles=40,
        kill_worker_at=17,
    )


def test_churn_with_stripe_rebalancing():
    """With rebalancing on and a population that drifts into one stripe,
    the engine re-cuts its partition mid-run; answers must stay exact
    because routing escalates past any partition."""
    rng = np.random.default_rng(99)
    with MonitoringSession(
        "sharded",
        k=K,
        shards=3,
        workers=0,
        rebalance_threshold=1.5,
    ) as session:
        for oid in range(40):
            session.join_object(oid, _lattice(rng, 1)[0])
        for xy in _lattice(rng, 6):
            session.register_query(xy)
        session.tick()
        for cycle in range(80):
            ids, pos = session.population()
            # Drift everything toward x=0: stripe loads skew hard.
            pos = np.clip(pos - [0.01, 0.0], 0.0, 1.0).round(6)
            session.update_positions(pos)
            if cycle % 7 == 0:
                session.join_object(1000 + cycle, _lattice(rng, 1)[0])
            answers = session.tick()
            ids, pos = session.population()
            fresh = build_system(
                "sharded", K, session.query_points(), shards=3, workers=0
            )
            try:
                fresh_answers = fresh.load(pos)
            finally:
                fresh.close()
            for row, handle in enumerate(session.handles()):
                want = tuple(
                    (int(ids[oid]), dist)
                    for oid, dist in fresh_answers[row].neighbors
                )
                assert answers[handle].neighbors == want, f"cycle {cycle}"
        assert session.engine.rebalances >= 1


def test_compaction_preserves_answer_ids():
    """Grow past several capacity doublings, then leave 95% of the
    population: the universe compacts (rows remap) and reported IDs must
    still be the external ones."""
    rng = np.random.default_rng(5)
    with MonitoringSession("delta_grid", k=K) as session:
        for oid in range(600):
            session.join_object(oid, _lattice(rng, 1)[0])
        handle = session.register_query((0.5, 0.5))
        session.tick()
        for oid in range(570):
            session.leave_object(oid)
        answers = session.tick()
        assert session.registry.counter("service.compactions") == 0.0  # null registry
        ids, pos = session.population()
        fresh = build_system("delta_grid", K, session.query_points())
        fresh_answers = fresh.load(pos)
        want = tuple(
            (int(ids[oid]), dist) for oid, dist in fresh_answers[0].neighbors
        )
        assert answers[handle].neighbors == want
        assert all(oid >= 570 for oid, _ in answers[handle].neighbors)
