"""Property-based tests for the AnswerList data structure."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.answers import AnswerList, answers_equal

dist2 = st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=64)


@settings(max_examples=100, deadline=None)
@given(st.lists(dist2, min_size=1, max_size=50), st.integers(min_value=1, max_value=10))
def test_answer_list_keeps_k_smallest(distances, k):
    answers = AnswerList(k)
    for object_id, d2 in enumerate(distances):
        answers.offer(d2, object_id)
    got = [d2 for d2, _ in answers]
    want = sorted(distances)[:k]
    assert got == want


@settings(max_examples=100, deadline=None)
@given(st.lists(dist2, min_size=1, max_size=50), st.integers(min_value=1, max_value=10))
def test_answer_list_sorted_and_bounded(distances, k):
    answers = AnswerList(k)
    for object_id, d2 in enumerate(distances):
        answers.offer(d2, object_id)
    entries = list(answers)
    assert len(entries) == min(k, len(distances))
    assert entries == sorted(entries)


@settings(max_examples=100, deadline=None)
@given(st.lists(dist2, min_size=1, max_size=30), st.integers(min_value=1, max_value=5))
def test_worst_dist2_is_kth_or_inf(distances, k):
    answers = AnswerList(k)
    for object_id, d2 in enumerate(distances):
        answers.offer(d2, object_id)
        if len(answers) < k:
            assert answers.worst_dist2 == math.inf
        else:
            assert answers.worst_dist2 == list(answers)[-1][0]


@settings(max_examples=100, deadline=None)
@given(st.lists(dist2, min_size=1, max_size=30), st.integers(min_value=1, max_value=5))
def test_offer_order_does_not_matter(distances, k):
    forward = AnswerList(k)
    backward = AnswerList(k)
    for object_id, d2 in enumerate(distances):
        forward.offer(d2, object_id)
    for object_id, d2 in reversed(list(enumerate(distances))):
        backward.offer(d2, object_id)
    assert [d for d, _ in forward] == [d for d, _ in backward]
    # IDs may differ only inside tie groups.
    assert answers_equal(forward.neighbors(), backward.neighbors())


@settings(max_examples=100, deadline=None)
@given(st.lists(dist2, min_size=1, max_size=20))
def test_answers_equal_reflexive(distances):
    answers = AnswerList(10)
    for object_id, d2 in enumerate(distances):
        answers.offer(d2, object_id)
    assert answers_equal(answers.neighbors(), answers.neighbors())
