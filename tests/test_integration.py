"""End-to-end integration tests spanning multiple subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DeltaTracker,
    MonitoringSystem,
    PositionBuffer,
    RKNNMonitor,
    RandomWalkModel,
    RoadNetworkModel,
    answers_equal,
    make_dataset,
    make_queries,
)
from repro.core.brute import brute_force_knn
from repro.core.rknn import brute_force_rknn
from tests.conftest import assert_same_distances

METHOD_FACTORIES = {
    "object": lambda k, q: MonitoringSystem.object_indexing(k, q),
    "object_incr": lambda k, q: MonitoringSystem.object_indexing(
        k, q, maintenance="incremental", answering="incremental"
    ),
    "query": lambda k, q: MonitoringSystem.query_indexing(k, q),
    "hier": lambda k, q: MonitoringSystem.hierarchical(k, q),
    "rtree": lambda k, q: MonitoringSystem.rtree(k, q, maintenance="str_bulk"),
}


class TestCrossMethodAgreement:
    @pytest.mark.parametrize("dataset", ["uniform", "skewed", "hi_skewed"])
    def test_all_methods_agree(self, dataset):
        """All five methods produce interchangeable exact answers on every
        dataset over a multi-cycle run."""
        objects = make_dataset(dataset, 1000, seed=41)
        queries = make_queries(8, seed=42)
        systems = {
            name: factory(6, queries) for name, factory in METHOD_FACTORIES.items()
        }
        motions = {
            name: RandomWalkModel(vmax=0.008, seed=43) for name in systems
        }
        snapshots = {name: objects for name in systems}
        for name, system in systems.items():
            system.load(objects)
        for _ in range(4):
            finals = {}
            for name, system in systems.items():
                snapshots[name] = motions[name].step(snapshots[name])
                finals[name] = system.tick(snapshots[name])
            reference = finals["object"]
            for name, answers in finals.items():
                for qa, ref in zip(answers, reference):
                    assert answers_equal(list(qa.neighbors), list(ref.neighbors)), (
                        name,
                        qa.query_id,
                    )

    def test_road_network_workload(self):
        """Monitoring over road-constrained motion stays exact."""
        fleet = RoadNetworkModel(800, vmax=0.01, seed=44)
        queries = make_queries(6, seed=45)
        system = MonitoringSystem.hierarchical(5, queries)
        positions = fleet.positions()
        system.load(positions)
        for _ in range(4):
            positions = fleet.step()
            answers = system.tick(positions)
            for qa in answers:
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(positions, qx, qy, 5)
                assert_same_distances(qa.neighbors, want)


class TestStreamingPipeline:
    def test_buffer_monitor_delta_pipeline(self):
        """Full pipeline: async reports -> snapshot -> answers -> deltas."""
        objects = make_dataset("skewed", 700, seed=46)
        queries = make_queries(6, seed=47)
        buffer = PositionBuffer(objects)
        system = MonitoringSystem.query_indexing(5, queries)
        tracker = DeltaTracker()
        tracker.update(system.load(buffer.publish()))

        rng = np.random.default_rng(48)
        current = objects.copy()
        for _ in range(3):
            movers = rng.choice(700, size=150, replace=False)
            for object_id in movers:
                x, y = rng.random(2)
                buffer.report(int(object_id), float(x), float(y))
                current[object_id] = (x, y)
            answers = system.tick(buffer.publish())
            deltas = tracker.update(answers)
            # Exactness against the accumulated state.
            for qa in answers:
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(current, qx, qy, 5)
                assert_same_distances(qa.neighbors, want)
            assert len(deltas) == 6
        assert tracker.cycles == 4


class TestCompositeQueries:
    def test_rknn_and_knn_consistency(self):
        """Composite invariant linking kNN and RkNN: if q is within the
        k-th self-join distance of p, then p is a reverse neighbor."""
        positions = make_dataset("uniform", 300, seed=49)
        queries = make_queries(4, seed=50)
        monitor = RKNNMonitor(3, queries)
        got = monitor.tick(positions)
        want = brute_force_rknn(positions, queries, 3)
        assert [sorted(g) for g in got] == [sorted(w) for w in want]

    def test_knn_monitor_and_rknn_share_population(self):
        """Run kNN and RkNN monitors side by side over the same motion."""
        positions = make_dataset("skewed", 400, seed=51)
        queries = make_queries(5, seed=52)
        knn_system = MonitoringSystem.object_indexing(3, queries)
        rknn_monitor = RKNNMonitor(3, queries)
        knn_system.load(positions)
        motion = RandomWalkModel(vmax=0.01, seed=53)
        for _ in range(3):
            positions = motion.step(positions)
            knn_answers = knn_system.tick(positions)
            rknn_answers = rknn_monitor.tick(positions)
            want = brute_force_rknn(positions, queries, 3)
            assert [sorted(g) for g in rknn_answers] == [sorted(w) for w in want]
            for qa in knn_answers:
                qx, qy = queries[qa.query_id]
                expected = brute_force_knn(positions, qx, qy, 3)
                assert_same_distances(qa.neighbors, expected)
