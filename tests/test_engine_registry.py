"""The engine layer: registry coverage, unified pipeline, facade compat.

Guards the invariants of the engines package: every configured method has
exactly one registered engine, every construction path resolves through
the registry, exactly one cycle-timing type exists, and the historic
``repro.core.monitor`` import surface keeps working.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core.config import METHOD_CONFIGS
from repro.core.monitor import BaseEngine, CycleStats, MonitoringSystem
from repro.engines import base as engines_base
from repro.engines.registry import (
    BENCH_PRESETS,
    ENGINE_PATHS,
    build_system,
    engine_class,
    make_engine,
    resolve_preset,
)
from repro.errors import ConfigurationError

QUERIES = np.array([[0.25, 0.25], [0.75, 0.75], [0.5, 0.1]])


def small_positions(seed=5, n=60):
    return np.random.default_rng(seed).random((n, 2))


class TestRegistryCoverage:
    def test_registry_covers_every_method(self):
        """The single-table invariant: engine registry == config registry."""
        assert set(ENGINE_PATHS) == set(METHOD_CONFIGS)

    def test_every_engine_class_resolves(self):
        for method in ENGINE_PATHS:
            cls = engine_class(method)
            assert issubclass(cls, BaseEngine), method

    def test_unknown_method_lists_known(self):
        with pytest.raises(ConfigurationError, match="sharded"):
            engine_class("nope")

    def test_engine_class_error_lists_every_method(self):
        with pytest.raises(ConfigurationError) as excinfo:
            engine_class("nope")
        message = str(excinfo.value)
        assert "'nope'" in message
        for name in ENGINE_PATHS:
            assert name in message

    def test_resolve_preset_error_lists_methods_and_presets(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_preset("object_overhual", {})  # typo'd preset name
        message = str(excinfo.value)
        assert "'object_overhual'" in message
        for name in list(METHOD_CONFIGS) + list(BENCH_PRESETS):
            assert name in message

    def test_every_preset_targets_a_registered_method(self):
        for preset, (method, _) in BENCH_PRESETS.items():
            assert method in ENGINE_PATHS, preset

    def test_resolve_preset_merges_overrides(self):
        method, options = resolve_preset("object_overhaul", {"ncells": 32})
        assert method == "object_indexing"
        assert options["maintenance"] == "rebuild"
        assert options["ncells"] == 32

    def test_make_engine_uniform_construction(self):
        from repro.core.config import resolve_config

        config = resolve_config("object_indexing", None, {"answering": "overhaul"})
        engine = make_engine(config, 2, QUERIES)
        assert engine.k == 2
        assert engine.answering == "overhaul"


class TestBuildSystem:
    def test_bare_method_and_preset_names(self):
        positions = small_positions()
        for name in ("object_indexing", "object_overhaul", "brute_force"):
            system = build_system(name, 2, QUERIES)
            system.load(positions)
            system.tick(positions)
            assert len(system.history) == 2

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_system("nope", 2, QUERIES)

    def test_make_system_is_deprecated_alias(self):
        """Satellite: make_system warns and builds the identical system."""
        from repro.bench.runner import make_system

        with pytest.warns(DeprecationWarning, match="build_system"):
            legacy = make_system("object_incremental", 3, QUERIES, ncells=32)
        new = build_system("object_incremental", 3, QUERIES, ncells=32)
        assert type(legacy) is type(new) is MonitoringSystem
        assert type(legacy.engine) is type(new.engine)
        assert legacy.engine.k == new.engine.k == 3
        assert legacy.engine.maintenance == new.engine.maintenance == "incremental"
        assert legacy.engine.answering == new.engine.answering == "incremental"
        assert legacy.engine._ncells == new.engine._ncells == 32

    def test_create_and_build_system_share_the_registry(self):
        via_create = MonitoringSystem.create("query_indexing", 2, QUERIES)
        via_build = build_system("query_indexing", 2, QUERIES)
        assert type(via_create.engine) is type(via_build.engine)


class TestUnifiedCycleTiming:
    def test_exactly_one_timing_type(self):
        from repro.bench.runner import CycleTiming as bench_timing

        assert CycleStats is engines_base.CycleTiming
        assert bench_timing is engines_base.CycleTiming
        assert repro.CycleStats is repro.CycleTiming

    def test_single_record_and_summary_shapes(self):
        record = CycleStats(1.0, 0.5, 0.25)
        assert record.cycles == 1
        assert record.total_time == pytest.approx(0.75)
        summary = engines_base.CycleTiming.from_history(
            [CycleStats(0.0, 1.0, 1.0), record, CycleStats(2.0, 0.1, 0.05)]
        )
        assert summary.cycles == 2
        assert summary.index_time == pytest.approx(0.3)
        assert summary.answer_time == pytest.approx(0.15)

    def test_pipeline_owns_history(self):
        system = build_system("brute_force", 2, QUERIES)
        positions = small_positions()
        system.load(positions)
        system.tick(positions)
        assert system.history is system.pipeline.history
        assert [r.cycles for r in system.history] == [1, 1]
        assert system.last_stats is system.pipeline.last_record


class TestQuerySwapRegression:
    """Satellite: swapping queries between cycles must not leave stale
    per-query incremental state (previous-answer seeds, kth-distance
    routing) pointing at the old query positions."""

    @pytest.mark.parametrize(
        "method,options",
        [("fast_grid", {}), ("sharded", {"workers": 0, "shards": 3})],
    )
    def test_swapped_queries_stay_exact(self, method, options):
        from repro.core.brute import brute_force_knn

        rng = np.random.default_rng(41)
        positions = rng.random((300, 2))
        queries_a = rng.random((16, 2))
        queries_b = rng.random((16, 2))
        k = 4
        with build_system(method, k, queries_a, **options) as system:
            system.load(positions)
            current = queries_a
            for cycle in range(6):
                positions = np.clip(
                    positions + rng.normal(0, 0.005, positions.shape), 0, 1
                )
                current = queries_b if cycle % 2 == 0 else queries_a
                system.set_queries(current)
                answers = system.tick(positions)
                for (qx, qy), answer in zip(current, answers):
                    expected = brute_force_knn(positions, float(qx), float(qy), k)
                    assert answer.object_ids() == tuple(
                        oid for oid, _ in expected
                    ), f"{method} diverged after query swap on cycle {cycle}"

    def test_sharded_seeds_dropped_on_set_queries(self):
        from repro.shard.engine import ShardedGridEngine

        rng = np.random.default_rng(42)
        engine = ShardedGridEngine(3, rng.random((8, 2)), workers=0, shards=2)
        try:
            engine.load(rng.random((100, 2)))
            engine.answer()
            engine.maintain(rng.random((100, 2)))
            engine.answer()
            assert engine._prev_kth is not None
            engine.set_queries(rng.random((8, 2)))
            assert engine._prev_kth is None
        finally:
            engine.close()


class TestFacadeCompatibility:
    def test_monitor_module_reexports(self):
        from repro.core import monitor

        for name in (
            "BaseEngine",
            "BruteForceEngine",
            "CyclePipeline",
            "CycleStats",
            "CycleTiming",
            "HierarchicalEngine",
            "MonitoringSystem",
            "ObjectIndexingEngine",
            "QueryIndexingEngine",
            "RTreeEngine",
        ):
            assert hasattr(monitor, name), name
        from repro.engines.object_indexing import ObjectIndexingEngine

        assert monitor.ObjectIndexingEngine is ObjectIndexingEngine

    def test_package_exports_engine_layer(self):
        for name in (
            "BaseEngine",
            "CyclePipeline",
            "CycleTiming",
            "FastGridEngine",
            "SnapshotIndex",
            "build_system",
            "make_snapshot",
            "snapshot_knn",
            "snapshot_range",
        ):
            assert name in repro.__all__, name
            assert hasattr(repro, name), name

    def test_registry_and_tracer_settable_through_facade(self):
        from repro.obs.registry import MetricsRegistry

        system = build_system("brute_force", 2, QUERIES)
        registry = MetricsRegistry()
        system.pipeline.bind(registry)
        assert system.registry is registry
        assert system.engine.metrics is registry
