"""Unit and integration tests for the main-memory R-tree baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset
from repro.rtree import RTree
from tests.conftest import assert_same_distances


def inserted_tree(points, **kwargs):
    tree = RTree(**kwargs)
    for object_id, (x, y) in enumerate(points):
        tree.insert(object_id, x, y)
    return tree


class TestConstruction:
    def test_bad_max_entries(self):
        with pytest.raises(ConfigurationError):
            RTree(max_entries=2)

    def test_bad_min_entries(self):
        with pytest.raises(ConfigurationError):
            RTree(max_entries=10, min_entries=8)

    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1


class TestInsert:
    def test_single(self):
        tree = RTree()
        tree.insert(0, 0.5, 0.5)
        assert len(tree) == 1
        assert tree.position_of(0) == (0.5, 0.5)
        tree.validate()

    def test_duplicate_id_rejected(self):
        tree = RTree()
        tree.insert(0, 0.5, 0.5)
        with pytest.raises(IndexStateError):
            tree.insert(0, 0.6, 0.6)

    def test_many_inserts_split(self, uniform_1k):
        tree = inserted_tree(uniform_1k, max_entries=8)
        assert len(tree) == 1000
        assert tree.height > 1
        tree.validate()

    def test_duplicate_points_allowed(self):
        tree = RTree(max_entries=4)
        for object_id in range(30):
            tree.insert(object_id, 0.5, 0.5)
        assert len(tree) == 30
        tree.validate()


class TestDelete:
    def test_delete_missing(self):
        tree = RTree()
        with pytest.raises(IndexStateError):
            tree.delete(3)

    def test_delete_all(self, uniform_1k):
        tree = inserted_tree(uniform_1k[:200], max_entries=8)
        for object_id in range(200):
            tree.delete(object_id)
            if object_id % 50 == 0:
                tree.validate()
        assert len(tree) == 0

    def test_delete_then_query(self, uniform_1k):
        tree = inserted_tree(uniform_1k, max_entries=16)
        for object_id in range(0, 1000, 3):
            tree.delete(object_id)
        tree.validate()
        remaining = np.asarray(
            [uniform_1k[i] for i in range(1000) if i % 3 != 0]
        )
        remaining_ids = [i for i in range(1000) if i % 3 != 0]
        got = tree.knn(0.5, 0.5, 10)
        want = brute_force_knn(remaining, 0.5, 0.5, 10)
        got_d = [d for _, d in got.neighbors()]
        want_d = [d for _, d in want]
        np.testing.assert_allclose(got_d, want_d, atol=1e-12)
        # IDs must refer to surviving objects.
        assert all(object_id in set(remaining_ids) for object_id in got.object_ids())


class TestBulkLoad:
    def test_matches_population(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        assert len(tree) == 1000
        tree.validate()

    def test_empty(self):
        tree = RTree()
        tree.bulk_load(np.empty((0, 2)))
        assert len(tree) == 0

    def test_single(self):
        tree = RTree()
        tree.bulk_load(np.asarray([[0.3, 0.7]]))
        assert len(tree) == 1
        assert tree.knn(0.0, 0.0, 1).object_ids() == [0]

    def test_replaces_previous_content(self, uniform_1k):
        tree = RTree()
        tree.bulk_load(uniform_1k)
        tree.bulk_load(uniform_1k[:10])
        assert len(tree) == 10
        tree.validate()

    def test_str_is_balanced_and_packed(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        # STR packs leaves nearly full: height should be minimal.
        # 1000/16 = 63 leaves, 63/16 = 4 nodes, 1 root -> height 3.
        assert tree.height == 3


class TestKnn:
    @pytest.mark.parametrize("loader", ["insert", "bulk"])
    @pytest.mark.parametrize("k", [1, 7, 20])
    def test_matches_brute(self, uniform_1k, loader, k):
        if loader == "insert":
            tree = inserted_tree(uniform_1k, max_entries=12)
        else:
            tree = RTree(max_entries=12)
            tree.bulk_load(uniform_1k)
        for qx, qy in [(0.5, 0.5), (0.01, 0.99), (0.73, 0.22)]:
            got = tree.knn(qx, qy, k).neighbors()
            want = brute_force_knn(uniform_1k, qx, qy, k)
            assert_same_distances(got, want)

    def test_skewed_data(self, hi_skewed_1k):
        tree = RTree()
        tree.bulk_load(hi_skewed_1k)
        got = tree.knn(0.5, 0.5, 15).neighbors()
        want = brute_force_knn(hi_skewed_1k, 0.5, 0.5, 15)
        assert_same_distances(got, want)

    def test_k_too_large(self, uniform_1k):
        tree = RTree()
        tree.bulk_load(uniform_1k[:5])
        with pytest.raises(NotEnoughObjectsError):
            tree.knn(0.5, 0.5, 6)

    def test_query_outside(self, uniform_1k):
        tree = RTree()
        tree.bulk_load(uniform_1k)
        got = tree.knn(-0.5, 1.5, 5).neighbors()
        want = brute_force_knn(uniform_1k, -0.5, 1.5, 5)
        assert_same_distances(got, want)


class TestBottomUpUpdate:
    def test_in_place_path(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        # A tiny displacement almost always stays inside the leaf MBR.
        paths = set()
        for object_id in range(100):
            x, y = tree.position_of(object_id)
            nx = min(max(x + 1e-9, 0.0), 1.0)
            paths.add(tree.update_bottom_up(object_id, nx, y))
        assert "in_place" in paths
        tree.validate()

    def test_update_missing(self):
        tree = RTree()
        with pytest.raises(IndexStateError):
            tree.update_bottom_up(0, 0.5, 0.5)

    def test_far_jump_full_path(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        path = tree.update_bottom_up(0, 1.0 - 1e-6, 1.0 - 1e-6)
        # A cross-region jump cannot stay in place.
        assert path in ("local", "full")
        assert tree.position_of(0) == (1.0 - 1e-6, 1.0 - 1e-6)
        tree.validate()

    def test_updates_preserve_exactness(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        motion = RandomWalkModel(vmax=0.02, seed=21)
        current = uniform_1k
        for _ in range(5):
            current = motion.step(current)
            for object_id in range(len(current)):
                tree.update_bottom_up(
                    object_id, current[object_id, 0], current[object_id, 1]
                )
            tree.validate()
        got = tree.knn(0.5, 0.5, 10).neighbors()
        want = brute_force_knn(current, 0.5, 0.5, 10)
        assert_same_distances(got, want)

    def test_paths_distribution(self, uniform_1k):
        tree = RTree(max_entries=16)
        tree.bulk_load(uniform_1k)
        motion = RandomWalkModel(vmax=0.005, seed=22)
        current = motion.step(uniform_1k)
        paths = [
            tree.update_bottom_up(i, current[i, 0], current[i, 1])
            for i in range(len(current))
        ]
        # With a small vmax most updates stay in place (the Lee et al.
        # motivation); some escape locally.
        assert paths.count("in_place") > len(paths) * 0.5


class TestMixedWorkload:
    def test_interleaved_ops(self, rng):
        tree = RTree(max_entries=8)
        points = {}
        next_id = 0
        for round_number in range(300):
            op = rng.random()
            if op < 0.5 or not points:
                x, y = rng.random(), rng.random()
                tree.insert(next_id, x, y)
                points[next_id] = (x, y)
                next_id += 1
            elif op < 0.75:
                victim = int(rng.choice(list(points)))
                tree.delete(victim)
                del points[victim]
            else:
                mover = int(rng.choice(list(points)))
                x, y = rng.random(), rng.random()
                tree.update_bottom_up(mover, x, y)
                points[mover] = (x, y)
            if round_number % 60 == 0:
                tree.validate()
        tree.validate()
        assert len(tree) == len(points)
        if len(points) >= 5:
            positions = np.asarray(list(points.values()))
            ids = list(points)
            got = tree.knn(0.5, 0.5, 5)
            want = brute_force_knn(positions, 0.5, 0.5, 5)
            got_d = [d for _, d in got.neighbors()]
            want_d = [d for _, d in want]
            np.testing.assert_allclose(got_d, want_d, atol=1e-12)
