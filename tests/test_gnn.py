"""Tests for continuous group nearest neighbor monitoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gnn import (
    GNNMonitor,
    GroupQuery,
    brute_force_group_knn,
    group_knn,
)
from repro.core.object_index import ObjectIndex
from repro.errors import ConfigurationError, NotEnoughObjectsError
from repro.motion import RandomWalkModel, make_dataset, make_queries


def built_index(points):
    index = ObjectIndex(n_objects=len(points))
    index.build(points)
    return index


class TestGroupQuery:
    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            GroupQuery(np.zeros((0, 2)))
        with pytest.raises(ConfigurationError):
            GroupQuery(np.zeros((3, 3)))

    def test_centroid(self):
        group = GroupQuery(np.asarray([[0.0, 0.0], [1.0, 0.0], [0.5, 0.9]]))
        assert group.cx == pytest.approx(0.5)
        assert group.cy == pytest.approx(0.3)

    def test_aggregate_sum(self):
        group = GroupQuery(np.asarray([[0.0, 0.0], [1.0, 0.0]]))
        assert group.aggregate(0.5, 0.0, "sum") == pytest.approx(1.0)

    def test_aggregate_max(self):
        group = GroupQuery(np.asarray([[0.0, 0.0], [1.0, 0.0]]))
        assert group.aggregate(0.2, 0.0, "max") == pytest.approx(0.8)

    @pytest.mark.parametrize("kind", ["sum", "max"])
    def test_lower_bound_is_valid(self, kind):
        rng = np.random.default_rng(1)
        group = GroupQuery(rng.random((4, 2)))
        for _ in range(200):
            px, py = rng.random(2)
            d_c = float(np.hypot(px - group.cx, py - group.cy))
            assert group.lower_bound(d_c, kind) <= group.aggregate(px, py, kind) + 1e-12


class TestGroupKnn:
    @pytest.mark.parametrize("dataset", ["uniform", "hi_skewed"])
    @pytest.mark.parametrize("aggregate", ["sum", "max"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_matches_brute(self, dataset, aggregate, k):
        points = make_dataset(dataset, 500, seed=2)
        index = built_index(points)
        group_points = make_queries(4, seed=3)
        got = group_knn(index, GroupQuery(group_points), k, aggregate)
        want = brute_force_group_knn(points, group_points, k, aggregate)
        got_d = [round(d, 10) for _, d in got]
        want_d = [round(d, 10) for _, d in want]
        assert got_d == want_d

    def test_group_of_one_equals_knn(self):
        points = make_dataset("uniform", 300, seed=4)
        index = built_index(points)
        single = np.asarray([[0.4, 0.6]])
        got = group_knn(index, GroupQuery(single), 5, "sum")
        plain = index.knn_overhaul(0.4, 0.6, 5).neighbors()
        assert [round(d, 10) for _, d in got] == [round(d, 10) for _, d in plain]

    def test_spread_out_group(self):
        # Group members at opposite corners: the best sum-NN is central.
        points = make_dataset("uniform", 400, seed=5)
        index = built_index(points)
        corners = np.asarray([[0.02, 0.02], [0.98, 0.98], [0.02, 0.98], [0.98, 0.02]])
        got = group_knn(index, GroupQuery(corners), 3, "sum")
        want = brute_force_group_knn(points, corners, 3, "sum")
        assert [round(d, 10) for _, d in got] == [round(d, 10) for _, d in want]

    def test_bad_aggregate(self):
        index = built_index(make_dataset("uniform", 10, seed=6))
        with pytest.raises(ConfigurationError):
            group_knn(index, GroupQuery(np.asarray([[0.5, 0.5]])), 2, "median")

    def test_k_too_large(self):
        index = built_index(make_dataset("uniform", 5, seed=7))
        with pytest.raises(NotEnoughObjectsError):
            group_knn(index, GroupQuery(np.asarray([[0.5, 0.5]])), 6, "sum")

    def test_bad_k(self):
        index = built_index(make_dataset("uniform", 5, seed=8))
        with pytest.raises(ConfigurationError):
            group_knn(index, GroupQuery(np.asarray([[0.5, 0.5]])), 0, "sum")


class TestGNNMonitor:
    def test_cycles_stay_exact(self):
        positions = make_dataset("skewed", 300, seed=9)
        groups = [make_queries(3, seed=10), make_queries(5, seed=11)]
        monitor = GNNMonitor(4, groups, aggregate="sum")
        motion = RandomWalkModel(vmax=0.01, seed=12)
        for _ in range(3):
            positions = motion.step(positions)
            answers = monitor.tick(positions)
            for group_points, got in zip(groups, answers):
                want = brute_force_group_knn(positions, group_points, 4, "sum")
                assert [round(d, 10) for _, d in got] == [
                    round(d, 10) for _, d in want
                ]

    def test_max_aggregate_monitoring(self):
        positions = make_dataset("uniform", 200, seed=13)
        groups = [make_queries(4, seed=14)]
        monitor = GNNMonitor(2, groups, aggregate="max")
        got = monitor.tick(positions)[0]
        want = brute_force_group_knn(positions, groups[0], 2, "max")
        assert [round(d, 10) for _, d in got] == [round(d, 10) for _, d in want]

    def test_requires_groups(self):
        with pytest.raises(ConfigurationError):
            GNNMonitor(3, [])

    def test_bad_aggregate(self):
        with pytest.raises(ConfigurationError):
            GNNMonitor(3, [np.asarray([[0.5, 0.5]])], aggregate="min")
