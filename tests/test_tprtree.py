"""Tests for the TPR-tree and its predictive monitoring engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.monitor import MonitoringSystem
from repro.errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from repro.motion import LinearMotionModel, make_dataset, make_queries
from repro.tprtree import TPREngine, TPRTree
from tests.conftest import assert_same_distances


def loaded_tree(n=300, seed=1, vmax=0.01, max_entries=8):
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 2))
    velocities = rng.uniform(-vmax, vmax, (n, 2))
    tree = TPRTree(max_entries=max_entries)
    for object_id in range(n):
        tree.insert(
            object_id,
            positions[object_id, 0],
            positions[object_id, 1],
            velocities[object_id, 0],
            velocities[object_id, 1],
            now=0.0,
        )
    return tree, positions, velocities


class TestConstruction:
    def test_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            TPRTree(horizon=0.0)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TPRTree(max_entries=2)

    def test_empty(self):
        tree = TPRTree()
        assert len(tree) == 0
        assert tree.height == 1


class TestInsertAndQuery:
    def test_duplicate_id_rejected(self):
        tree = TPRTree()
        tree.insert(0, 0.5, 0.5, 0.0, 0.0, 0.0)
        with pytest.raises(IndexStateError):
            tree.insert(0, 0.1, 0.1, 0.0, 0.0, 0.0)

    def test_structure_valid_after_bulk_inserts(self):
        tree, _, _ = loaded_tree()
        tree.validate(0.0)
        tree.validate(5.0)
        assert tree.height > 1

    @pytest.mark.parametrize("tq", [0.0, 1.0, 5.0, 10.0, 25.0])
    def test_predictive_knn_matches_extrapolation(self, tq):
        """k-NN at a future time equals brute force on the extrapolated
        world — the TPR-tree's defining capability."""
        tree, positions, velocities = loaded_tree()
        future = positions + velocities * tq
        got = tree.knn(0.5, 0.5, 10, tq).neighbors()
        want = brute_force_knn(future, 0.5, 0.5, 10)
        assert_same_distances(got, want, tol=1e-9)

    def test_knn_various_query_points(self):
        tree, positions, velocities = loaded_tree(seed=2)
        future = positions + velocities * 3.0
        for qx, qy in [(0.0, 0.0), (0.9, 0.1), (0.5, 0.99)]:
            got = tree.knn(qx, qy, 5, 3.0).neighbors()
            want = brute_force_knn(future, qx, qy, 5)
            assert_same_distances(got, want, tol=1e-9)

    def test_k_too_large(self):
        tree = TPRTree()
        tree.insert(0, 0.5, 0.5, 0.0, 0.0, 0.0)
        with pytest.raises(NotEnoughObjectsError):
            tree.knn(0.5, 0.5, 2, 0.0)

    def test_position_at(self):
        tree = TPRTree()
        tree.insert(7, 0.5, 0.5, 0.01, -0.02, now=2.0)
        x, y = tree.position_at(7, 2.0)
        assert (x, y) == pytest.approx((0.5, 0.5))
        x, y = tree.position_at(7, 4.0)
        assert (x, y) == pytest.approx((0.52, 0.46))
        assert tree.velocity_of(7) == pytest.approx((0.01, -0.02))


class TestDeleteAndUpdate:
    def test_delete_missing(self):
        with pytest.raises(IndexStateError):
            TPRTree().delete(3)

    def test_delete_many(self):
        tree, _, _ = loaded_tree(n=200)
        for object_id in range(0, 200, 2):
            tree.delete(object_id)
        assert len(tree) == 100
        tree.validate(0.0)
        tree.validate(4.0)

    def test_update_changes_trajectory(self):
        tree, positions, velocities = loaded_tree(n=100, seed=3)
        tree.update(0, 0.9, 0.9, 0.0, 0.0, now=5.0)
        assert tree.position_at(0, 5.0) == pytest.approx((0.9, 0.9))
        assert tree.position_at(0, 10.0) == pytest.approx((0.9, 0.9))
        tree.validate(5.0)

    def test_updates_keep_queries_exact(self):
        tree, positions, velocities = loaded_tree(n=150, seed=4)
        rng = np.random.default_rng(5)
        now = 2.0
        current = positions + velocities * now
        new_velocities = rng.uniform(-0.01, 0.01, velocities.shape)
        for object_id in range(150):
            tree.update(
                object_id,
                current[object_id, 0],
                current[object_id, 1],
                new_velocities[object_id, 0],
                new_velocities[object_id, 1],
                now,
            )
        tree.validate(now)
        future = current + new_velocities * 3.0
        got = tree.knn(0.3, 0.7, 8, now + 3.0).neighbors()
        want = brute_force_knn(future, 0.3, 0.7, 8)
        assert_same_distances(got, want, tol=1e-9)


class TestTPREngine:
    def test_exact_under_linear_motion(self):
        objects = make_dataset("uniform", 800, seed=6)
        queries = make_queries(8, seed=7)
        engine = TPREngine(5, queries)
        system = MonitoringSystem(engine)
        motion = LinearMotionModel(800, vmax=0.005, change_probability=0.0, seed=8)
        current = objects
        system.load(current)
        for _ in range(4):
            current = motion.step(current)
            answers = system.tick(current)
            for qa in answers:
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(current, qx, qy, 5)
                assert_same_distances(qa.neighbors, want, tol=1e-9)

    def test_exact_under_free_motion(self):
        from repro.motion import RandomWalkModel

        objects = make_dataset("skewed", 600, seed=9)
        queries = make_queries(6, seed=10)
        system = MonitoringSystem(TPREngine(4, queries))
        motion = RandomWalkModel(vmax=0.01, seed=11)
        current = objects
        system.load(current)
        for _ in range(3):
            current = motion.step(current)
            answers = system.tick(current)
            for qa in answers:
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(current, qx, qy, 4)
                assert_same_distances(qa.neighbors, want, tol=1e-9)

    def test_degeneration_metric(self):
        """Constant velocities -> few updates; per-cycle velocity changes
        -> an update per object per cycle (the §5.4 degeneration)."""
        objects = make_dataset("uniform", 400, seed=12)
        queries = make_queries(3, seed=13)

        def updates_for(change_probability):
            engine = TPREngine(3, queries)
            system = MonitoringSystem(engine)
            motion = LinearMotionModel(
                400, vmax=0.003, change_probability=change_probability, seed=14
            )
            current = objects.copy()
            system.load(current)
            counts = []
            for _ in range(4):
                current = motion.step(current)
                system.tick(current)
                counts.append(engine.last_update_count)
            # Skip the first post-load cycle (velocity bootstrap).
            return counts[1:]

        stable = updates_for(0.0)
        volatile = updates_for(1.0)
        assert max(stable) < 400 * 0.15
        assert all(count == 400 for count in volatile)

    def test_population_change_reloads(self):
        queries = make_queries(3, seed=15)
        system = MonitoringSystem(TPREngine(2, queries))
        system.load(make_dataset("uniform", 100, seed=16))
        grown = make_dataset("uniform", 150, seed=17)
        answers = system.tick(grown)
        for qa in answers:
            qx, qy = queries[qa.query_id]
            want = brute_force_knn(grown, qx, qy, 2)
            assert_same_distances(qa.neighbors, want, tol=1e-9)
