"""Unit tests for the time-parameterized MBR arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tprtree.node import TPRNode


def node_with(entries):
    node = TPRNode(leaf=True)
    for x0, y0, vx, vy in entries:
        node.include_entry(x0, y0, vx, vy)
    return node


class TestBoundsAt:
    def test_static_entries(self):
        node = node_with([(0.1, 0.2, 0.0, 0.0), (0.5, 0.8, 0.0, 0.0)])
        assert node.bounds_at(0.0) == (0.1, 0.2, 0.5, 0.8)
        assert node.bounds_at(100.0) == (0.1, 0.2, 0.5, 0.8)

    def test_moving_bounds_expand(self):
        node = node_with([(0.5, 0.5, -0.01, 0.0), (0.5, 0.5, 0.02, 0.0)])
        xlo, ylo, xhi, yhi = node.bounds_at(10.0)
        assert xlo == pytest.approx(0.4)
        assert xhi == pytest.approx(0.7)
        assert (ylo, yhi) == (0.5, 0.5)

    def test_never_inverts_for_future_times(self):
        rng = np.random.default_rng(1)
        node = node_with(rng.uniform(-1, 1, (20, 4)).tolist())
        for t in (0.0, 0.5, 3.0, 50.0):
            xlo, ylo, xhi, yhi = node.bounds_at(t)
            assert xlo <= xhi
            assert ylo <= yhi

    def test_contains_entries_forever(self):
        rng = np.random.default_rng(2)
        entries = rng.uniform(-0.5, 0.5, (15, 4)).tolist()
        node = node_with(entries)
        for t in (0.0, 1.0, 7.5, 30.0):
            for x0, y0, vx, vy in entries:
                assert node.contains_entry_at(x0, y0, vx, vy, t)


class TestIntegratedArea:
    def test_matches_numeric_integration(self):
        rng = np.random.default_rng(3)
        node = node_with(rng.uniform(-0.3, 0.3, (10, 4)).tolist())
        t0, t1 = 1.0, 6.0
        ts = np.linspace(t0, t1, 20001)
        numeric = float(np.trapezoid([node.area_at(t) for t in ts], ts))
        assert node.integrated_area(t0, t1) == pytest.approx(numeric, rel=1e-6)

    def test_degenerate_interval(self):
        node = node_with([(0.0, 0.0, 0.1, 0.1), (0.2, 0.3, -0.1, 0.0)])
        assert node.integrated_area(2.0, 2.0) == node.area_at(2.0)

    def test_growing_box_has_growing_integral(self):
        node = node_with([(0.5, 0.5, -0.1, -0.1), (0.5, 0.5, 0.1, 0.1)])
        early = node.integrated_area(0.0, 1.0)
        late = node.integrated_area(5.0, 6.0)
        assert late > early


class TestMinDist:
    def test_inside_is_zero(self):
        node = node_with([(0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 0.0, 0.0)])
        assert node.min_dist2_at(0.5, 0.5, 0.0) == 0.0

    def test_moving_box_approaches_point(self):
        # Box starts at [0, 0.1]^2 and moves +0.1/cycle toward (0.9, 0.05).
        node = node_with([(0.0, 0.0, 0.1, 0.0), (0.1, 0.1, 0.1, 0.0)])
        d_now = node.min_dist2_at(0.9, 0.05, 0.0)
        d_later = node.min_dist2_at(0.9, 0.05, 5.0)
        assert d_later < d_now
        # At t=8 the box spans x in [0.8, 0.9] and reaches the point.
        assert node.min_dist2_at(0.9, 0.05, 8.0) == pytest.approx(0.0)
