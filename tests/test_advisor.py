"""Tests for the method advisor."""

from __future__ import annotations

import pytest

from repro.core.advisor import (
    Recommendation,
    WorkloadProfile,
    calibrate,
    recommend,
)
from repro.errors import ConfigurationError


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(n_objects=0, n_queries=10)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(n_objects=10, n_queries=0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(n_objects=10, n_queries=10, vmax=-1.0)


class TestRecommend:
    def test_few_queries_picks_query_indexing(self):
        profile = WorkloadProfile(n_objects=100_000, n_queries=100)
        rec = recommend(profile)
        assert rec.method == "query_indexing"
        assert any("Query-Indexing" in r for r in rec.reasons)

    def test_skewed_many_queries_picks_hierarchical(self):
        profile = WorkloadProfile(
            n_objects=50_000, n_queries=50_000, skewness=6.0
        )
        rec = recommend(profile)
        assert rec.method == "hierarchical"
        assert rec.maintenance == "rebuild"

    def test_uniform_many_queries_picks_one_level(self):
        profile = WorkloadProfile(
            n_objects=50_000, n_queries=50_000, skewness=0.1, vmax=0.02
        )
        rec = recommend(profile)
        assert rec.method in ("object_overhaul", "object_incremental")

    def test_slow_objects_get_incremental(self):
        profile = WorkloadProfile(
            n_objects=10_000, n_queries=100_000, skewness=0.0, vmax=0.0001
        )
        rec = recommend(profile)
        assert rec.method == "object_incremental"
        assert rec.maintenance == "incremental"

    def test_fast_objects_get_rebuild(self):
        profile = WorkloadProfile(
            n_objects=10_000, n_queries=100_000, skewness=0.0, vmax=0.05
        )
        rec = recommend(profile)
        assert rec.method == "object_overhaul"
        assert rec.maintenance == "rebuild"

    def test_tpr_warning_included(self):
        profile = WorkloadProfile(
            n_objects=10_000,
            n_queries=100_000,
            skewness=0.0,
            velocity_changes_every_cycle=True,
        )
        rec = recommend(profile)
        assert any("TPR" in r for r in rec.reasons)

    def test_summary_renders(self):
        rec = Recommendation("query_indexing", "incremental", "scan", ["why"])
        text = rec.summary()
        assert "query_indexing" in text
        assert "why" in text

    def test_recommended_methods_resolve_in_registry(self):
        from repro.engines.registry import resolve_preset

        profiles = [
            WorkloadProfile(100_000, 100),
            WorkloadProfile(50_000, 50_000, skewness=6.0),
            WorkloadProfile(50_000, 50_000, skewness=0.0, vmax=0.02),
            WorkloadProfile(10_000, 100_000, skewness=0.0, vmax=0.0001),
        ]
        for profile in profiles:
            rec = recommend(profile)
            # Method plus regime must build through the unified factory.
            method, options = resolve_preset(
                rec.method, {"maintenance": rec.maintenance}
            )
            assert options["maintenance"] == rec.maintenance


class TestCalibrate:
    def test_fit_produces_positive_constants(self):
        cost = calibrate(n_objects=2_000, n_queries=50)
        assert cost.a0 > 0.0
        assert cost.a1 >= 0.0
        assert cost.a2 >= 0.0

    def test_prediction_in_right_ballpark(self):
        """The fitted model predicts a measured workload within 5x."""
        import time

        from repro.core.monitor import MonitoringSystem
        from repro.core.cost_model import (
            expected_knn_radius_uniform,
            optimal_cell_size,
        )
        from repro.motion import RandomWalkModel, make_dataset, make_queries

        cost = calibrate(n_objects=2_000, n_queries=50)
        n, nq, k = 6_000, 100, 10
        predicted = cost.total(
            expected_knn_radius_uniform(k, n), optimal_cell_size(n), n, nq
        )
        positions = make_dataset("uniform", n, seed=1)
        queries = make_queries(nq, seed=2)
        system = MonitoringSystem.object_indexing(k, queries)
        motion = RandomWalkModel(vmax=0.005, seed=3)
        system.load(positions)
        for _ in range(3):
            positions = motion.step(positions)
            system.tick(positions)
        measured = system.mean_cycle_time()
        assert predicted == pytest.approx(measured, rel=4.0)
