"""Unit tests for the session API surface (repro.service).

The churn *equivalence* guarantees live in test_churn.py; this file pins
the lifecycle contract itself: handle stability, admission batching and
cancel semantics, explicit backpressure, error paths, the streaming
position interface, and the ``service.*`` telemetry.
"""

import numpy as np
import pytest

from repro.core.config import DeltaGridConfig
from repro.errors import ConfigurationError, NotEnoughObjectsError
from repro.obs.registry import MetricsRegistry
from repro.service import (
    AdmissionDeferred,
    MonitoringSession,
    QueryHandle,
    SessionAnswer,
)


def make_session(method="fast_grid", k=2, **kw):
    return MonitoringSession(method, k=k, **kw)


def seed(session, n=10, rng=None):
    rng = rng or np.random.default_rng(0)
    for oid in range(n):
        session.join_object(oid, rng.random(2))


class TestLifecycleBasics:
    def test_register_returns_stable_handles(self):
        with make_session() as s:
            seed(s)
            h1 = s.register_query((0.2, 0.2))
            h2 = s.register_query((0.8, 0.8))
            assert isinstance(h1, QueryHandle) and h1 != h2
            out = s.tick()
            assert set(out) == {h1, h2}
            # Drop h1; h2 keeps its handle across the row remap.
            s.drop_query(h1)
            out = s.tick()
            assert set(out) == {h2}
            assert s.handles() == [h2]

    def test_answers_are_external_ids_sorted_by_distance(self):
        with make_session(k=3) as s:
            # External ids deliberately far from dense rows.
            s.join_object(500, (0.10, 0.5))
            s.join_object(900, (0.20, 0.5))
            s.join_object(700, (0.30, 0.5))
            s.join_object(100, (0.90, 0.5))
            h = s.register_query((0.0, 0.5))
            ans = s.tick()[h]
            assert isinstance(ans, SessionAnswer)
            assert [oid for oid, _ in ans.neighbors] == [500, 900, 700]
            dists = [d for _, d in ans.neighbors]
            assert dists == sorted(dists)

    def test_queries_admitted_at_tick_not_at_call(self):
        with make_session() as s:
            seed(s)
            s.tick()  # no queries yet
            h = s.register_query((0.5, 0.5))
            assert s.n_active_queries == 0  # pending until the next tick
            out = s.tick()
            assert s.n_active_queries == 1 and h in out

    def test_zero_query_session_ticks(self):
        with make_session() as s:
            seed(s)
            assert s.tick() == {}

    def test_tick_requires_k_objects(self):
        with make_session(k=4) as s:
            seed(s, n=3)
            s.register_query((0.5, 0.5))
            with pytest.raises(NotEnoughObjectsError):
                s.tick()
            # Nothing was admitted: the retry path still works.
            assert s.pending_deltas == 4
            s.join_object(99, (0.4, 0.4))
            assert len(s.tick()) == 1


class TestCancelSemantics:
    def test_drop_of_pending_register_cancels(self):
        with make_session() as s:
            seed(s)
            s.tick()
            h = s.register_query((0.5, 0.5))
            s.drop_query(h)
            assert s.pending_deltas == 0
            assert h not in s.tick()

    def test_leave_of_pending_join_cancels(self):
        with make_session() as s:
            seed(s)
            s.tick()
            s.join_object(77, (0.5, 0.5))
            s.leave_object(77)
            assert s.pending_deltas == 0
            s.tick()
            assert 77 not in s.population()[0]

    def test_join_of_pending_leave_cancels_and_moves(self):
        with make_session() as s:
            seed(s)
            s.tick()
            s.leave_object(3)
            s.join_object(3, (0.9, 0.9))  # rejoin before admission
            assert s.pending_deltas == 0
            s.tick()
            ids, pos = s.population()
            row = int(np.flatnonzero(ids == 3)[0])
            assert tuple(pos[row]) == (0.9, 0.9)

    def test_duplicate_and_unknown_raise(self):
        with make_session() as s:
            seed(s, n=5)
            s.tick()
            with pytest.raises(ConfigurationError):
                s.join_object(0, (0.1, 0.1))  # already live
            s.join_object(50, (0.1, 0.1))
            with pytest.raises(ConfigurationError):
                s.join_object(50, (0.2, 0.2))  # already joining
            with pytest.raises(ConfigurationError):
                s.leave_object(999)
            s.leave_object(1)
            with pytest.raises(ConfigurationError):
                s.leave_object(1)  # already leaving
            with pytest.raises(ConfigurationError):
                s.drop_query(QueryHandle(12345))

    def test_per_query_k_rejected(self):
        with make_session(k=2) as s:
            with pytest.raises(ConfigurationError):
                s.register_query((0.5, 0.5), k=7)
            # Matching k is accepted (it is just explicit).
            assert isinstance(s.register_query((0.5, 0.5), k=2), QueryHandle)


class TestBackpressure:
    def test_overflow_returns_deferred_never_drops(self):
        reg = MetricsRegistry()
        with make_session(registry=reg, max_pending_deltas=2) as s:
            assert s.join_object(0, (0.1, 0.1)) is None
            assert s.join_object(1, (0.2, 0.2)) is None
            d = s.join_object(2, (0.3, 0.3))
            assert isinstance(d, AdmissionDeferred)
            assert (d.action, d.kind) == ("join_object", "object")
            assert (d.pending, d.limit) == (2, 2)
            r = s.register_query((0.5, 0.5))
            assert isinstance(r, AdmissionDeferred) and r.kind == "query"
            # Nothing was recorded for the deferred calls.
            s.tick()
            assert s.n_live_objects == 2 and s.n_active_queries == 0
            # The drained set accepts the retries.
            assert s.join_object(2, (0.3, 0.3)) is None
            assert isinstance(s.register_query((0.5, 0.5)), QueryHandle)
            assert reg.counter(
                "service.admission_deferred", {"kind": "object"}
            ) == 1.0
            assert reg.counter(
                "service.admission_deferred", {"kind": "query"}
            ) == 1.0

    def test_cancel_frees_admission_slot(self):
        with make_session(max_pending_deltas=1) as s:
            s.join_object(0, (0.1, 0.1))
            assert isinstance(s.join_object(1, (0.2, 0.2)), AdmissionDeferred)
            s.leave_object(0)  # cancels the pending join
            assert s.join_object(1, (0.2, 0.2)) is None

    def test_moves_are_never_capped(self):
        with make_session(max_pending_deltas=2, k=2) as s:
            seed(s, n=2)
            s.tick()
            s.join_object(100, (0.5, 0.5))  # occupies an admission slot
            for _ in range(10):
                s.move_object(0, np.random.default_rng(1).random(2))
            ids, pos = s.population()
            s.update_positions(pos)  # bulk path equally uncapped
            assert s.pending_deltas == 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            make_session(max_pending_deltas=0)

    def test_deferred_delta_readmits_exactly_once(self):
        """A deferred join retried after tick() lands exactly once: it is
        answerable, double-retry is a first-class error (the object is
        live, not silently merged), and the second tick doesn't re-apply
        it."""
        reg = MetricsRegistry()
        with make_session(registry=reg, max_pending_deltas=2, k=1) as s:
            s.join_object(0, (0.1, 0.1))
            s.join_object(1, (0.9, 0.9))
            assert isinstance(s.join_object(2, (0.5, 0.5)), AdmissionDeferred)
            h = s.register_query((0.5, 0.5))
            assert isinstance(h, AdmissionDeferred)
            s.tick()
            assert s.join_object(2, (0.5, 0.5)) is None  # retry admits
            h = s.register_query((0.5, 0.5))
            assert isinstance(h, QueryHandle)
            ans = s.tick()
            assert ans[h].neighbors == ((2, 0.0),)
            assert s.n_live_objects == 3
            # Exactly once: the object is now live, so a second retry is
            # a duplicate-join error, and further ticks keep one copy.
            with pytest.raises(ConfigurationError):
                s.join_object(2, (0.5, 0.5))
            s.tick()
            assert s.n_live_objects == 3
            assert reg.counter(
                "service.admission_deferred", {"kind": "object"}
            ) == 1.0

    def test_deferred_delta_readmits_across_worker_respawn(self):
        """Backpressure + fault tolerance: a join deferred while the
        admission set was full must re-admit exactly once even when a
        sharded stripe worker is SIGKILLed (and respawned) in between."""
        import os
        import signal

        with MonitoringSession(
            "sharded",
            k=1,
            shards=2,
            workers=2,
            oversubscribe=True,
            max_pending_deltas=2,
        ) as s:
            s.join_object(0, (0.1, 0.1))
            s.join_object(1, (0.9, 0.9))
            assert isinstance(s.join_object(2, (0.5, 0.5)), AdmissionDeferred)
            s.tick()
            os.kill(s.engine.worker_pids()[0], signal.SIGKILL)
            assert s.join_object(2, (0.5, 0.5)) is None  # retry admits
            h = s.register_query((0.5, 0.5))
            ans = s.tick()  # pool respawns the stripe, then answers
            assert ans[h].neighbors == ((2, 0.0),)
            assert s.n_live_objects == 3
            with pytest.raises(ConfigurationError):
                s.join_object(2, (0.5, 0.5))
            s.tick()
            assert s.n_live_objects == 3


class TestPositions:
    def test_move_pending_join_updates_admission_point(self):
        with make_session() as s:
            seed(s)
            s.join_object(42, (0.1, 0.1))
            s.move_object(42, (0.6, 0.6))
            s.tick()
            ids, pos = s.population()
            row = int(np.flatnonzero(ids == 42)[0])
            assert tuple(pos[row]) == (0.6, 0.6)

    def test_update_positions_by_ids(self):
        with make_session() as s:
            seed(s, n=4)
            s.tick()
            s.update_positions([(0.5, 0.5), (0.6, 0.6)], object_ids=[2, 0])
            ids, pos = s.population()
            assert tuple(pos[ids == 2][0]) == (0.5, 0.5)
            assert tuple(pos[ids == 0][0]) == (0.6, 0.6)

    def test_update_positions_validates(self):
        with make_session() as s:
            seed(s, n=4)
            s.tick()
            with pytest.raises(ConfigurationError):
                s.update_positions(np.zeros((3, 2)))  # wrong count
            with pytest.raises(ConfigurationError):
                s.update_positions(np.zeros((1, 3)))  # wrong shape
            with pytest.raises(ConfigurationError):
                s.update_positions([(0.5, 0.5)], object_ids=[999])


class TestConstruction:
    def test_typed_config_supplies_method(self):
        cfg = DeltaGridConfig(patch_threshold=0.5)
        with MonitoringSession(k=2, config=cfg) as s:
            assert s.engine.__class__.__name__ == "DeltaGridEngine"
            assert s.k == 2

    def test_dict_config_supplies_method(self):
        with MonitoringSession(
            k=2, config={"method": "fast_grid", "ncells": 16}
        ) as s:
            seed(s, n=5)
            h = s.register_query((0.5, 0.5))
            assert len(s.tick()[h].neighbors) == 2

    def test_method_required_somewhere(self):
        with pytest.raises(ConfigurationError):
            MonitoringSession(k=2)

    def test_preset_names_accepted(self):
        with MonitoringSession("object_incremental", k=2) as s:
            assert s.engine.__class__.__name__ == "ObjectIndexingEngine"


class TestTelemetry:
    def test_service_counters_and_gauges(self):
        reg = MetricsRegistry()
        with make_session(registry=reg) as s:
            seed(s, n=6)
            h = s.register_query((0.5, 0.5))
            s.tick()
            s.tick()  # churn-free cycle
            s.drop_query(h)
            s.leave_object(0)
            s.tick()
            c = reg.counter_values()
            assert c["service.cycles"] == 3.0
            assert c["service.churn_cycles"] == 2.0
            assert c["service.objects_joined"] == 6.0
            assert c["service.objects_left"] == 1.0
            assert c["service.queries_registered"] == 1.0
            assert c["service.queries_dropped"] == 1.0
            g = reg.gauge_values()
            assert g["service.live_objects"] == 5.0
            assert g["service.active_queries"] == 0.0
            assert g["service.pending_deltas"] == 0.0

    def test_incremental_engines_avoid_churn_rebuilds(self):
        """The point of the delta hooks: member-mode engines absorb churn
        without a pipeline-level rebuild cycle."""
        reg = MetricsRegistry()
        with make_session("delta_grid", registry=reg) as s:
            seed(s, n=20)
            s.register_query((0.5, 0.5))
            s.tick()
            s.join_object(100, (0.3, 0.3))
            s.leave_object(0)
            s.tick()
            assert reg.counter("cycle.churn_rebuilds") == 0.0

    def test_fallback_engines_count_churn_rebuilds(self):
        reg = MetricsRegistry()
        with make_session("object_indexing", registry=reg) as s:
            seed(s, n=20)
            s.register_query((0.5, 0.5))
            s.tick()
            s.join_object(100, (0.3, 0.3))
            s.tick()
            assert reg.counter("cycle.churn_rebuilds") == 1.0


class TestResourceManagement:
    def test_close_is_idempotent(self):
        s = make_session()
        s.close()
        s.close()

    def test_context_manager_closes_worker_pool(self):
        with MonitoringSession("sharded", k=2, shards=2, workers=2) as s:
            seed(s, n=8)
            h = s.register_query((0.5, 0.5))
            assert len(s.tick()[h].neighbors) == 2
            pids = s.engine.worker_pids()
        import os, errno

        for pid in pids:
            try:
                os.kill(pid, 0)
                alive = True
            except OSError as exc:
                alive = exc.errno == errno.EPERM  # exists, other owner
            assert not alive, f"worker {pid} survived close()"
