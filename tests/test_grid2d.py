"""Unit tests for repro.grid.grid2d."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, IndexStateError
from repro.grid.geometry import CellRect
from repro.grid.grid2d import Grid2D, resolve_grid_size


class TestResolveGridSize:
    def test_ncells_passthrough(self):
        assert resolve_grid_size(ncells=16) == 16

    def test_delta(self):
        assert resolve_grid_size(delta=0.1) == 10

    def test_delta_rounding(self):
        assert resolve_grid_size(delta=0.33) == 3

    def test_n_objects_sqrt(self):
        assert resolve_grid_size(n_objects=10_000) == 100

    def test_n_objects_small(self):
        assert resolve_grid_size(n_objects=1) == 1

    def test_n_objects_zero(self):
        assert resolve_grid_size(n_objects=0) == 1

    def test_requires_exactly_one(self):
        with pytest.raises(ConfigurationError):
            resolve_grid_size()
        with pytest.raises(ConfigurationError):
            resolve_grid_size(ncells=4, delta=0.25)

    def test_bad_delta(self):
        with pytest.raises(ConfigurationError):
            resolve_grid_size(delta=0.0)
        with pytest.raises(ConfigurationError):
            resolve_grid_size(delta=1.5)

    def test_negative_objects(self):
        with pytest.raises(ConfigurationError):
            resolve_grid_size(n_objects=-1)


class TestGrid2D:
    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Grid2D(0)

    def test_delta(self):
        assert Grid2D(8).delta == pytest.approx(0.125)

    def test_locate(self):
        grid = Grid2D(10)
        assert grid.locate(0.55, 0.21) == (5, 2)

    def test_insert_and_bucket(self):
        grid = Grid2D(4)
        grid.insert(7, 1, 2)
        grid.insert(9, 1, 2)
        assert grid.bucket(1, 2) == [7, 9]

    def test_bucket_at(self):
        grid = Grid2D(4)
        grid.insert(3, 2, 1)
        assert grid.bucket_at(0.6, 0.3) == [3]

    def test_remove(self):
        grid = Grid2D(4)
        grid.insert(7, 1, 2)
        grid.remove(7, 1, 2)
        assert grid.bucket(1, 2) == []

    def test_remove_missing_raises(self):
        grid = Grid2D(4)
        with pytest.raises(IndexStateError):
            grid.remove(7, 1, 2)

    def test_clear(self):
        grid = Grid2D(4)
        grid.insert(1, 0, 0)
        grid.insert(2, 3, 3)
        grid.clear()
        assert grid.total_ids() == 0

    def test_total_ids(self):
        grid = Grid2D(4)
        for ident in range(5):
            grid.insert(ident, ident % 4, 0)
        assert grid.total_ids() == 5


class TestBulkLoad:
    def test_ids_are_row_indices(self):
        grid = Grid2D(2)
        xs = np.asarray([0.1, 0.9, 0.1])
        ys = np.asarray([0.1, 0.9, 0.9])
        grid.bulk_load_points(xs, ys)
        assert grid.bucket(0, 0) == [0]
        assert grid.bucket(1, 1) == [1]
        assert grid.bucket(0, 1) == [2]

    def test_total_matches_population(self, rng):
        grid = Grid2D(13)
        points = rng.random((500, 2))
        grid.bulk_load_points(points[:, 0], points[:, 1])
        assert grid.total_ids() == 500

    def test_reload_replaces(self, rng):
        grid = Grid2D(5)
        points = rng.random((100, 2))
        grid.bulk_load_points(points[:, 0], points[:, 1])
        grid.bulk_load_points(points[:50, 0], points[:50, 1])
        assert grid.total_ids() == 50

    def test_empty(self):
        grid = Grid2D(5)
        grid.bulk_load_points(np.empty(0), np.empty(0))
        assert grid.total_ids() == 0

    def test_boundary_points_clamped(self):
        grid = Grid2D(4)
        grid.bulk_load_points(np.asarray([1.0]), np.asarray([1.0]))
        assert grid.bucket(3, 3) == [0]

    def test_every_point_in_its_cell(self, rng):
        grid = Grid2D(9)
        points = rng.random((300, 2))
        grid.bulk_load_points(points[:, 0], points[:, 1])
        for j in range(9):
            for i in range(9):
                for ident in grid.bucket(i, j):
                    assert grid.locate(points[ident, 0], points[ident, 1]) == (i, j)


class TestRectQueries:
    def _loaded(self):
        grid = Grid2D(4)
        # One object per cell, ID = flat index.
        xs, ys = [], []
        for j in range(4):
            for i in range(4):
                xs.append((i + 0.5) / 4)
                ys.append((j + 0.5) / 4)
        grid.bulk_load_points(np.asarray(xs), np.asarray(ys))
        return grid

    def test_count_in_rect(self):
        grid = self._loaded()
        assert grid.count_in_rect(CellRect(0, 0, 1, 1)) == 4
        assert grid.count_in_rect(CellRect(0, 0, 3, 3)) == 16
        assert grid.count_in_rect(CellRect(2, 2, 2, 2)) == 1

    def test_ids_in_rect(self):
        grid = self._loaded()
        assert sorted(grid.ids_in_rect(CellRect(0, 0, 1, 0))) == [0, 1]

    def test_ids_in_cells(self):
        grid = self._loaded()
        assert sorted(grid.ids_in_cells([(0, 0), (3, 3)])) == [0, 15]

    def test_occupancy(self):
        grid = self._loaded()
        assert grid.occupancy() == [1] * 16
