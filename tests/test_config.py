"""MethodConfig registry and the unified MonitoringSystem.create()."""

import numpy as np
import pytest

from repro import METHOD_CONFIGS, MethodConfig, MonitoringSystem
from repro.core.config import (
    FastGridConfig,
    HierarchicalConfig,
    ObjectIndexingConfig,
    RTreeConfig,
    ShardedConfig,
    make_engine,
    resolve_config,
)
from repro.errors import ConfigurationError


QUERIES = np.array([[0.25, 0.25], [0.75, 0.75]])


class TestRegistry:
    def test_every_method_has_a_config_class(self):
        expected = {
            "object_indexing", "query_indexing", "hierarchical", "rtree",
            "brute_force", "fast_grid", "delta_grid", "tpr", "sharded",
        }
        assert set(METHOD_CONFIGS) == expected
        for name, cls in METHOD_CONFIGS.items():
            assert issubclass(cls, MethodConfig)
            assert cls.method == name

    def test_configs_are_frozen(self):
        config = ObjectIndexingConfig()
        with pytest.raises(Exception):
            config.maintenance = "incremental"

    def test_from_kwargs_rejects_unknown_naming_valid_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ObjectIndexingConfig.from_kwargs(ncell=64)
        message = str(excinfo.value)
        assert "'ncell'" in message
        for field in ("maintenance", "answering", "ncells", "delta"):
            assert field in message

    def test_merged_applies_overrides(self):
        config = ShardedConfig(workers=4).merged(shards=8)
        assert (config.workers, config.shards) == (4, 8)
        with pytest.raises(ConfigurationError):
            config.merged(worker=2)

    def test_resolve_config_paths(self):
        assert resolve_config("rtree").max_entries == 32
        assert resolve_config("rtree", None, {"max_entries": 8}).max_entries == 8
        base = RTreeConfig(maintenance="str_bulk")
        merged = resolve_config("rtree", base, {"max_entries": 16})
        assert (merged.maintenance, merged.max_entries) == ("str_bulk", 16)
        with pytest.raises(ConfigurationError):
            resolve_config("nope")
        with pytest.raises(ConfigurationError):
            resolve_config("rtree", FastGridConfig(), None)


class TestDictRoundTrip:
    """Satellite: config blocks round-trip through plain dicts so bench
    presets, CLI args, and the session layer share one validated path."""

    def test_every_method_round_trips(self):
        for name, cls in METHOD_CONFIGS.items():
            config = cls()
            data = config.to_dict()
            assert data["method"] == name
            assert MethodConfig.from_dict(data) == config
            assert cls.from_dict(data) == config

    def test_round_trip_preserves_overrides(self):
        config = ShardedConfig(workers=4, shards=8, seed_slack=0.25)
        clone = MethodConfig.from_dict(config.to_dict())
        assert clone == config and isinstance(clone, ShardedConfig)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError) as excinfo:
            MethodConfig.from_dict({"method": "fast_grid", "ncell": 64})
        assert "'ncell'" in str(excinfo.value)

    def test_from_dict_requires_method_on_base(self):
        with pytest.raises(ConfigurationError):
            MethodConfig.from_dict({"ncells": 64})
        with pytest.raises(ConfigurationError):
            MethodConfig.from_dict({"method": "nope"})

    def test_from_dict_missing_method_lists_every_known_method(self):
        with pytest.raises(ConfigurationError) as excinfo:
            MethodConfig.from_dict({"ncells": 64})
        message = str(excinfo.value)
        assert "'method'" in message
        for name in METHOD_CONFIGS:
            assert name in message

    def test_from_dict_unknown_method_lists_every_known_method(self):
        with pytest.raises(ConfigurationError) as excinfo:
            MethodConfig.from_dict({"method": "fast_gird"})
        message = str(excinfo.value)
        assert "'fast_gird'" in message
        for name in METHOD_CONFIGS:
            assert name in message

    def test_subclass_rejects_mismatched_method(self):
        with pytest.raises(ConfigurationError) as excinfo:
            FastGridConfig.from_dict({"method": "rtree"})
        message = str(excinfo.value)
        assert "'rtree'" in message and "'fast_grid'" in message

    def test_resolve_config_accepts_mapping(self):
        config = resolve_config("sharded", {"method": "sharded", "workers": 2})
        assert isinstance(config, ShardedConfig) and config.workers == 2
        with pytest.raises(ConfigurationError):
            resolve_config("sharded", {"method": "rtree"})

    def test_create_accepts_dict_config(self):
        system = MonitoringSystem.create(
            "fast_grid", 2, QUERIES, config={"method": "fast_grid", "ncells": 16}
        )
        assert system.engine._ncells == 16


class TestCreate:
    @pytest.mark.parametrize(
        "method,engine_name,options",
        [
            ("object_indexing", "object-indexing/rebuild/overhaul", {}),
            ("query_indexing", "query-indexing/incremental", {}),
            ("hierarchical", "hierarchical/incremental/incremental", {}),
            ("rtree", "rtree/overhaul", {}),
            ("brute_force", "brute-force", {}),
            ("fast_grid", "fast-grid", {}),
            ("delta_grid", "delta-grid", {}),
            ("tpr", "tprtree/predictive", {}),
            # oversubscribe makes the effective worker count (and so the
            # engine name) independent of the CI box's core count.
            ("sharded", "sharded/2w2s", {"oversubscribe": True}),
        ],
    )
    def test_create_builds_every_method(self, method, engine_name, options):
        system = MonitoringSystem.create(method, 2, QUERIES, **options)
        try:
            assert system.engine.name == engine_name
        finally:
            system.close()

    def test_create_unknown_option_names_valid_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            MonitoringSystem.create("sharded", 2, QUERIES, shardz=3)
        assert "'shardz'" in str(excinfo.value)
        assert "workers" in str(excinfo.value)

    def test_create_with_config_block_and_override(self):
        system = MonitoringSystem.create(
            "sharded", 2, QUERIES,
            config=ShardedConfig(workers=0, shards=3), seed_slack=0.1,
        )
        with system:
            engine = system.engine
            assert (engine.workers, engine.n_shards, engine.seed_slack) == (0, 3, 0.1)

    def test_factories_are_thin_delegates(self):
        system = MonitoringSystem.hierarchical(
            2, QUERIES, maintenance="rebuild", delta0=0.2
        )
        assert system.engine.name == "hierarchical/rebuild/incremental"
        assert system.engine.index.delta0 == 0.2

    def test_factories_reject_positional_options(self):
        with pytest.raises(TypeError):
            MonitoringSystem.object_indexing(2, QUERIES, "incremental")

    @pytest.mark.parametrize(
        "factory,bad_kwarg",
        [
            ("object_indexing", {"ncell": 10}),
            ("query_indexing", {"cells": 10}),
            ("hierarchical", {"delta": 0.1}),
            ("rtree", {"max_entry": 8}),
            ("fast_grid", {"workers": 2}),
            ("sharded", {"ncells": 32}),
        ],
    )
    def test_factories_reject_unknown_kwargs(self, factory, bad_kwarg):
        with pytest.raises(ConfigurationError):
            getattr(MonitoringSystem, factory)(2, QUERIES, **bad_kwarg)

    def test_engine_value_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            MonitoringSystem.create("rtree", 2, QUERIES, maintenance="nope")


class TestBenchResolution:
    def test_bench_presets_resolve_through_registry(self):
        from repro.bench.runner import BENCH_PRESETS, METHOD_FACTORIES
        from repro.engines.registry import build_system

        for name, (method, preset) in BENCH_PRESETS.items():
            assert method in METHOD_CONFIGS
            # preset option names must be valid for the method
            METHOD_CONFIGS[method].from_kwargs(**preset)
        assert set(METHOD_FACTORIES) == set(BENCH_PRESETS)
        system = build_system("object_overhaul", 2, QUERIES)
        assert system.engine.name == "object-indexing/rebuild/overhaul"

    def test_build_system_accepts_registry_names_and_overrides(self):
        from repro.engines.registry import build_system

        system = build_system("sharded", 2, QUERIES, workers=0, shards=2)
        with system:
            assert system.engine.name == "sharded/0w2s"
        with pytest.raises(ConfigurationError):
            build_system("object_overhaul", 2, QUERIES, ncell=64)
        with pytest.raises(ConfigurationError):
            build_system("nope", 2, QUERIES)

    def test_method_factories_mapping_protocol(self):
        from repro.bench.runner import METHOD_FACTORIES

        assert "fast_grid" in METHOD_FACTORIES
        assert len(METHOD_FACTORIES) == len(list(iter(METHOD_FACTORIES)))
        factory = METHOD_FACTORIES["brute_force"]
        assert factory(2, QUERIES).engine.name == "brute-force"
        with pytest.raises(KeyError):
            METHOD_FACTORIES["nope"]
