"""Tests for continuous range-query monitoring (Kalashnikov et al. baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.range_monitor import (
    CircleRegion,
    RangeMonitor,
    RectRegion,
    brute_force_range,
)
from repro.errors import ConfigurationError
from repro.motion import RandomWalkModel, make_dataset


class TestRegions:
    def test_rect_contains(self):
        region = RectRegion(0.2, 0.2, 0.6, 0.4)
        assert region.contains(0.3, 0.3)
        assert region.contains(0.2, 0.2)  # boundary inclusive
        assert not region.contains(0.7, 0.3)
        assert not region.contains(0.3, 0.5)

    def test_rect_degenerate(self):
        with pytest.raises(ConfigurationError):
            RectRegion(0.5, 0.5, 0.4, 0.6)

    def test_circle_contains(self):
        region = CircleRegion(0.5, 0.5, 0.1)
        assert region.contains(0.5, 0.5)
        assert region.contains(0.5, 0.6)  # boundary inclusive
        assert not region.contains(0.5, 0.61)

    def test_circle_negative_radius(self):
        with pytest.raises(ConfigurationError):
            CircleRegion(0.5, 0.5, -0.1)

    def test_point_rect_is_valid(self):
        region = RectRegion(0.5, 0.5, 0.5, 0.5)
        assert region.contains(0.5, 0.5)


class TestRangeMonitor:
    def test_requires_regions(self):
        with pytest.raises(ConfigurationError):
            RangeMonitor([])

    @pytest.mark.parametrize("dataset", ["uniform", "skewed"])
    def test_matches_brute(self, dataset):
        positions = make_dataset(dataset, 1000, seed=1)
        regions = [
            RectRegion(0.1, 0.1, 0.3, 0.4),
            CircleRegion(0.5, 0.5, 0.15),
            RectRegion(0.0, 0.0, 1.0, 1.0),
            CircleRegion(0.95, 0.95, 0.02),
        ]
        monitor = RangeMonitor(regions)
        got = monitor.tick(positions)
        want = brute_force_range(positions, regions)
        assert [sorted(g) for g in got] == want

    def test_cycles_stay_exact(self):
        positions = make_dataset("uniform", 500, seed=2)
        regions = [RectRegion(0.4, 0.4, 0.6, 0.6), CircleRegion(0.2, 0.8, 0.1)]
        monitor = RangeMonitor(regions)
        motion = RandomWalkModel(vmax=0.02, seed=3)
        for _ in range(5):
            positions = motion.step(positions)
            got = monitor.tick(positions)
            want = brute_force_range(positions, regions)
            assert [sorted(g) for g in got] == want

    def test_empty_region(self):
        positions = make_dataset("uniform", 100, seed=4)
        monitor = RangeMonitor([CircleRegion(0.5, 0.5, 0.0)])
        answers = monitor.tick(positions)
        assert answers == [[]]

    def test_whole_region(self):
        positions = make_dataset("uniform", 100, seed=5)
        monitor = RangeMonitor([RectRegion(0.0, 0.0, 1.0, 1.0)])
        assert sorted(monitor.tick(positions)[0]) == list(range(100))

    def test_region_beyond_unit_square_clamped(self):
        positions = make_dataset("uniform", 100, seed=6)
        monitor = RangeMonitor([RectRegion(-1.0, -1.0, 2.0, 2.0)])
        assert sorted(monitor.tick(positions)[0]) == list(range(100))

    def test_custom_grid_size(self):
        positions = make_dataset("uniform", 300, seed=7)
        regions = [CircleRegion(0.3, 0.3, 0.2)]
        coarse = RangeMonitor(regions, ncells=4).tick(positions)
        fine = RangeMonitor(regions, ncells=128).tick(positions)
        assert sorted(coarse[0]) == sorted(fine[0])
