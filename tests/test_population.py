"""Tests for the stable-key dynamic population layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.brute import brute_force_knn
from repro.core.monitor import MonitoringSystem
from repro.core.population import DynamicPopulation
from repro.errors import ConfigurationError, OutOfRegionError
from repro.motion import make_queries
from tests.conftest import assert_same_distances


class TestMembership:
    def test_add_and_len(self):
        population = DynamicPopulation()
        population.add("car-1", 0.5, 0.5)
        population.add(42, 0.1, 0.9)
        assert len(population) == 2
        assert "car-1" in population
        assert 42 in population
        assert "bus-9" not in population

    def test_duplicate_add(self):
        population = DynamicPopulation()
        population.add("x", 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            population.add("x", 0.2, 0.2)

    def test_out_of_region(self):
        population = DynamicPopulation()
        with pytest.raises(OutOfRegionError):
            population.add("x", 1.0, 0.5)
        population.add("y", 0.5, 0.5)
        with pytest.raises(OutOfRegionError):
            population.move("y", -0.1, 0.5)

    def test_remove_swaps_last_row(self):
        population = DynamicPopulation()
        population.add("a", 0.1, 0.1)
        population.add("b", 0.2, 0.2)
        population.add("c", 0.3, 0.3)
        population.remove("a")
        assert len(population) == 2
        # "c" took row 0; positions stay attached to their keys.
        assert population.position_of("c") == (0.3, 0.3)
        assert population.position_of("b") == (0.2, 0.2)
        assert population.key_of(population.row_of("c")) == "c"

    def test_remove_missing(self):
        with pytest.raises(ConfigurationError):
            DynamicPopulation().remove("ghost")

    def test_move(self):
        population = DynamicPopulation()
        population.add("a", 0.1, 0.1)
        population.move("a", 0.8, 0.7)
        assert population.position_of("a") == (0.8, 0.7)

    def test_move_missing(self):
        with pytest.raises(ConfigurationError):
            DynamicPopulation().move("ghost", 0.5, 0.5)


class TestSnapshot:
    def test_empty(self):
        assert DynamicPopulation().snapshot().shape == (0, 2)

    def test_rows_match_keys(self):
        population = DynamicPopulation()
        for i in range(10):
            population.add(f"obj-{i}", i / 10.0, (9 - i) / 10.0)
        snapshot = population.snapshot()
        for key in population.keys():
            row = population.row_of(key)
            assert tuple(snapshot[row]) == population.position_of(key)

    def test_snapshot_is_copy(self):
        population = DynamicPopulation()
        population.add("a", 0.5, 0.5)
        snapshot = population.snapshot()
        snapshot[0, 0] = 0.9
        assert population.position_of("a") == (0.5, 0.5)


class TestMonitoringWithChurn:
    def test_answers_stay_exact_through_churn(self):
        """Objects join and leave between cycles; answers stay exact and
        are reported with stable external keys."""
        rng = np.random.default_rng(5)
        population = DynamicPopulation()
        for i in range(300):
            x, y = rng.random(2)
            population.add(f"v{i}", float(x), float(y))
        next_id = 300
        queries = make_queries(5, seed=6)
        system = MonitoringSystem.object_indexing(4, queries)
        system.load(population.snapshot())
        for _ in range(5):
            # Churn: some objects leave, new ones arrive, the rest move.
            keys = population.keys()
            leavers = rng.choice(len(keys), size=20, replace=False)
            for index in leavers:
                population.remove(keys[index])
            for _ in range(25):
                x, y = rng.random(2)
                population.add(f"v{next_id}", float(x), float(y))
                next_id += 1
            for key in population.keys():
                x, y = rng.random(2)
                population.move(key, float(x), float(y))

            snapshot = population.snapshot()
            answers = system.tick(snapshot)
            keyed = population.translate_answers(answers)
            for qa, keyed_answer in zip(answers, keyed):
                qx, qy = queries[qa.query_id]
                want = brute_force_knn(snapshot, qx, qy, 4)
                assert_same_distances(qa.neighbors, want)
                # The keyed answer mirrors the row answer through the map.
                assert keyed_answer.k == qa.k
                for (key, kd), (row, rd) in zip(
                    keyed_answer.neighbors, qa.neighbors
                ):
                    assert population.row_of(key) == row
                    assert kd == rd

    def test_keyed_answer_accessors(self):
        population = DynamicPopulation()
        population.add("near", 0.5, 0.5)
        population.add("far", 0.9, 0.9)
        queries = np.asarray([[0.5, 0.5]])
        system = MonitoringSystem.brute_force(2, queries)
        answers = system.load(population.snapshot())
        keyed = population.translate_answer(answers[0])
        assert keyed.keys() == ("near", "far")
        assert keyed.kth_dist() == answers[0].kth_dist()
        assert keyed.query_id == 0
