"""World-state plane: epoch discipline, immutability, and zero-copy.

The :class:`~repro.state.WorldStore` is the single owner of world state;
everything downstream — buffer, session, pipeline, engines, shard
workers — shares its published snapshots zero-copy.  These tests pin
down the contracts that make that safe:

* a published :class:`~repro.state.WorldSnapshot` is immutable — writing
  through it raises;
* ``publish()`` bumps the epoch monotonically, and an unchanged world
  republishes the *same* snapshot object so ``(token, epoch)`` equality
  is a bytes-identical guarantee;
* the double-buffer carry-forward keeps sparse writers correct across
  epochs while full-motion steady state syncs nothing;
* a 100-cycle mixed-churn run through the store stays bit-identical to
  a fresh-engine oracle on every registry engine, serial and workers=2
  (including one worker SIGKILL);
* a steady-state cycle performs zero full position-array copies between
  buffer -> session -> pipeline -> engine, asserted via the ``state.*``
  counters, and the shard pool skips re-serializing an unchanged epoch.
"""

import numpy as np
import pytest

from repro.core.buffer import PositionBuffer
from repro.obs.registry import MetricsRegistry
from repro.service import MonitoringSession
from repro.state import WorldSnapshot, WorldStore, as_world_snapshot
from tests.test_churn import K, _lattice, _lattice_walk, drive_churn


class TestSnapshotImmutability:
    def test_writing_through_snapshot_raises(self):
        store = WorldStore(np.array([[0.1, 0.2], [0.3, 0.4]]))
        snap = store.publish()
        with pytest.raises(ValueError):
            snap.positions[0, 0] = 0.9
        with pytest.raises(ValueError):
            np.asarray(snap)[1] = (0.5, 0.5)

    def test_buffer_snapshot_is_immutable(self):
        buf = PositionBuffer(np.array([[0.1, 0.2], [0.3, 0.4]]))
        snap = buf.snapshot()
        with pytest.raises(ValueError):
            snap[0, 0] = 0.9

    def test_snapshot_queries_are_immutable(self):
        store = WorldStore(np.array([[0.1, 0.2]]))
        store.set_queries(np.array([[0.5, 0.5]]))
        snap = store.publish()
        with pytest.raises(ValueError):
            snap.queries[0, 0] = 0.0

    def test_anonymous_shim_does_not_freeze_caller_array(self):
        raw = np.array([[0.1, 0.2], [0.3, 0.4]])
        world = as_world_snapshot(raw)
        assert world.epoch is None and not world.versioned
        with pytest.raises(ValueError):
            world.positions[0, 0] = 0.9
        raw[0, 0] = 0.9  # the caller's own array stays writable
        assert raw[0, 0] == 0.9

    def test_snapshot_passthrough(self):
        store = WorldStore(np.array([[0.1, 0.2]]))
        snap = store.publish()
        assert as_world_snapshot(snap) is snap


class TestEpochDiscipline:
    def test_publish_bumps_epoch_monotonically(self):
        store = WorldStore(capacity=8)
        epochs = []
        for i in range(5):
            store.write_row(0, 0.1 * (i + 1), 0.2)
            epochs.append(store.publish().epoch)
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == 5
        assert all(b - a == 1 for a, b in zip(epochs, epochs[1:]))

    def test_unchanged_world_republishes_same_snapshot(self):
        store = WorldStore(np.array([[0.1, 0.2]]))
        first = store.publish()
        again = store.publish()
        assert again is first
        assert (again.token, again.epoch) == (first.token, first.epoch)

    def test_tokens_distinguish_stores(self):
        a, b = WorldStore(capacity=4), WorldStore(capacity=4)
        assert a.token != b.token

    def test_old_snapshots_stay_frozen_at_their_epoch(self):
        store = WorldStore(np.array([[0.1, 0.2], [0.3, 0.4]]))
        old = store.publish()
        before = np.asarray(old).copy()
        for i in range(3):  # flip repeatedly; buffers alternate
            store.write_row(0, 0.5 + 0.1 * i, 0.5)
            store.publish()
        # The epoch the caller holds is only safe for ONE flip (its
        # buffer becomes staging on the next), which is exactly the
        # history depth any consumer keeps.  Check the single-flip case:
        store2 = WorldStore(np.array([[0.1, 0.2]]))
        held = store2.publish()
        content = np.asarray(held).copy()
        store2.write_row(0, 0.9, 0.9)
        store2.publish()  # held's buffer is now staging but unwritten rows persist
        np.testing.assert_array_equal(np.asarray(held)[1:], content[1:])
        assert old.epoch < store.epoch and before is not None

    def test_structural_realloc_preserves_held_snapshots(self):
        store = WorldStore(capacity=64)
        delta = store.admit({i: (i / 100.0, 0.5) for i in range(60)}, [],
                            member_mode=False)
        assert len(delta.joined) == 60
        held = store.publish()
        content = np.asarray(held).copy()
        # Force capacity growth: the buffer pair is retired, not reused.
        store.admit({100 + i: (0.9, 0.9) for i in range(10)}, [],
                    member_mode=False)
        store.publish()
        assert store.capacity > 64
        np.testing.assert_array_equal(np.asarray(held), content)


class TestCarryForward:
    def test_sparse_writers_match_dict_oracle(self):
        """Disjoint row subsets written across many epochs: every
        published snapshot must equal a naively-maintained oracle."""
        rng = np.random.default_rng(7)
        n = 32
        store = WorldStore(_lattice(rng, n))
        oracle = dict(enumerate(np.asarray(store.publish())[:n].copy()))
        for _ in range(50):
            rows = rng.choice(n, size=int(rng.integers(0, 6)), replace=False)
            for row in rows:
                x, y = rng.random(2)
                store.write_row(int(row), x, y)
                oracle[int(row)] = (x, y)
            snap = np.asarray(store.publish())
            for row in range(n):
                assert tuple(snap[row]) == tuple(np.asarray(oracle[row])), row

    def test_full_motion_steady_state_syncs_nothing(self):
        rng = np.random.default_rng(8)
        reg = MetricsRegistry()
        n = 20
        store = WorldStore(_lattice(rng, n), registry=reg)
        rows = np.arange(n, dtype=np.intp)
        store.write_rows(rows, _lattice(rng, n))
        store.publish()
        base = reg.counter("state.synced_rows")
        for _ in range(10):  # every row written every epoch -> O(1) flips
            store.write_rows(rows, _lattice(rng, n))
            store.publish()
        assert reg.counter("state.synced_rows") == base


class TestPacked:
    def test_packed_without_holes_is_a_view_with_epoch(self):
        store = WorldStore(np.array([[0.1, 0.2], [0.3, 0.4]]))
        snap = store.publish()
        packed = store.packed(snap)
        assert packed.epoch == snap.epoch
        assert np.shares_memory(packed.positions, snap.positions)
        assert store.full_copies == 0

    def test_packed_with_holes_is_a_counted_anonymous_gather(self):
        store = WorldStore(np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]]))
        store.admit({}, [1], member_mode=False)
        packed = store.packed(store.publish())
        assert packed.epoch is None  # new memory every call: never cacheable
        np.testing.assert_array_equal(
            np.asarray(packed), [[0.1, 0.2], [0.5, 0.6]]
        )
        assert store.full_copies == 1


@pytest.mark.parametrize("method", ["object_indexing", "fast_grid", "delta_grid"])
def test_store_churn_bit_identical_100_cycles(method):
    """100 cycles of mixed churn through the store match the fresh-engine
    oracle bit for bit (ids, order, and float64 distances)."""
    drive_churn(method, cycles=100)


def test_store_churn_bit_identical_sharded_workers_with_sigkill():
    """Same contract with workers=2, shared-memory epoch reuse, and one
    worker SIGKILLed mid-run."""
    drive_churn(
        "sharded",
        session_opts={"shards": 2, "workers": 2, "oversubscribe": True},
        baseline_opts={"shards": 2, "workers": 0},
        cycles=100,
        kill_worker_at=41,
    )


class TestZeroCopySteadyState:
    @pytest.mark.parametrize("method", ["fast_grid", "object_indexing"])
    def test_no_full_copies_per_cycle(self, method):
        """The acceptance criterion: a steady-state (no-churn) cycle does
        zero full position-array copies buffer -> session -> pipeline ->
        engine, visible in ``state.copies_per_cycle``."""
        rng = np.random.default_rng(11)
        reg = MetricsRegistry()
        with MonitoringSession(method, k=K, registry=reg) as session:
            for oid in range(40):
                session.join_object(oid, _lattice(rng, 1)[0])
            for xy in _lattice(rng, 4):
                session.register_query(xy)
            session.tick()
            synced_base = reg.counter("state.synced_rows")
            for _ in range(10):
                _, pos = session.population()
                session.update_positions(_lattice_walk(rng, pos))
                session.tick()
                assert reg.gauge("state.copies_per_cycle") == 0.0
            assert session.store.full_copies == 0
            # Full motion writes every live row every epoch, so the
            # double-buffer flip carries nothing forward either.
            assert reg.counter("state.synced_rows") == synced_base
            assert reg.gauge("state.epoch") == session.store.epoch > 0

    def test_buffer_snapshot_shares_store_memory(self):
        buf = PositionBuffer(np.array([[0.1, 0.2], [0.3, 0.4]]))
        a = buf.snapshot()
        b = buf.snapshot()
        assert np.shares_memory(a, b)
        assert buf.store.full_copies == 0


class TestShardEpochReuse:
    def test_unchanged_epoch_skips_shared_memory_write(self):
        """Ticking an unchanged world re-dispatches to workers but never
        re-serializes the snapshot: the pool keys its shared-memory
        segment on ``(store token, epoch)``."""
        rng = np.random.default_rng(13)
        reg = MetricsRegistry()
        with MonitoringSession(
            "sharded",
            k=K,
            registry=reg,
            shards=2,
            workers=2,
            oversubscribe=True,
        ) as session:
            for oid in range(20):
                session.join_object(oid, _lattice(rng, 1)[0])
            session.register_query((0.5, 0.5))
            first = session.tick()
            assert reg.counter("state.shm_skips") == 0.0
            second = session.tick()  # no churn, no motion: same epoch
            assert reg.counter("state.shm_skips") == 1.0
            for handle in first:
                assert second[handle].neighbors == first[handle].neighbors
            # Motion bumps the epoch: the next write is real again.
            _, pos = session.population()
            session.update_positions(_lattice_walk(rng, pos))
            session.tick()
            assert reg.counter("state.shm_skips") == 1.0
