"""Fleet dispatch over a road network (the paper's Illinois-style workload).

Vehicles move along the roads of a synthetic city; dispatch centers at
major intersections continuously monitor their k nearest vehicles.  Road-
constrained motion is strongly non-uniform, so this example uses the
hierarchical Object-Index (§4), the paper's recommended structure for
skewed data, and reports its adaptive memory footprint.

Run with::

    python examples/road_network_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro import MonitoringSystem, RoadNetworkModel, synthetic_road_network
from repro.motion import skewness_statistic

N_VEHICLES = 5_000
N_DISPATCH = 12
K = 8
CYCLES = 10


def main() -> None:
    network = synthetic_road_network(grid_size=25, seed=3)
    fleet = RoadNetworkModel(N_VEHICLES, vmax=0.006, network=network, seed=4)
    print(
        f"city: {network.n_nodes} intersections, {network.n_edges} road "
        f"segments; fleet: {N_VEHICLES} vehicles"
    )

    # Dispatch centers sit at the busiest intersections.
    hubs = network.major_intersections(N_DISPATCH)
    dispatch_points = network.node_positions[hubs]

    system = MonitoringSystem.hierarchical(
        k=K, queries=dispatch_points, delta0=0.1, max_cell_load=10, split_factor=3
    )
    positions = fleet.positions()
    system.load(positions)
    engine_index = system.engine.index

    for cycle in range(1, CYCLES + 1):
        positions = fleet.step()
        answers = system.tick(positions)
        if cycle in (1, CYCLES):
            index_cells, leaf_cells = engine_index.cell_counts()
            skew = skewness_statistic(positions)
            print(
                f"cycle {cycle:2d}: skew {skew:5.2f}, hierarchy depth "
                f"{engine_index.depth()}, cells {index_cells}+{leaf_cells}, "
                f"cycle time {system.last_stats.total_time * 1e3:.2f} ms"
            )

    print("\nfinal assignments:")
    for qa in answers:
        hub = int(hubs[qa.query_id])
        x, y = network.node_positions[hub]
        nearest, dist = qa.neighbors[0]
        print(
            f"  hub {hub:4d} @ ({x:.2f}, {y:.2f}): closest vehicle "
            f"#{nearest} at {dist:.4f}; {K}-th at {qa.kth_dist():.4f}"
        )

    # Mean fleet response radius across hubs: how far the k-th nearest
    # vehicle is, i.e. the service guarantee the dispatcher can quote.
    radii = [qa.kth_dist() for qa in answers]
    print(f"\nmean {K}-vehicle response radius: {np.mean(radii):.4f}")


if __name__ == "__main__":
    main()
