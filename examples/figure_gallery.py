"""Terminal renderings of the paper's dataset figures (Figs. 9 and 10).

Prints ASCII density maps of the three synthetic datasets and the
road-network simulation snapshot, with their skew statistics — the
closest a text terminal gets to the paper's scatter plots.

Run with::

    python examples/figure_gallery.py
"""

from __future__ import annotations

from repro import density_plot, make_dataset, side_by_side
from repro.motion import skewness_statistic
from repro.roadnet import roadnet_dataset

N = 8_000
WIDTH, HEIGHT = 36, 15


def main() -> None:
    datasets = {
        "uniform (9a)": make_dataset("uniform", N, seed=7),
        "skewed (9b)": make_dataset("skewed", N, seed=7),
        "hi-skewed (9c)": make_dataset("hi_skewed", N, seed=7),
    }
    print("Figure 9 — synthetic datasets of increasing skew\n")
    print(
        side_by_side(
            [
                density_plot(points, width=WIDTH, height=HEIGHT)
                for points in datasets.values()
            ],
            labels=list(datasets.keys()),
        )
    )
    print()
    for name, points in datasets.items():
        print(f"  skewness({name}) = {skewness_statistic(points):6.2f}")

    print("\nFigure 10 — road-network simulation (synthetic Illinois substitute)\n")
    road = roadnet_dataset(N, warmup_cycles=40, seed=7)
    print(density_plot(road, width=WIDTH * 2, height=HEIGHT + 5))
    print(f"\n  skewness(roadnet) = {skewness_statistic(road):6.2f} "
          "(between uniform and skewed, as in the paper)")


if __name__ == "__main__":
    main()
