"""Location-based commerce (the paper's e-flyer motivation).

A handful of retail stores continuously want the k customers closest to
them, so bandwidth-limited e-flyers go only to the best targets.  With
few queries (stores) and many objects (customers) the paper's analysis
(§3.3, Fig. 15) says Query-Indexing is the method of choice — this example
uses it and also measures how the delivery set churns as customers move.

Run with::

    python examples/location_based_advertising.py
"""

from __future__ import annotations

import numpy as np

from repro import MonitoringSystem, RandomWalkModel, make_dataset

N_CUSTOMERS = 30_000
N_STORES = 8
K_FLYERS = 20  # flyers a store may send per cycle
CYCLES = 12


def main() -> None:
    customers = make_dataset("skewed", N_CUSTOMERS, seed=5)  # malls are crowded
    rng = np.random.default_rng(6)
    stores = 0.15 + 0.7 * rng.random((N_STORES, 2))  # stores in the core area
    motion = RandomWalkModel(vmax=0.004, seed=8)

    # Few queries + many objects: Query-Indexing with incremental
    # maintenance of the critical regions.
    system = MonitoringSystem.query_indexing(
        k=K_FLYERS, queries=stores, maintenance="incremental"
    )
    system.load(customers)

    audiences = {store: frozenset() for store in range(N_STORES)}
    deliveries = 0
    for cycle in range(1, CYCLES + 1):
        customers = motion.step(customers)
        answers = system.tick(customers)
        fresh = 0
        for qa in answers:
            audience = frozenset(qa.object_ids())
            fresh += len(audience - audiences[qa.query_id])
            audiences[qa.query_id] = audience
        deliveries += fresh
        stats = system.last_stats
        print(
            f"cycle {cycle:2d}: {fresh:3d} new flyers sent, "
            f"cycle time {stats.total_time * 1e3:6.2f} ms"
        )

    print(f"\ntotal new-recipient deliveries: {deliveries}")
    for store in range(N_STORES):
        qa_ids = sorted(audiences[store])
        print(
            f"store {store} @ ({stores[store, 0]:.2f}, {stores[store, 1]:.2f}) "
            f"currently targets {len(qa_ids)} customers, e.g. "
            + ", ".join(f"#{i}" for i in qa_ids[:5])
        )
    mean_ms = system.mean_cycle_time() * 1e3
    print(
        f"\nmean cycle time {mean_ms:.2f} ms -> the e-flyer targets can be "
        f"refreshed about {1000 / mean_ms:.0f} times per second for "
        f"{N_CUSTOMERS} moving customers"
    )


if __name__ == "__main__":
    main()
