"""Quickstart: monitor the 5 nearest moving objects for a handful of queries.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MonitoringSystem, RandomWalkModel, make_dataset, make_queries


def main() -> None:
    # 10,000 objects moving freely in the unit square; 5 static queries.
    objects = make_dataset("uniform", 10_000, seed=7)
    queries = make_queries(5, seed=11)
    motion = RandomWalkModel(vmax=0.005, seed=13)

    # The default method: one-level grid Object-Indexing at the optimal
    # cell size (delta* = 1/sqrt(NP)), rebuilt from scratch each cycle.
    system = MonitoringSystem.object_indexing(k=5, queries=queries)

    answers = system.load(objects)
    print(f"initial answers at t={answers[0].timestamp}:")
    for qa in answers:
        nearest_id, nearest_dist = qa.neighbors[0]
        print(
            f"  query {qa.query_id}: nearest object #{nearest_id} "
            f"at distance {nearest_dist:.4f}, k-th at {qa.kth_dist():.4f}"
        )

    # Monitor for ten cycles; each tick takes a snapshot of the new
    # positions and recomputes the exact k-NNs.
    for _ in range(10):
        objects = motion.step(objects)
        answers = system.tick(objects)

    print(f"\nafter {system.cycle} cycles (t={system.timestamp}):")
    for qa in answers:
        ids = ", ".join(f"#{object_id}" for object_id in qa.object_ids())
        print(f"  query {qa.query_id}: k-NN = [{ids}]")

    stats = system.last_stats
    print(
        f"\nlast cycle: index maintenance {stats.index_time * 1e3:.2f} ms, "
        f"query answering {stats.answer_time * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
