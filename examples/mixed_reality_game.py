"""Location-based mixed-reality game (the paper's BotFighters motivation).

Each player wants to continuously know the k players nearest to them so
they can plan combat.  Every player is therefore both a moving *object*
and a moving *query* — this example exercises the moving-query support of
the monitoring system and reports per-cycle "target lock" changes.

Run with::

    python examples/mixed_reality_game.py
"""

from __future__ import annotations

import numpy as np

from repro import MonitoringSystem, RandomWalkModel, make_dataset

N_PLAYERS = 2_000
N_TRACKED = 25  # players whose HUD we render
K = 3  # nearby players shown on the HUD
CYCLES = 15


def main() -> None:
    rng = np.random.default_rng(42)
    players = make_dataset("skewed", N_PLAYERS, seed=42)  # players cluster downtown
    motion = RandomWalkModel(vmax=0.008, seed=43)

    # The tracked players' own positions are the queries.
    tracked = rng.choice(N_PLAYERS, size=N_TRACKED, replace=False)
    system = MonitoringSystem.object_indexing(
        k=K + 1,  # the nearest "neighbor" of a player is the player itself
        queries=players[tracked],
        maintenance="incremental",
        answering="incremental",
    )
    system.load(players)

    previous_locks = {}
    total_lock_changes = 0
    for cycle in range(1, CYCLES + 1):
        players = motion.step(players)
        system.set_queries(players[tracked])  # the trackers moved too
        answers = system.tick(players)

        lock_changes = 0
        for slot, qa in enumerate(answers):
            me = int(tracked[slot])
            # Drop self from the answer (distance 0 unless occluded by a tie).
            targets = tuple(
                object_id for object_id, _ in qa.neighbors if object_id != me
            )[:K]
            if previous_locks.get(me, targets) != targets:
                lock_changes += 1
            previous_locks[me] = targets
        total_lock_changes += lock_changes
        stats = system.last_stats
        print(
            f"cycle {cycle:2d}: {lock_changes:2d}/{N_TRACKED} HUDs changed, "
            f"cycle time {stats.total_time * 1e3:6.2f} ms "
            f"(index {stats.index_time * 1e3:5.2f} + "
            f"answer {stats.answer_time * 1e3:5.2f})"
        )

    hero = int(tracked[0])
    hero_targets = previous_locks[hero]
    print(
        f"\nplayer #{hero} final HUD: nearest {K} rivals = "
        + ", ".join(f"#{t}" for t in hero_targets)
    )
    print(
        f"{total_lock_changes} HUD updates across {CYCLES} cycles "
        f"({total_lock_changes / (CYCLES * N_TRACKED):.0%} of renders)"
    )


if __name__ == "__main__":
    main()
