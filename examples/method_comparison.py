"""Compare every monitoring method on one workload (a miniature Fig. 17).

Runs all five of the paper's methods — plus the brute-force oracle and the
STR-bulk R-tree the paper did not have — on the same skewed workload and
prints a ranked table, verifying on the way that all methods return the
same exact answers.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro import RandomWalkModel, answers_equal, make_dataset, make_queries
from repro.bench import format_table, measure_cycles
from repro.engines.registry import build_system

N_OBJECTS = 10_000
N_QUERIES = 500
K = 10
CYCLES = 3

METHODS = [
    "query_indexing",
    "hierarchical",
    "object_overhaul",
    "object_incremental",
    "rtree_str_bulk",
    "rtree_overhaul",
    "rtree_bottom_up",
    "brute_force",
]


def main() -> None:
    positions = make_dataset("skewed", N_OBJECTS, seed=17)
    queries = make_queries(N_QUERIES, seed=18)

    rows = []
    reference_answers = None
    for method in METHODS:
        system = build_system(method, K, queries)
        motion = RandomWalkModel(vmax=0.005, seed=19)
        timing = measure_cycles(system, positions, motion, cycles=CYCLES)
        # Cross-check exactness: every method must agree with the first.
        final = system.engine.answer()
        if reference_answers is None:
            reference_answers = final
        else:
            for got, want in zip(final, reference_answers):
                assert answers_equal(got.neighbors(), want.neighbors()), method
        rows.append(
            [
                method,
                timing.index_time * 1e3,
                timing.answer_time * 1e3,
                timing.total_time * 1e3,
            ]
        )

    rows.sort(key=lambda row: row[3])
    print(
        f"workload: NP={N_OBJECTS} skewed objects, NQ={N_QUERIES} queries, "
        f"k={K}, vmax=0.005, mean of {CYCLES} cycles\n"
    )
    print(
        format_table(
            ["method", "index_ms", "answer_ms", "total_ms"],
            rows,
        )
    )
    print("\nall methods returned identical exact answers")

    # What would the paper's own analysis have picked for this workload?
    from repro import WorkloadProfile, recommend
    from repro.motion import skewness_statistic

    profile = WorkloadProfile(
        n_objects=N_OBJECTS,
        n_queries=N_QUERIES,
        k=K,
        vmax=0.005,
        skewness=skewness_statistic(positions),
    )
    print("\n" + recommend(profile).summary())


if __name__ == "__main__":
    main()
