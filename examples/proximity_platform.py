"""A proximity platform combining every continuous query type.

One population of moving users serves four concurrent products:

* **radar** (k-NN): a tracked user's k nearest users (the paper's core);
* **audience** (reverse k-NN): users who have a promoted venue on *their*
  radar — the right recipients for a push notification;
* **meetup** (group NN): the best users (e.g. couriers) for a group of
  friends to summon, minimising total travel;
* **geofences** (range): users inside each monitored zone.

Asynchronous position reports flow through a snapshot buffer
(:class:`repro.PositionBuffer`), and a :class:`repro.DeltaTracker`
turns raw answers into notification events.

Run with::

    python examples/proximity_platform.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CircleRegion,
    DeltaTracker,
    GNNMonitor,
    MonitoringSystem,
    PositionBuffer,
    RKNNMonitor,
    RangeMonitor,
    RectRegion,
    make_dataset,
    make_queries,
)

N_USERS = 5_000
CYCLES = 8


def main() -> None:
    rng = np.random.default_rng(2024)
    users = make_dataset("skewed", N_USERS, seed=2024)

    # --- product surfaces -------------------------------------------------
    venues = make_queries(4, seed=1)  # promoted venues (RkNN audiences)
    tracked = make_queries(6, seed=2)  # radar widgets (k-NN)
    friend_groups = [make_queries(3, seed=10 + g) for g in range(2)]
    zones = [
        RectRegion(0.45, 0.45, 0.55, 0.55),  # downtown core
        CircleRegion(0.25, 0.75, 0.08),  # stadium
    ]

    # The report buffer and the monitoring system compose directly:
    # system.tick(buffer.publish()) is one full cycle, zero-copy from
    # the buffer's world store into the engine.
    reports = PositionBuffer(users)
    radar = MonitoringSystem.object_indexing(
        5, tracked, maintenance="incremental", answering="incremental"
    )
    audience = RKNNMonitor(10, venues)
    meetup = GNNMonitor(3, friend_groups, aggregate="sum")
    geofence = RangeMonitor(zones)
    events = DeltaTracker()
    events.update(radar.load(reports.publish()))

    current = users.copy()
    for cycle in range(1, CYCLES + 1):
        # Asynchronous reports: a random subset of users ping new positions.
        movers = rng.choice(N_USERS, size=N_USERS // 3, replace=False)
        jitter = rng.uniform(-0.01, 0.01, size=(len(movers), 2))
        new_positions = np.clip(current[movers] + jitter, 0.0, 1.0 - 1e-9)
        reports.report_batch(movers.tolist(), new_positions)
        current[movers] = new_positions

        # One synchronized cycle across all products.
        radar_answers = radar.tick(reports.publish())
        deltas = events.update(radar_answers)
        audiences = audience.tick(current)
        meetups = meetup.tick(current)
        zone_members = geofence.tick(current)

        changed = sum(1 for d in deltas if d.changed)
        print(
            f"cycle {cycle}: {changed}/{len(tracked)} radars changed, "
            f"audiences {[len(a) for a in audiences]}, "
            f"zone occupancy {[len(z) for z in zone_members]}"
        )

    print("\nfinal state")
    for venue_id, members in enumerate(audiences):
        vx, vy = venues[venue_id]
        print(
            f"  venue {venue_id} @ ({vx:.2f}, {vy:.2f}): push audience of "
            f"{len(members)} users"
        )
    for group_id, answer in enumerate(meetups):
        courier, cost = answer[0]
        print(
            f"  friend group {group_id}: best courier #{courier}, total "
            f"travel {cost:.3f}"
        )
    print(
        f"  radar churn: {events.mean_churn_per_cycle():.1f} membership "
        f"changes per cycle across {len(tracked)} radars"
    )


if __name__ == "__main__":
    main()
