"""Taxi dispatch: a continuous bichromatic k-NN join.

Two moving populations — taxis and open ride requests — are joined every
cycle: each taxi learns its k nearest requests, and the dispatcher
assigns the globally closest taxi/request pairs first (greedy matching on
``closest_pairs``).  The city is drawn as an ASCII density map so the
skewed demand (Fig. 9-style clusters) is visible in the terminal.

Run with::

    python examples/taxi_dispatch.py
"""

from __future__ import annotations

import numpy as np

from repro import KNNJoinMonitor, RandomWalkModel, density_plot, make_dataset, side_by_side

N_TAXIS = 300
N_REQUESTS = 4_000
K = 5
CYCLES = 6
ASSIGN_PER_CYCLE = 5


def main() -> None:
    taxis = make_dataset("uniform", N_TAXIS, seed=31)  # cabs roam everywhere
    requests = make_dataset("skewed", N_REQUESTS, seed=32)  # demand clusters
    taxi_motion = RandomWalkModel(vmax=0.01, seed=33)
    request_motion = RandomWalkModel(vmax=0.002, seed=34)  # pedestrians

    print("city snapshot (left: taxis, right: ride requests)\n")
    print(
        side_by_side(
            [
                density_plot(taxis, width=34, height=14),
                density_plot(requests, width=34, height=14),
            ],
            labels=["taxis", "requests"],
        )
    )
    print()

    join = KNNJoinMonitor(K)
    total_pickup_distance = 0.0
    assignments = 0
    for cycle in range(1, CYCLES + 1):
        taxis = taxi_motion.step(taxis)
        requests = request_motion.step(requests)
        answers = join.tick(taxis, requests)
        # Greedy dispatch: the globally closest pairs first, one request
        # and one taxi each (closest_pairs is exact for n <= k).
        assigned_taxis = set()
        assigned_requests = set()
        dispatched = []
        for taxi_id, request_id, distance in join.closest_pairs(K):
            if taxi_id in assigned_taxis or request_id in assigned_requests:
                continue
            assigned_taxis.add(taxi_id)
            assigned_requests.add(request_id)
            dispatched.append((taxi_id, request_id, distance))
            if len(dispatched) >= ASSIGN_PER_CYCLE:
                break
        mean_candidates = float(
            np.mean([answer.kth_dist() for answer in answers])
        )
        for taxi_id, request_id, distance in dispatched:
            total_pickup_distance += distance
            assignments += 1
        print(
            f"cycle {cycle}: dispatched {len(dispatched)} taxis "
            f"(closest pickup {dispatched[0][2]:.4f}, "
            f"mean {K}-th candidate radius {mean_candidates:.4f})"
        )

    print(
        f"\n{assignments} assignments, mean pickup distance "
        f"{total_pickup_distance / assignments:.4f}"
    )


if __name__ == "__main__":
    main()
