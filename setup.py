"""Setup shim for legacy editable installs in offline environments.

The canonical metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` where the ``wheel`` package is absent.
"""

from setuptools import setup

setup()
