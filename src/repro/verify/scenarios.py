"""Seeded workload scenarios for the differential fuzzer.

Every scenario is a pure function of its integer seed: one
``np.random.default_rng(seed)`` drives every draw, and the generator
performs no I/O and reads no clocks, so the same seed always yields the
same :class:`~repro.verify.trace.Workload` — which is what lets a CI
failure be reproduced locally from nothing but the seed number.

The generator is built to hit the places where exact engines disagree
when they are wrong:

* **knife-edge ties** — most scenarios put coordinates on a coarse
  ``i / L`` lattice (L ∈ {8, 16, 32}), so duplicate query–object
  distances are routine and the ``(d², id)`` tie-break is load-bearing
  on almost every cycle; some scenarios additionally join objects at the
  *exact* position of an existing object or query;
* **churn bursts** — occasional cycles join or retire a large batch at
  once, stressing delta admission, compaction, and rebuild paths;
* **teleports** — objects jump across the unit square, invalidating any
  stale dirty-region or answer-reuse state;
* **motion profiles** — ``uniform`` lattice random walks, ``skew``
  drift toward a moving hotspot (grid-load imbalance), and ``roadnet``
  axis-aligned movement along lattice lines;
* **k / ncells sweeps** — ``k`` varies per scenario and grid methods
  get an ``ncells`` override, so cell-boundary geometry varies too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .trace import Workload

PROFILES = ("uniform", "skew", "roadnet")


@dataclass(frozen=True)
class Scenario:
    """One generated fuzz case: the workload plus its shape parameters."""

    seed: int
    profile: str
    lattice: Optional[int]  #: coordinate denominator (None = continuous)
    k: int
    n_objects: int
    n_queries: int
    cycles: int
    ncells: Optional[int]  #: grid-resolution override for grid methods
    workload: Workload

    @property
    def engine_overrides(self) -> Dict[str, object]:
        return {} if self.ncells is None else {"ncells": self.ncells}

    def describe(self) -> str:
        lat = f"1/{self.lattice}" if self.lattice else "continuous"
        nc = self.ncells if self.ncells is not None else "default"
        return (
            f"seed={self.seed} profile={self.profile} lattice={lat} "
            f"k={self.k} objects={self.n_objects} queries={self.n_queries} "
            f"cycles={self.cycles} ncells={nc}"
        )


def _coords(rng: np.random.Generator, n: int, lattice: Optional[int]):
    if lattice is None:
        return rng.random((n, 2))
    return rng.integers(0, lattice + 1, size=(n, 2)) / lattice


def _snap(xy: np.ndarray, lattice: Optional[int]) -> np.ndarray:
    xy = np.clip(xy, 0.0, 1.0)
    if lattice is None:
        return xy
    return np.round(xy * lattice) / lattice


def make_scenario(seed: int, *, cycles: Optional[int] = None) -> Scenario:
    """Generate the scenario for ``seed`` (deterministic, no side effects)."""
    rng = np.random.default_rng(seed)
    profile = PROFILES[int(rng.integers(len(PROFILES)))]
    lattice = [8, 16, 32, None][int(rng.integers(4))]
    k = int(rng.integers(1, 7))
    n_objects = int(rng.integers(max(k + 4, 12), 40))
    n_queries = int(rng.integers(2, 8))
    n_cycles = int(cycles) if cycles is not None else int(rng.integers(8, 21))
    ncells = [None, 4, 8, 16][int(rng.integers(4))]

    workload = Workload(
        k=k,
        meta={
            "seed": seed,
            "profile": profile,
            "lattice": lattice,
            "ncells": ncells,
        },
    )

    live: Dict[int, np.ndarray] = {}
    queries: Dict[int, np.ndarray] = {}
    next_oid = 0
    next_hid = 0
    hotspot = rng.random(2)
    # Roadnet: per-object axis (0 = moves along x, 1 = along y).
    axis: Dict[int, int] = {}
    step = 1.0 / (lattice or 64)

    def join_events(n: int, events: List[dict]) -> None:
        nonlocal next_oid
        for _ in range(n):
            if live and lattice is not None and rng.random() < 0.25:
                # Knife-edge: join exactly on top of an existing object
                # or query — guaranteed duplicate distances.
                pool = list(live.values()) + list(queries.values())
                xy = np.array(pool[int(rng.integers(len(pool)))])
            else:
                xy = _coords(rng, 1, lattice)[0]
            events.append(
                {"t": "join", "oid": next_oid, "xy": [float(xy[0]), float(xy[1])]}
            )
            live[next_oid] = np.asarray(xy, dtype=np.float64)
            axis[next_oid] = int(rng.integers(2))
            next_oid += 1

    def register_events(n: int, events: List[dict]) -> None:
        nonlocal next_hid
        for _ in range(n):
            xy = _coords(rng, 1, lattice)[0]
            events.append(
                {"t": "reg", "hid": next_hid, "xy": [float(xy[0]), float(xy[1])]}
            )
            queries[next_hid] = np.asarray(xy, dtype=np.float64)
            next_hid += 1

    def motion_event(events: List[dict]) -> None:
        if not live:
            return
        oids = sorted(live)
        pos = np.array([live[o] for o in oids])
        if profile == "uniform":
            pos = pos + rng.integers(-1, 2, size=pos.shape) * step
        elif profile == "skew":
            nonlocal hotspot
            hotspot = np.clip(
                hotspot + rng.uniform(-0.05, 0.05, size=2), 0.0, 1.0
            )
            drift = np.sign(hotspot - pos) * step
            noise = rng.integers(-1, 2, size=pos.shape) * step
            pos = pos + np.where(rng.random(pos.shape) < 0.7, drift, noise)
        else:  # roadnet: move along the object's axis only
            delta = np.zeros_like(pos)
            steps = rng.integers(-2, 3, size=len(oids)) * step
            for row, oid in enumerate(oids):
                delta[row, axis[oid]] = steps[row]
                if rng.random() < 0.1:  # turn at an intersection
                    axis[oid] ^= 1
            pos = pos + delta
        pos = _snap(pos, lattice)
        for row, oid in enumerate(oids):
            live[oid] = pos[row]
        events.append({"t": "move", "oids": oids, "xy": pos.tolist()})

    for cycle in range(n_cycles):
        events: List[dict] = []
        if cycle == 0:
            join_events(n_objects, events)
            register_events(n_queries, events)
            workload.cycles.append(events)
            continue

        burst = rng.random() < 0.1
        join_events(
            int(rng.integers(5, 11)) if burst else int(rng.integers(0, 3)),
            events,
        )
        n_leave = (
            int(rng.integers(4, 9)) if burst else int(rng.integers(0, 3))
        )
        n_leave = min(n_leave, max(0, len(live) - (k + 2)))
        if n_leave:
            for oid in rng.choice(sorted(live), size=n_leave, replace=False):
                events.append({"t": "leave", "oid": int(oid)})
                del live[int(oid)]
        if len(queries) > 1 and rng.random() < 0.3:
            hid = sorted(queries)[int(rng.integers(len(queries)))]
            events.append({"t": "drop", "hid": hid})
            del queries[hid]
        if len(queries) < 10 and rng.random() < 0.35:
            register_events(1, events)
        if live and rng.random() < 0.08:  # teleport burst
            n_tp = min(len(live), int(rng.integers(1, 5)))
            oids = [
                int(o)
                for o in rng.choice(sorted(live), size=n_tp, replace=False)
            ]
            xy = _coords(rng, n_tp, lattice)
            for row, oid in enumerate(oids):
                live[oid] = xy[row]
            events.append({"t": "move", "oids": oids, "xy": xy.tolist()})
        motion_event(events)
        workload.cycles.append(events)

    return Scenario(
        seed=seed,
        profile=profile,
        lattice=lattice,
        k=k,
        n_objects=n_objects,
        n_queries=n_queries,
        cycles=n_cycles,
        ncells=ncells,
        workload=workload,
    )


def churn_scenario(
    seed: int,
    *,
    k: int = 3,
    cycles: int = 200,
    n_objects: int = 30,
    n_queries: int = 5,
    lattice: int = 16,
) -> Workload:
    """A long mixed-churn workload mirroring the churn equivalence suite.

    Fixed shape (lattice positions, steady join/leave/register/drop mix,
    full-population random-walk motion each cycle) so the 200-cycle churn
    tests can drive every engine through the differential runner with
    the same stress profile as :mod:`tests.test_churn`.
    """
    rng = np.random.default_rng(seed)
    workload = Workload(
        k=k, meta={"seed": seed, "profile": "churn", "lattice": lattice}
    )
    live: Dict[int, np.ndarray] = {}
    queries: Dict[int, np.ndarray] = {}
    next_oid = 0
    next_hid = 0

    for cycle in range(cycles):
        events: List[dict] = []
        if cycle == 0:
            for xy in _coords(rng, n_objects, lattice):
                events.append(
                    {"t": "join", "oid": next_oid, "xy": xy.tolist()}
                )
                live[next_oid] = xy
                next_oid += 1
            for xy in _coords(rng, n_queries, lattice):
                events.append({"t": "reg", "hid": next_hid, "xy": xy.tolist()})
                queries[next_hid] = xy
                next_hid += 1
            workload.cycles.append(events)
            continue
        for _ in range(int(rng.integers(0, 4))):
            xy = _coords(rng, 1, lattice)[0]
            events.append({"t": "join", "oid": next_oid, "xy": xy.tolist()})
            live[next_oid] = xy
            next_oid += 1
        n_leave = int(rng.integers(0, 4))
        n_leave = min(n_leave, max(0, len(live) - (k + 2)))
        if n_leave:
            for oid in rng.choice(sorted(live), size=n_leave, replace=False):
                events.append({"t": "leave", "oid": int(oid)})
                del live[int(oid)]
        if len(queries) > 1 and rng.random() < 0.4:
            hid = sorted(queries)[int(rng.integers(len(queries)))]
            events.append({"t": "drop", "hid": hid})
            del queries[hid]
        if len(queries) < 12 and rng.random() < 0.5:
            xy = _coords(rng, 1, lattice)[0]
            events.append({"t": "reg", "hid": next_hid, "xy": xy.tolist()})
            queries[next_hid] = xy
            next_hid += 1
        oids = sorted(live)
        pos = np.array([live[o] for o in oids])
        pos = _snap(pos + rng.integers(-1, 2, size=pos.shape) / lattice, lattice)
        for row, oid in enumerate(oids):
            live[oid] = pos[row]
        events.append({"t": "move", "oids": oids, "xy": pos.tolist()})
        workload.cycles.append(events)
    return workload
