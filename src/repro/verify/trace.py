"""Workload traces: the recorded, replayable form of a monitoring run.

A *workload* is the session-level event stream of one monitoring run —
object joins/leaves, query registrations/drops, and position updates —
grouped into cycles, where each cycle's event batch is applied through
the :class:`~repro.service.MonitoringSession` API and then ``tick()``
runs.  Because every event is recorded at the session API boundary (see
:mod:`repro.verify.recorder`), replaying the stream against a fresh
session reproduces the original run *bit-identically*: the session's
admission sets, free lists, and handle counters are all deterministic
functions of the call sequence.

Two interchangeable on-disk forms:

``.jsonl`` / ``.jsonl.gz``
    One JSON object per line — a header line followed by event lines.
    Python's ``json`` serializes floats via ``repr`` (shortest
    round-trip), so float64 coordinates and distances survive exactly.
``.npz``
    The same event stream with every bulk-move coordinate block hoisted
    into one binary float64 array (``move_xy``) referenced by
    ``(offset, count)`` — compact for motion-heavy traces, still exact.

Event records (plain dicts; ``"t"`` is the discriminator)::

    {"t": "header", "version": 1, "k": 3, "method": ..., "options": {},
     "meta": {...}}
    {"t": "join",  "oid": 7, "xy": [x, y]}
    {"t": "leave", "oid": 7}
    {"t": "reg",   "hid": 2, "xy": [x, y]}
    {"t": "drop",  "hid": 2}
    {"t": "move",  "oids": [...], "xy": [[x, y], ...]}
    {"t": "tick",  "cycle": 4, "digest": "..."}   # digest optional

``hid`` is the handle id the *recording* session returned.  The replayer
maps trace hids to its own live handles, so a trace remains valid after
the shrinker deletes queries (see :mod:`repro.verify.shrink`).
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

TRACE_VERSION = 1

#: One query's exact answer in canonical form: ``(hid, ((oid, dist), ...))``.
CanonAnswer = Tuple[int, Tuple[Tuple[int, float], ...]]
#: One cycle's answers: per-query canonical answers sorted by hid.
CanonCycle = Tuple[CanonAnswer, ...]

EVENT_TYPES = ("join", "leave", "reg", "drop", "move")


@dataclass
class Workload:
    """One replayable monitoring run: per-cycle event batches plus config.

    ``cycles[i]`` holds the events admitted before tick ``i``.  ``digests``
    (when present) is the per-cycle canonical-answer digest of the run the
    trace was recorded from — ``replay(..., check=True)`` re-derives and
    compares them.
    """

    k: int
    cycles: List[List[dict]] = field(default_factory=list)
    method: Optional[str] = None
    options: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    digests: Optional[List[Optional[str]]] = None

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def n_events(self) -> int:
        return sum(len(c) for c in self.cycles)

    def copy(self) -> "Workload":
        return replace(
            self,
            cycles=[list(c) for c in self.cycles],
            options=dict(self.options),
            meta=dict(self.meta),
            digests=list(self.digests) if self.digests is not None else None,
        )


# ----------------------------------------------------------------------
# Canonical answers and digests
# ----------------------------------------------------------------------
def canonical_cycle(
    answers: Mapping, hid_of: Optional[Mapping[int, int]] = None
) -> CanonCycle:
    """Canonicalize one tick's ``{QueryHandle: SessionAnswer}`` output.

    ``hid_of`` maps the session's handle ids back to trace hids (the
    replayer's remap); the recorder passes ``None`` because its session
    handle ids *are* the trace hids.  Distances stay exact float64 — the
    canonical form compares with ``==`` bit-for-bit.
    """
    rows = []
    for handle, ans in answers.items():
        hid = handle.id if hid_of is None else hid_of[handle.id]
        rows.append((hid, tuple((int(o), float(d)) for o, d in ans.neighbors)))
    rows.sort(key=lambda r: r[0])
    return tuple(rows)


def digest_cycle(canon: CanonCycle) -> str:
    """Stable digest of one cycle's canonical answers.

    Distances are hashed via ``float.hex()`` so the digest is a pure
    function of the float64 bits, immune to repr conventions.
    """
    h = hashlib.sha256()
    for hid, neighbors in canon:
        h.update(str(hid).encode())
        for oid, dist in neighbors:
            h.update(f":{oid}/{float(dist).hex()}".encode())
        h.update(b";")
    return h.hexdigest()[:32]


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _header(workload: Workload) -> dict:
    return {
        "t": "header",
        "version": TRACE_VERSION,
        "k": workload.k,
        "method": workload.method,
        "options": dict(workload.options),
        "meta": dict(workload.meta),
    }


def _event_stream(workload: Workload) -> List[dict]:
    out: List[dict] = []
    digests = workload.digests
    for cycle, events in enumerate(workload.cycles):
        out.extend(events)
        tick: dict = {"t": "tick", "cycle": cycle}
        if digests is not None and cycle < len(digests) and digests[cycle]:
            tick["digest"] = digests[cycle]
        out.append(tick)
    return out


def _from_stream(header: dict, events: Sequence[dict]) -> Workload:
    if header.get("t") != "header":
        raise ConfigurationError("trace must start with a header record")
    version = header.get("version")
    if version != TRACE_VERSION:
        raise ConfigurationError(
            f"unsupported trace version {version!r} (this build reads "
            f"version {TRACE_VERSION})"
        )
    workload = Workload(
        k=int(header["k"]),
        method=header.get("method"),
        options=dict(header.get("options") or {}),
        meta=dict(header.get("meta") or {}),
    )
    digests: List[Optional[str]] = []
    current: List[dict] = []
    for ev in events:
        kind = ev.get("t")
        if kind == "tick":
            workload.cycles.append(current)
            digests.append(ev.get("digest"))
            current = []
        elif kind in EVENT_TYPES:
            current.append(ev)
        else:
            raise ConfigurationError(f"unknown trace event type {kind!r}")
    if current:
        raise ConfigurationError(
            f"trace ends with {len(current)} events after the last tick"
        )
    if any(d is not None for d in digests):
        workload.digests = digests
    return workload


def save_trace(workload: Workload, path: str) -> None:
    """Write a workload to ``path`` (format chosen by extension)."""
    if path.endswith(".npz"):
        _save_npz(workload, path)
        return
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "wt", encoding="utf-8") as fh:  # type: ignore[operator]
        fh.write(json.dumps(_header(workload)) + "\n")
        for ev in _event_stream(workload):
            fh.write(json.dumps(ev) + "\n")


def load_trace(path: str) -> Workload:
    """Read a workload written by :func:`save_trace`."""
    if path.endswith(".npz"):
        return _load_npz(path)
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:  # type: ignore[operator]
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines:
        raise ConfigurationError(f"empty trace file {path!r}")
    return _from_stream(lines[0], lines[1:])


def _save_npz(workload: Workload, path: str) -> None:
    blocks: List[np.ndarray] = []
    offset = 0
    events = []
    for ev in _event_stream(workload):
        if ev.get("t") == "move":
            xy = np.asarray(ev["xy"], dtype=np.float64)
            blocks.append(xy)
            events.append(
                {"t": "move", "oids": list(ev["oids"]), "xyref": [offset, len(xy)]}
            )
            offset += len(xy)
        else:
            events.append(ev)
    move_xy = (
        np.concatenate(blocks) if blocks else np.empty((0, 2), dtype=np.float64)
    )
    np.savez_compressed(
        path,
        header=np.frombuffer(
            json.dumps(_header(workload)).encode("utf-8"), dtype=np.uint8
        ),
        events=np.frombuffer(json.dumps(events).encode("utf-8"), dtype=np.uint8),
        move_xy=move_xy,
    )


def _load_npz(path: str) -> Workload:
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
        events = json.loads(bytes(data["events"]).decode("utf-8"))
        move_xy = np.asarray(data["move_xy"], dtype=np.float64)
    resolved = []
    for ev in events:
        if ev.get("t") == "move":
            off, count = ev["xyref"]
            resolved.append(
                {
                    "t": "move",
                    "oids": ev["oids"],
                    "xy": move_xy[off : off + count].tolist(),
                }
            )
        else:
            resolved.append(ev)
    return _from_stream(header, resolved)


# ----------------------------------------------------------------------
# Static validity (used by the shrinker before spending a run)
# ----------------------------------------------------------------------
def workload_valid(workload: Workload) -> bool:
    """Whether the event stream can replay without admission errors.

    Mirrors the session's cancel semantics (join-of-pending-leave,
    leave-of-pending-join, drop-of-pending-register) and requires the
    post-admission population to stay at or above ``k`` on every tick —
    exactly the checks :meth:`MonitoringSession.tick` enforces.
    """
    live: set = set()
    queries: set = set()
    for events in workload.cycles:
        pending_join: set = set()
        pending_leave: set = set()
        pending_reg: set = set()
        pending_drop: set = set()
        for ev in events:
            kind = ev["t"]
            if kind == "join":
                oid = ev["oid"]
                if oid in pending_leave:
                    pending_leave.discard(oid)
                elif oid in live or oid in pending_join:
                    return False
                else:
                    pending_join.add(oid)
            elif kind == "leave":
                oid = ev["oid"]
                if oid in pending_join:
                    pending_join.discard(oid)
                elif oid in pending_leave or oid not in live:
                    return False
                else:
                    pending_leave.add(oid)
            elif kind == "reg":
                pending_reg.add(ev["hid"])
            elif kind == "drop":
                hid = ev["hid"]
                if hid in pending_reg:
                    pending_reg.discard(hid)
                elif hid in pending_drop or hid not in queries:
                    return False
                else:
                    pending_drop.add(hid)
            elif kind == "move":
                for oid in ev["oids"]:
                    if oid not in live and oid not in pending_join:
                        return False
        if len(live) + len(pending_join) - len(pending_leave) < workload.k:
            return False
        live = (live | pending_join) - pending_leave
        queries = (queries | pending_reg) - pending_drop
    return True
