"""Greedy trace minimization: cycles → objects → queries.

When the differential runner finds a divergence, the raw scenario is
rarely the story — a 20-cycle, 40-object workload usually contains a
two-object distance tie that one engine breaks wrong.  The shrinker
reduces a failing :class:`~repro.verify.trace.Workload` to a (locally)
minimal one while preserving the failure:

1. **truncate** — replays are prefix-closed (answers at cycle *c*
   depend only on events up to *c*), so everything after the first
   divergent cycle goes immediately;
2. **drop cycles** — each remaining cycle batch is removed greedily
   (last to first) if the divergence survives;
3. **drop objects** — each object id is removed wholesale (its join,
   leave, and every move entry referencing it);
4. **drop queries** — each query likewise (register, drop).

Every candidate is statically validated
(:func:`~repro.verify.trace.workload_valid`) before spending a run, and
the predicate is re-run passes until a fixpoint or the run budget is
reached.  Determinism of the engines makes the loop sound: a candidate
either reproduces the divergence or it does not — there is no flake to
chase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from .trace import Workload, workload_valid


@dataclass
class ShrinkResult:
    workload: Workload
    runs: int  #: predicate evaluations spent
    removed_cycles: int
    removed_objects: int
    removed_queries: int

    def describe(self) -> str:
        return (
            f"shrunk to {self.workload.n_cycles} cycles / "
            f"{self.workload.n_events} events in {self.runs} runs "
            f"(-{self.removed_cycles} cycles, -{self.removed_objects} "
            f"objects, -{self.removed_queries} queries)"
        )


def _without_cycle(workload: Workload, index: int) -> Workload:
    out = workload.copy()
    del out.cycles[index]
    if out.digests is not None:
        out.digests = None  # digests describe the unshrunk run
    return out


def _without_object(workload: Workload, oid: int) -> Workload:
    out = workload.copy()
    out.digests = None
    cycles: List[List[dict]] = []
    for events in out.cycles:
        kept: List[dict] = []
        for ev in events:
            kind = ev["t"]
            if kind in ("join", "leave") and ev["oid"] == oid:
                continue
            if kind == "move" and oid in ev["oids"]:
                oids = ev["oids"]
                keep = [i for i, o in enumerate(oids) if o != oid]
                if not keep:
                    continue
                ev = {
                    "t": "move",
                    "oids": [oids[i] for i in keep],
                    "xy": [ev["xy"][i] for i in keep],
                }
            kept.append(ev)
        cycles.append(kept)
    out.cycles = cycles
    return out


def _without_query(workload: Workload, hid: int) -> Workload:
    out = workload.copy()
    out.digests = None
    out.cycles = [
        [
            ev
            for ev in events
            if not (ev["t"] in ("reg", "drop") and ev["hid"] == hid)
        ]
        for events in out.cycles
    ]
    return out


def _object_ids(workload: Workload) -> List[int]:
    ids = []
    seen = set()
    for events in workload.cycles:
        for ev in events:
            if ev["t"] == "join" and ev["oid"] not in seen:
                seen.add(ev["oid"])
                ids.append(ev["oid"])
    return ids


def _query_ids(workload: Workload) -> List[int]:
    ids = []
    seen = set()
    for events in workload.cycles:
        for ev in events:
            if ev["t"] == "reg" and ev["hid"] not in seen:
                seen.add(ev["hid"])
                ids.append(ev["hid"])
    return ids


def shrink_workload(
    workload: Workload,
    still_fails: Callable[[Workload], bool],
    *,
    first_divergence_cycle: Optional[int] = None,
    max_runs: int = 250,
    registry: Optional[MetricsRegistry] = None,
) -> ShrinkResult:
    """Greedily minimize a failing workload under ``still_fails``.

    ``still_fails`` must return True when the candidate still reproduces
    the original divergence (it is never called on statically invalid
    candidates).  ``first_divergence_cycle`` (from the
    :class:`~repro.verify.differential.DiffReport`) makes the initial
    truncation free; without it the truncation is discovered by search.
    """
    verify = registry if registry is not None else NULL_REGISTRY
    runs = 0
    removed_cycles = removed_objects = removed_queries = 0

    def attempt(candidate: Workload) -> bool:
        nonlocal runs
        if runs >= max_runs or not workload_valid(candidate):
            return False
        runs += 1
        verify.inc("verify.shrink.attempts")
        return still_fails(candidate)

    current = workload.copy()
    # 1. Truncate past the first divergence (prefix-closed replays).
    if first_divergence_cycle is not None:
        cut = first_divergence_cycle + 1
        if cut < current.n_cycles:
            candidate = current.copy()
            candidate.cycles = candidate.cycles[:cut]
            if candidate.digests is not None:
                candidate.digests = candidate.digests[:cut]
            if attempt(candidate):
                removed_cycles += current.n_cycles - cut
                current = candidate

    improved = True
    while improved and runs < max_runs:
        improved = False
        # 2. Drop whole cycles, last to first (later cycles carry the
        # least population state, so they fall off cheapest).
        for index in range(current.n_cycles - 1, -1, -1):
            if current.n_cycles <= 1:
                break
            candidate = _without_cycle(current, index)
            if attempt(candidate):
                current = candidate
                removed_cycles += 1
                improved = True
        # 3. Drop objects.
        for oid in _object_ids(current):
            candidate = _without_object(current, oid)
            if attempt(candidate):
                current = candidate
                removed_objects += 1
                improved = True
        # 4. Drop queries.
        for hid in _query_ids(current):
            candidate = _without_query(current, hid)
            if attempt(candidate):
                current = candidate
                removed_queries += 1
                improved = True

    verify.inc("verify.shrink.completed")
    return ShrinkResult(
        current, runs, removed_cycles, removed_objects, removed_queries
    )
