"""Differential conformance harness for the monitoring engines.

The verification subsystem behind ``python -m repro.verify``:

* :mod:`~repro.verify.trace` — recorded, replayable workload traces
  (JSONL / NPZ, exact float64 round-trip);
* :mod:`~repro.verify.recorder` — session hooks that capture a live run;
* :mod:`~repro.verify.differential` — cross-engine execution with
  ``(distance, id)``-exact cycle-by-cycle diffing;
* :mod:`~repro.verify.scenarios` — seeded workload fuzzing profiles;
* :mod:`~repro.verify.shrink` — greedy minimization of failing traces;
* :mod:`~repro.verify.metamorphic` — single-engine invariants
  (translation/scale invariance, k-monotonicity, containment).

See docs/testing.md for the oracle hierarchy and reproduction workflow.
"""

from .differential import (
    EXACT_METHODS,
    DiffReport,
    Divergence,
    MethodSpec,
    ReplayResult,
    RunResult,
    make_specs,
    replay,
    run_differential,
    run_workload,
)
from .metamorphic import (
    CHECKS,
    MetamorphicFailure,
    run_metamorphic,
    scale_workload,
    translate_workload,
)
from .recorder import TraceRecorder
from .scenarios import PROFILES, Scenario, churn_scenario, make_scenario
from .shrink import ShrinkResult, shrink_workload
from .trace import (
    Workload,
    canonical_cycle,
    digest_cycle,
    load_trace,
    save_trace,
    workload_valid,
)

__all__ = [
    "CHECKS",
    "DiffReport",
    "Divergence",
    "EXACT_METHODS",
    "MetamorphicFailure",
    "MethodSpec",
    "PROFILES",
    "ReplayResult",
    "RunResult",
    "Scenario",
    "ShrinkResult",
    "TraceRecorder",
    "Workload",
    "canonical_cycle",
    "churn_scenario",
    "digest_cycle",
    "load_trace",
    "make_scenario",
    "make_specs",
    "replay",
    "run_differential",
    "run_metamorphic",
    "run_workload",
    "save_trace",
    "scale_workload",
    "shrink_workload",
    "translate_workload",
    "workload_valid",
]
