"""Metamorphic invariants: single-engine checks that need no oracle.

Differential testing needs two engines; these invariants hold for *one*
engine on mathematical grounds, so they can catch a bug even in the
baseline everything else is diffed against:

``translation``
    k-NN answers are translation-invariant.  The harness first scales
    the workload into ``[0, 0.5]²`` and then translates by an exact
    binary offset (default ``(0.25, 0.25)``): both transforms are exact
    in float64, so ``(x + t) - (q + t)`` reproduces ``x - q`` bit for
    bit and the translated run must return identical ids *and identical
    distance bits* — even though every grid-cell boundary moved.
``scale``
    Scaling all coordinates by a power of two (default ``0.5``) is
    exact: ids and ordering are unchanged and every distance is exactly
    ``factor`` times the original (power-of-two multiply and sqrt are
    both exact here).
``k-monotonicity``
    The top-``k`` of a ``k+1``-NN answer is the ``k``-NN answer: running
    the same workload with ``k+1`` must reproduce each ``k`` answer as a
    strict prefix.
``containment``
    Range-widening consistency against raw positions: every live object
    strictly inside the answer's k-th distance must be *in* the answer,
    no reported neighbor may lie outside it, and widening the radius can
    only add objects.  Checked per cycle with a direct numpy scan of the
    session's own population — no second engine involved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from .differential import MethodSpec, RunResult, run_workload
from .trace import Workload

CHECKS = ("translation", "scale", "k_monotonicity", "containment")


@dataclass(frozen=True)
class MetamorphicFailure:
    check: str
    method: str
    cycle: int
    hid: Optional[int]
    detail: str

    def describe(self) -> str:
        where = f"cycle {self.cycle}"
        if self.hid is not None:
            where += f", query hid={self.hid}"
        return f"[{self.check}] {self.method} at {where}: {self.detail}"


def _transform_workload(workload: Workload, fn) -> Workload:
    """Apply ``fn`` to every coordinate pair in the event stream."""
    out = workload.copy()
    out.digests = None
    for events in out.cycles:
        for ev in events:
            if "xy" not in ev:
                continue
            if ev["t"] == "move":
                ev["xy"] = [fn(xy) for xy in ev["xy"]]
            else:
                ev["xy"] = fn(ev["xy"])
    return out


def scale_workload(workload: Workload, factor: float) -> Workload:
    """Scale every coordinate by ``factor`` (exact for powers of two)."""
    return _transform_workload(
        workload, lambda xy: [xy[0] * factor, xy[1] * factor]
    )


def translate_workload(workload: Workload, dx: float, dy: float) -> Workload:
    """Translate every coordinate by ``(dx, dy)``."""
    return _transform_workload(workload, lambda xy: [xy[0] + dx, xy[1] + dy])


def _first_answer_mismatch(a: RunResult, b: RunResult, map_dist):
    """First (cycle, hid, detail) where b's answers aren't map_dist(a's)."""
    for cycle, (ca, cb) in enumerate(zip(a.answers, b.answers)):
        da, db = dict(ca), dict(cb)
        if set(da) != set(db):
            return cycle, None, f"query sets differ: {sorted(da)} vs {sorted(db)}"
        for hid in sorted(da):
            want = tuple((oid, map_dist(d)) for oid, d in da[hid])
            if want != db[hid]:
                return cycle, hid, f"expected {want}, got {db[hid]}"
    if len(a.answers) != len(b.answers):
        return (
            min(len(a.answers), len(b.answers)),
            None,
            f"cycle counts differ: {len(a.answers)} vs {len(b.answers)}",
        )
    return None


def check_translation(
    spec: MethodSpec,
    workload: Workload,
    *,
    offset=(0.25, 0.25),
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MetamorphicFailure]:
    """Answers must be identical (ids and distance bits) under translation."""
    verify = registry if registry is not None else NULL_REGISTRY
    verify.inc("verify.metamorphic.checks")
    # Scale into [0, 0.5]^2 first so the translated run stays in-region;
    # both transforms are exact, so distances must match bitwise.
    base_w = scale_workload(workload, 0.5)
    moved_w = translate_workload(base_w, float(offset[0]), float(offset[1]))
    base = run_workload(spec, base_w, registry=verify)
    moved = run_workload(spec, moved_w, registry=verify)
    if not base.ok or not moved.ok:
        return _error_failure("translation", spec, base, moved)
    bad = _first_answer_mismatch(base, moved, lambda d: d)
    if bad is None:
        return None
    verify.inc("verify.metamorphic.failures")
    return MetamorphicFailure("translation", spec.label, *bad)


def check_scale(
    spec: MethodSpec,
    workload: Workload,
    *,
    factor: float = 0.5,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MetamorphicFailure]:
    """Scaling by a power of two scales every distance exactly."""
    verify = registry if registry is not None else NULL_REGISTRY
    verify.inc("verify.metamorphic.checks")
    base = run_workload(spec, workload, registry=verify)
    scaled = run_workload(
        spec, scale_workload(workload, factor), registry=verify
    )
    if not base.ok or not scaled.ok:
        return _error_failure("scale", spec, base, scaled)
    bad = _first_answer_mismatch(base, scaled, lambda d: d * factor)
    if bad is None:
        return None
    verify.inc("verify.metamorphic.failures")
    return MetamorphicFailure("scale", spec.label, *bad)


def check_k_monotonicity(
    spec: MethodSpec,
    workload: Workload,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MetamorphicFailure]:
    """top-k of the (k+1)-NN answer must equal the k-NN answer."""
    verify = registry if registry is not None else NULL_REGISTRY
    verify.inc("verify.metamorphic.checks")
    wider = replace(workload.copy(), k=workload.k + 1)
    if not _supports_k(wider):
        return None  # population dips below k+1 somewhere; not applicable
    base = run_workload(spec, workload, registry=verify)
    plus = run_workload(spec, wider, registry=verify)
    if not base.ok or not plus.ok:
        return _error_failure("k_monotonicity", spec, base, plus)
    k = workload.k
    for cycle, (ca, cb) in enumerate(zip(base.answers, plus.answers)):
        da, db = dict(ca), dict(cb)
        for hid in sorted(da):
            if da[hid] != db[hid][:k]:
                verify.inc("verify.metamorphic.failures")
                return MetamorphicFailure(
                    "k_monotonicity",
                    spec.label,
                    cycle,
                    hid,
                    f"k={k} answer {da[hid]} is not the prefix of "
                    f"k={k + 1} answer {db[hid]}",
                )
    return None


def check_containment(
    spec: MethodSpec,
    workload: Workload,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> Optional[MetamorphicFailure]:
    """Answers must contain every object strictly inside their k-th radius."""
    verify = registry if registry is not None else NULL_REGISTRY
    verify.inc("verify.metamorphic.checks")
    run = run_workload(spec, workload, registry=verify, collect_populations=True)
    if not run.ok:
        return _error_failure("containment", spec, run, run)
    for cycle, (canon, (ids, pos, queries)) in enumerate(
        zip(run.answers, run.populations)
    ):
        for row, (hid, neighbors) in enumerate(canon):
            if not neighbors:
                continue
            q = queries[row]
            # Same operations as the engines: (dx^2 + dy^2) then sqrt,
            # so the comparison below is exact, not epsilon-based.
            diff = pos - q
            dists = np.sqrt(diff[:, 0] ** 2 + diff[:, 1] ** 2)
            kth = neighbors[-1][1]
            answer_ids = {oid for oid, _ in neighbors}
            inside = {int(i) for i in ids[dists < kth]}
            if not inside <= answer_ids:
                verify.inc("verify.metamorphic.failures")
                return MetamorphicFailure(
                    "containment",
                    spec.label,
                    cycle,
                    hid,
                    f"objects {sorted(inside - answer_ids)} lie strictly "
                    f"inside the k-th distance {kth!r} but are missing "
                    "from the answer",
                )
            outside = [d for _, d in neighbors if d > kth]
            if outside:
                verify.inc("verify.metamorphic.failures")
                return MetamorphicFailure(
                    "containment",
                    spec.label,
                    cycle,
                    hid,
                    f"neighbor distances {outside} exceed the k-th "
                    f"distance {kth!r}",
                )
            # Range widening: the population inside radius r is a subset
            # of the population inside 2r — checked on the same scan.
            if not inside <= {int(i) for i in ids[dists < 2.0 * kth]}:
                verify.inc("verify.metamorphic.failures")
                return MetamorphicFailure(
                    "containment",
                    spec.label,
                    cycle,
                    hid,
                    "widening the radius lost objects (broken scan)",
                )
    return None


def run_metamorphic(
    spec: MethodSpec,
    workload: Workload,
    *,
    checks=CHECKS,
    registry: Optional[MetricsRegistry] = None,
) -> List[MetamorphicFailure]:
    """Run the named invariant checks; returns all failures found."""
    table = {
        "translation": check_translation,
        "scale": check_scale,
        "k_monotonicity": check_k_monotonicity,
        "containment": check_containment,
    }
    failures = []
    for name in checks:
        fn = table.get(name)
        if fn is None:
            raise ValueError(
                f"unknown metamorphic check {name!r}; known: "
                + ", ".join(sorted(table))
            )
        failure = fn(spec, workload, registry=registry)
        if failure is not None:
            failures.append(failure)
    return failures


def _supports_k(workload: Workload) -> bool:
    from .trace import workload_valid

    return workload_valid(workload)


def _error_failure(
    check: str, spec: MethodSpec, a: RunResult, b: RunResult
) -> MetamorphicFailure:
    detail = a.error or b.error or "run failed"
    return MetamorphicFailure(check, spec.label, -1, None, f"run error: {detail}")
