"""Differential execution: one workload, many engines, exact answer diffs.

The repo's strongest correctness claim is that every registered exact
method returns *the same bits* — same neighbor ids in the same order,
same float64 distances — for any workload.  This module operationalizes
that claim: :func:`run_workload` replays a recorded
:class:`~repro.verify.trace.Workload` against one engine and collects
its canonical per-cycle answers; :func:`run_differential` runs the same
workload across a set of :class:`MethodSpec` entries (including
``sharded`` with live worker processes) and reports the **first
divergence** — cycle, query, both answer lists, and each engine's
per-cycle candidate/scan counters for that cycle.

Comparison is ``(distance, id)``-tuple exact.  Distances are float64
and every engine computes ``(qx-x)**2 + (qy-y)**2`` with the same IEEE
operations, so equality is bitwise — there is no epsilon anywhere in
this module, by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..service import MonitoringSession
from .trace import CanonCycle, Workload, canonical_cycle, digest_cycle

#: Methods whose answers are exact and therefore diffable bit-for-bit.
#: ``tpr`` is deliberately absent: the TPR-tree answers *predicted*
#: positions, which is a different (approximate) contract.
EXACT_METHODS: Tuple[str, ...] = (
    "brute_force",
    "object_indexing",
    "query_indexing",
    "hierarchical",
    "rtree",
    "fast_grid",
    "delta_grid",
    "sharded",
)

#: Counter-name substrings worth surfacing next to a divergence.
_CANDIDATE_KEYS = ("candidate", "scanned", "visited", "reused", "answered")


@dataclass(frozen=True)
class MethodSpec:
    """One engine under test: registry method name plus options."""

    method: str
    options: Mapping[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        if not self.options:
            return self.method
        opts = ",".join(f"{k}={v}" for k, v in sorted(self.options.items()))
        return f"{self.method}({opts})"


def make_specs(
    methods: Sequence[str],
    *,
    overrides: Optional[Mapping[str, object]] = None,
    sharded_workers: int = 0,
) -> List[MethodSpec]:
    """Build specs for method names, applying per-method-valid overrides.

    ``"all"`` expands to :data:`EXACT_METHODS`.  ``overrides`` (e.g. an
    ``ncells`` sweep value) are applied only to methods whose config
    declares the field; ``sharded_workers`` configures the sharded spec
    (0 = in-process serial fallback — same stripe code path, no pool).
    """
    from ..core.config import METHOD_CONFIGS

    names: List[str] = []
    for name in methods:
        if name == "all":
            names.extend(EXACT_METHODS)
        else:
            names.append(name)
    specs = []
    for name in dict.fromkeys(names):  # preserve order, dedupe
        opts: Dict[str, object] = {}
        cfg = METHOD_CONFIGS.get(name)
        valid = cfg.valid_fields() if cfg is not None else ()
        for key, value in (overrides or {}).items():
            if key in valid:
                opts[key] = value
        if name == "sharded":
            opts.setdefault("workers", sharded_workers)
            opts.setdefault("shards", 2)
            if sharded_workers > 0:
                opts.setdefault("oversubscribe", True)
        specs.append(MethodSpec(name, opts))
    return specs


@dataclass
class RunResult:
    """One engine's full run over a workload."""

    spec: MethodSpec
    answers: List[CanonCycle] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)
    #: Per-cycle metric deltas (from the engine's own registry).
    cycle_counters: List[Optional[Mapping[str, float]]] = field(
        default_factory=list
    )
    #: Per-cycle ``(object_ids, positions, query_points)`` snapshots,
    #: collected only when requested (metamorphic containment needs them).
    populations: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def run_workload(
    spec: MethodSpec,
    workload: Workload,
    *,
    registry: Optional[MetricsRegistry] = None,
    collect_populations: bool = False,
    recorder=None,
) -> RunResult:
    """Replay one workload against one engine, collecting exact answers.

    Trace hids are remapped to the fresh session's handles, so traces
    stay replayable after the shrinker removes queries.  A
    :class:`~repro.errors.ReproError` raised mid-run (e.g. the population
    dropping under ``k``) is captured on the result, not propagated —
    the fuzzer and shrinker treat such runs as invalid, not divergent.
    """
    verify = registry if registry is not None else NULL_REGISTRY
    result = RunResult(spec)
    engine_metrics = MetricsRegistry()
    session = MonitoringSession(
        spec.method, k=workload.k, registry=engine_metrics, **dict(spec.options)
    )
    if recorder is not None:
        session.attach_recorder(recorder)
    handle_of: Dict[int, object] = {}  # trace hid -> live QueryHandle
    hid_of: Dict[int, int] = {}  # session handle id -> trace hid
    try:
        with session:
            for events in workload.cycles:
                for ev in events:
                    kind = ev["t"]
                    if kind == "join":
                        session.join_object(ev["oid"], ev["xy"])
                    elif kind == "leave":
                        session.leave_object(ev["oid"])
                    elif kind == "reg":
                        handle = session.register_query(ev["xy"])
                        handle_of[ev["hid"]] = handle
                        hid_of[handle.id] = ev["hid"]
                    elif kind == "drop":
                        session.drop_query(handle_of.pop(ev["hid"]))
                    elif kind == "move":
                        session.update_positions(
                            np.asarray(ev["xy"], dtype=np.float64),
                            object_ids=np.asarray(ev["oids"]),
                        )
                    else:  # pragma: no cover - load_trace already rejects
                        raise ValueError(f"unknown event type {kind!r}")
                answers = session.tick()
                canon = canonical_cycle(answers, hid_of)
                result.answers.append(canon)
                result.digests.append(digest_cycle(canon))
                record = session.system.pipeline.last_record
                result.cycle_counters.append(record.counters)
                if collect_populations:
                    ids, pos = session.population()
                    result.populations.append(
                        (ids, pos, session.query_points())
                    )
                verify.inc("verify.replay.cycles")
    except ReproError as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    verify.inc("verify.replay.runs")
    return result


@dataclass(frozen=True)
class Divergence:
    """The first cycle/query where an engine's answers left the baseline."""

    baseline: str
    method: str
    cycle: int
    hid: Optional[int]  #: diverging query (None: cycle-level shape mismatch)
    expected: object
    got: object
    #: candidate/scan counter deltas for the divergent cycle, per engine.
    baseline_counters: Mapping[str, float] = field(default_factory=dict)
    method_counters: Mapping[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"{self.method} diverged from {self.baseline} at cycle "
            f"{self.cycle}"
            + (f", query hid={self.hid}" if self.hid is not None else ""),
            f"  {self.baseline}: {self.expected}",
            f"  {self.method}: {self.got}",
        ]
        for name, counters in (
            (self.baseline, self.baseline_counters),
            (self.method, self.method_counters),
        ):
            if counters:
                stats = ", ".join(
                    f"{k}={v:g}" for k, v in sorted(counters.items())
                )
                lines.append(f"  {name} cycle counters: {stats}")
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Result of one differential run across a set of methods."""

    workload: Workload
    results: List[RunResult]
    divergences: List[Divergence] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.errors

    @property
    def first_divergence(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None


def _candidate_counters(
    counters: Optional[Mapping[str, float]]
) -> Dict[str, float]:
    if not counters:
        return {}
    return {
        k: v
        for k, v in counters.items()
        if any(sub in k for sub in _CANDIDATE_KEYS) and not k.startswith("span.")
    }


def _first_divergence(
    base: RunResult, other: RunResult
) -> Optional[Divergence]:
    for cycle, (want, got) in enumerate(zip(base.answers, other.answers)):
        if want == got:
            continue
        hid: Optional[int] = None
        expected: object = want
        actual: object = got
        want_by_hid = dict(want)
        got_by_hid = dict(got)
        if set(want_by_hid) == set(got_by_hid):
            for h in sorted(want_by_hid):
                if want_by_hid[h] != got_by_hid[h]:
                    hid = h
                    expected = want_by_hid[h]
                    actual = got_by_hid[h]
                    break
        return Divergence(
            base.spec.label,
            other.spec.label,
            cycle,
            hid,
            expected,
            actual,
            _candidate_counters(base.cycle_counters[cycle]),
            _candidate_counters(other.cycle_counters[cycle]),
        )
    if len(base.answers) != len(other.answers):
        return Divergence(
            base.spec.label,
            other.spec.label,
            min(len(base.answers), len(other.answers)),
            None,
            f"{len(base.answers)} cycles",
            f"{len(other.answers)} cycles",
        )
    return None


def run_differential(
    workload: Workload,
    specs: Sequence[MethodSpec],
    *,
    registry: Optional[MetricsRegistry] = None,
    stop_at_first: bool = False,
) -> DiffReport:
    """Run ``workload`` across ``specs`` and diff everyone against the first.

    The first spec is the baseline (conventionally ``brute_force``).
    Answers are compared cycle-by-cycle with ``(distance, id)``-tuple
    exactness; the report carries one :class:`Divergence` per deviating
    method (each pinned to its first bad cycle/query).
    """
    verify = registry if registry is not None else NULL_REGISTRY
    if len(specs) < 2:
        raise ValueError("differential run needs at least two method specs")
    base = run_workload(specs[0], workload, registry=verify)
    report = DiffReport(workload, [base])
    if not base.ok:
        report.errors.append(f"{base.spec.label}: {base.error}")
        return report
    for spec in specs[1:]:
        other = run_workload(spec, workload, registry=verify)
        report.results.append(other)
        if not other.ok:
            report.errors.append(f"{other.spec.label}: {other.error}")
            continue
        verify.inc("verify.diff.cycles_compared", len(base.answers))
        verify.inc(
            "verify.diff.queries_compared",
            sum(len(c) for c in base.answers),
        )
        div = _first_divergence(base, other)
        if div is not None:
            report.divergences.append(div)
            verify.inc("verify.diff.divergences")
            if stop_at_first:
                break
    verify.inc("verify.diff.runs")
    return report


# ----------------------------------------------------------------------
# Replay (single-engine re-execution with digest checking)
# ----------------------------------------------------------------------
@dataclass
class ReplayResult:
    """One replay of a trace, with digest verification when requested."""

    run: RunResult
    checked: bool = False
    mismatches: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.run.ok and not self.mismatches


def replay(
    workload: Workload,
    *,
    method: Optional[str] = None,
    options: Optional[Mapping[str, object]] = None,
    check: bool = False,
    registry: Optional[MetricsRegistry] = None,
) -> ReplayResult:
    """Re-execute a recorded workload; optionally verify stored digests.

    Without overrides the trace header's engine config is used, which is
    the bit-identical reproduction path: same method, same options, same
    event stream → same answers and the same per-cycle digests, across
    any number of invocations.
    """
    verify = registry if registry is not None else NULL_REGISTRY
    spec = MethodSpec(
        method if method is not None else (workload.method or "brute_force"),
        dict(options if options is not None else workload.options),
    )
    run = run_workload(spec, workload, registry=verify)
    result = ReplayResult(run)
    if check:
        if workload.digests is None:
            raise ValueError("trace carries no digests to check against")
        result.checked = True
        for cycle, (want, got) in enumerate(zip(workload.digests, run.digests)):
            if want is not None and want != got:
                result.mismatches.append(cycle)
                verify.inc("verify.replay.digest_mismatches")
    return result
