"""``python -m repro.verify`` — record, replay, diff, and fuzz workloads.

Subcommands:

``record``
    Generate the seeded scenario for ``--seed`` and record it through a
    live session (the :class:`~repro.verify.recorder.TraceRecorder`
    hooks), writing a trace with per-cycle answer digests.
``replay``
    Re-execute a trace.  ``--check`` verifies the stored digests;
    ``--repeat N`` runs it N times and asserts the runs are
    bit-identical to each other (answers *and* ``verify.*`` counters).
``diff``
    Run one trace across several engines and report the first
    divergence per engine (cycle, query, both answers, candidate
    counters).
``fuzz``
    Differential fuzzing over seeded scenarios; on divergence the
    failing workload is shrunk to a minimal trace and written to the
    artifacts directory.  Exit status 1 on any divergence.

Every command prints its ``verify.*`` counters on completion.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..obs.registry import MetricsRegistry
from .differential import (
    EXACT_METHODS,
    MethodSpec,
    make_specs,
    replay,
    run_differential,
)
from .metamorphic import CHECKS, run_metamorphic
from .recorder import TraceRecorder
from .scenarios import make_scenario
from .shrink import shrink_workload
from .trace import Workload, load_trace, save_trace


def _print_counters(registry: MetricsRegistry) -> None:
    counters = {
        k: v
        for k, v in sorted(registry.counter_values().items())
        if k.startswith("verify.")
    }
    if counters:
        print("verify counters:")
        for name, value in counters.items():
            print(f"  {name} = {value:g}")


def _parse_methods(raw: str) -> List[str]:
    return [m.strip() for m in raw.split(",") if m.strip()]


def cmd_record(args: argparse.Namespace) -> int:
    from .differential import run_workload

    registry = MetricsRegistry()
    scenario = make_scenario(args.seed, cycles=args.cycles)
    method = args.method or "fast_grid"
    recorder = TraceRecorder(
        scenario.workload.k,
        method=method,
        options=scenario.engine_overrides,
        meta=dict(scenario.workload.meta),
        registry=registry,
    )
    spec = MethodSpec(method, scenario.engine_overrides)
    result = run_workload(
        spec, scenario.workload, registry=registry, recorder=recorder
    )
    if not result.ok:
        print(f"record failed: {result.error}", file=sys.stderr)
        return 1
    recorder.save(args.out)
    print(f"recorded {scenario.describe()}")
    print(
        f"wrote {args.out}: {len(scenario.workload.cycles)} cycles, "
        f"{scenario.workload.n_events} events, method={method}"
    )
    _print_counters(registry)
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    workload = load_trace(args.trace)
    options = json.loads(args.options) if args.options else None
    digest_sets = []
    for _ in range(max(1, args.repeat)):
        result = replay(
            workload,
            method=args.method,
            options=options,
            check=args.check,
            registry=registry,
        )
        if not result.run.ok:
            print(f"replay failed: {result.run.error}", file=sys.stderr)
            return 1
        if result.mismatches:
            print(
                f"digest mismatch at cycle(s) {result.mismatches}: the "
                "replayed engine does not reproduce the recorded answers",
                file=sys.stderr,
            )
            return 1
        digest_sets.append(result.run.digests)
    if any(d != digest_sets[0] for d in digest_sets[1:]):
        print("replay is not deterministic across repeats", file=sys.stderr)
        return 1
    print(
        f"replayed {workload.n_cycles} cycles x {max(1, args.repeat)} "
        f"run(s): bit-identical"
        + (", digests verified" if args.check else "")
    )
    _print_counters(registry)
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    workload = load_trace(args.trace)
    specs = make_specs(
        _parse_methods(args.methods),
        overrides=workload.options,
        sharded_workers=args.sharded_workers,
    )
    report = run_differential(workload, specs, registry=registry)
    for error in report.errors:
        print(f"run error: {error}", file=sys.stderr)
    for div in report.divergences:
        print(div.describe(), file=sys.stderr)
    if report.ok:
        print(
            f"{len(specs)} engines agree bit-for-bit over "
            f"{workload.n_cycles} cycles"
        )
    _print_counters(registry)
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    methods = _parse_methods(args.methods)
    failures = 0
    for index in range(args.scenarios):
        seed = args.seed + index
        scenario = make_scenario(seed)
        registry.inc("verify.fuzz.scenarios")
        specs = make_specs(
            methods,
            overrides=scenario.engine_overrides,
            sharded_workers=args.sharded_workers,
        )
        report = run_differential(scenario.workload, specs, registry=registry)
        if report.errors:
            failures += 1
            registry.inc("verify.fuzz.errors")
            for error in report.errors:
                print(f"[seed {seed}] run error: {error}", file=sys.stderr)
            continue
        if not report.ok:
            failures += 1
            registry.inc("verify.fuzz.failures")
            div = report.first_divergence
            assert div is not None
            print(f"[seed {seed}] {scenario.describe()}", file=sys.stderr)
            print(div.describe(), file=sys.stderr)
            _shrink_and_dump(
                scenario.workload, specs, div.cycle, seed, args, registry
            )
        elif args.metamorphic and index % args.metamorphic_every == 0:
            for failure in run_metamorphic(
                specs[-1] if len(specs) > 1 else specs[0],
                scenario.workload,
                checks=args.checks,
                registry=registry,
            ):
                failures += 1
                registry.inc("verify.fuzz.failures")
                print(f"[seed {seed}] {failure.describe()}", file=sys.stderr)
        if args.progress and (index + 1) % 10 == 0:
            print(f"... {index + 1}/{args.scenarios} scenarios", flush=True)
    print(
        f"fuzzed {args.scenarios} scenarios across {len(methods)} method "
        f"spec(s): {failures} failure(s)"
    )
    _print_counters(registry)
    return 0 if failures == 0 else 1


def _shrink_and_dump(
    workload: Workload,
    specs,
    divergence_cycle: int,
    seed: int,
    args: argparse.Namespace,
    registry: MetricsRegistry,
) -> None:
    def still_fails(candidate: Workload) -> bool:
        report = run_differential(
            candidate, specs, registry=registry, stop_at_first=True
        )
        return bool(report.divergences)

    shrunk = shrink_workload(
        workload,
        still_fails,
        first_divergence_cycle=divergence_cycle,
        max_runs=args.shrink_budget,
        registry=registry,
    )
    os.makedirs(args.artifacts, exist_ok=True)
    path = os.path.join(args.artifacts, f"shrunk_seed{seed}.jsonl")
    save_trace(shrunk.workload, path)
    final = run_differential(shrunk.workload, specs, registry=registry)
    report_path = os.path.join(args.artifacts, f"shrunk_seed{seed}.report.json")
    with open(report_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "seed": seed,
                "methods": [s.label for s in specs],
                "shrink": shrunk.describe(),
                "divergences": [d.describe() for d in final.divergences],
                "cycles": shrunk.workload.n_cycles,
                "events": shrunk.workload.n_events,
            },
            fh,
            indent=2,
        )
    print(f"[seed {seed}] {shrunk.describe()}", file=sys.stderr)
    print(f"[seed {seed}] minimal trace: {path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential conformance harness: record, replay, "
        "diff, and fuzz monitoring workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="generate + record a seeded scenario")
    p.add_argument("--out", required=True, help="trace path (.jsonl/.jsonl.gz/.npz)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cycles", type=int, default=None)
    p.add_argument("--method", default=None, help="engine to record (default fast_grid)")
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("replay", help="re-execute a recorded trace")
    p.add_argument("trace")
    p.add_argument("--method", default=None, help="override the trace's engine")
    p.add_argument("--options", default=None, help="JSON engine options override")
    p.add_argument("--check", action="store_true", help="verify recorded digests")
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay N times and require bit-identical runs",
    )
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("diff", help="diff one trace across engines")
    p.add_argument("trace")
    p.add_argument(
        "--methods",
        default="all",
        help=f"comma list or 'all' (= {','.join(EXACT_METHODS)})",
    )
    p.add_argument("--sharded-workers", type=int, default=0)
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("fuzz", help="differential fuzzing over seeded scenarios")
    p.add_argument("--scenarios", type=int, default=20)
    p.add_argument("--seed", type=int, default=0, help="first scenario seed")
    p.add_argument("--methods", default="all")
    p.add_argument("--sharded-workers", type=int, default=0)
    p.add_argument("--artifacts", default="artifacts")
    p.add_argument("--shrink-budget", type=int, default=250)
    p.add_argument(
        "--metamorphic",
        action="store_true",
        help="also run metamorphic invariants on passing scenarios",
    )
    p.add_argument("--metamorphic-every", type=int, default=5)
    p.add_argument(
        "--checks",
        nargs="+",
        default=list(CHECKS),
        choices=list(CHECKS),
    )
    p.add_argument("--progress", action="store_true")
    p.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
