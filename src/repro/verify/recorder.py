"""Record a live :class:`~repro.service.MonitoringSession` to a trace.

Attach a :class:`TraceRecorder` via
:meth:`~repro.service.MonitoringSession.attach_recorder` and every
successfully admitted lifecycle call, every position update, and every
tick's canonical answers flow into an in-memory :class:`Workload`.
Deferred admissions (:class:`~repro.service.AdmissionDeferred`) and
calls that raise are *not* recorded — the trace holds exactly the calls
that changed session state, which is what makes replay bit-identical.

The session notifies the recorder through two duck-typed methods —
``on_event(dict)`` and ``on_tick(answers)`` — so the service layer never
imports the verify subsystem.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from .trace import Workload, canonical_cycle, digest_cycle, save_trace


class TraceRecorder:
    """Accumulates one session's event stream and per-cycle digests."""

    def __init__(
        self,
        k: int,
        method: Optional[str] = None,
        options: Optional[Mapping[str, object]] = None,
        meta: Optional[Mapping[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._workload = Workload(
            k=k,
            method=method,
            options=dict(options or {}),
            meta=dict(meta or {}),
            digests=[],
        )
        self._current: list = []
        self._registry = registry if registry is not None else NULL_REGISTRY

    # -- session hook interface ----------------------------------------
    def on_event(self, event: dict) -> None:
        """One admitted lifecycle call or position update (in call order)."""
        self._current.append(event)
        self._registry.inc("verify.record.events")

    def on_tick(self, answers: Mapping) -> None:
        """One completed cycle: close the event batch, digest the answers."""
        canon = canonical_cycle(answers)
        self._workload.cycles.append(self._current)
        assert self._workload.digests is not None
        self._workload.digests.append(digest_cycle(canon))
        self._current = []
        self._registry.inc("verify.record.cycles")

    # -- results -------------------------------------------------------
    def workload(self) -> Workload:
        """The recorded workload (complete cycles only)."""
        return self._workload.copy()

    def save(self, path: str) -> None:
        """Write the recorded trace (see :func:`repro.verify.trace.save_trace`)."""
        save_trace(self._workload, path)
