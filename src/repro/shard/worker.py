"""Shard worker process: attach shared memory, serve cycle tasks.

Each worker is a single loop over a duplex :class:`multiprocessing.Pipe`:

``{"cmd": "cycle", ...}``
    run :func:`~repro.shard.tasks.run_shard_task` against the snapshot
    named by ``shm``/``n`` and send back a ``{"cmd": "result", ...}``
    message tagged with the task id.
``{"cmd": "ping", "seq": s}``
    heartbeat; reply ``{"cmd": "pong", "seq": s}`` immediately.
``{"cmd": "stop"}``
    clean shutdown.

Workers are deliberately stateless between cycles except for two caches:
the attached :class:`~multiprocessing.shared_memory.SharedMemory` segment
(re-attached only when the parent grows the buffer and its name changes)
and the ``(cycle, shard)`` CSR cache that serves escalation rounds.  A
SIGKILL therefore loses nothing the parent cannot recreate by re-sending
the task to a fresh worker.

If the parent dies, ``recv`` raises ``EOFError`` (the parent's pipe end
closes) and the worker exits on its own.
"""

from __future__ import annotations

import signal
from multiprocessing import shared_memory
from typing import Dict

import numpy as np

from ..obs.remote import WorkerTelemetry
from .tasks import CSRCache, run_shard_task


def _attach_snapshot(
    shm_cache: Dict[str, shared_memory.SharedMemory], name: str, n: int
) -> np.ndarray:
    """An ``(n, 2)`` float64 view over the named shared-memory segment.

    The parent owns the segment's lifetime (it unlinks on shutdown); the
    worker must *not* let its resource tracker claim it, or a killed
    worker's tracker would unlink a segment the parent is still using.
    Python 3.13+ has ``track=False`` for this; earlier versions need the
    unregister workaround.
    """
    shm = shm_cache.get(name)
    if shm is None:
        for old_name in list(shm_cache):
            shm_cache.pop(old_name).close()
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Pre-3.13: suppress the attach-time registration instead of
            # unregistering afterwards — under fork the worker shares the
            # parent's tracker, and an unregister there would drop the
            # parent's own registration.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        shm_cache[name] = shm
    return np.ndarray((n, 2), dtype=np.float64, buffer=shm.buf)


def worker_main(worker_id: int, conn) -> None:
    """Entry point of one shard worker process."""
    # The parent handles interrupts; a Ctrl-C in an interactive session
    # must not kill workers mid-task (crash recovery would mask it).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    shm_cache: Dict[str, shared_memory.SharedMemory] = {}
    csr_cache: CSRCache = {}
    # Persistent so the local registry/tracer (built only if a task ever
    # arrives with obs=True) stay warm across tasks; each task ships its
    # own counter delta, so persistence never double-reports.
    telemetry = WorkerTelemetry()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            cmd = msg.get("cmd")
            if cmd == "stop":
                break
            if cmd == "ping":
                conn.send({"cmd": "pong", "worker": worker_id, "seq": msg.get("seq")})
                continue
            if cmd == "cycle":
                positions = _attach_snapshot(
                    shm_cache, msg["shm"], int(msg["n"])
                )
                out = run_shard_task(
                    positions, msg, cache=csr_cache, telemetry=telemetry
                )
                out["cmd"] = "result"
                out["worker"] = worker_id
                out["task"] = msg["task"]
                conn.send(out)
    finally:
        for shm in shm_cache.values():
            try:
                shm.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass
