"""Stateless shard tasks: build one stripe's CSR snapshot, answer queries.

One *cycle task* asks a worker to (a) select the objects of one stripe
out of the shared-memory snapshot, (b) build a region-aware
:class:`~repro.core.fast_index.CSRGrid` over the stripe, and (c) run
:func:`~repro.core.fast_index.batch_knn` for the queries routed to it.
Escalation rounds of the same cycle hit the worker's ``(cycle, shard)``
CSR cache, so the snapshot is indexed at most once per shard per cycle
no matter how many query batches arrive.

Tasks carry everything they need (shard id, shard count, k, query
coordinates) so a re-dispatched task after a worker crash is exactly the
original payload sent to a fresh process — no worker state survives a
crash, and none needs to.

The same :func:`run_shard_task` powers the ``workers=0`` serial
fallback: the engine calls it in-process with its own cache dict, which
guarantees the serial and multiprocess paths cannot diverge.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.fast_index import CSRGrid, batch_knn
from .partition import StripePartition, shard_grid_shape

#: Worker-side CSR cache type: ``(cycle, shard) -> CSRGrid``.
CSRCache = Dict[Tuple[int, int], CSRGrid]


def build_shard_csr(
    positions: np.ndarray, shard: int, n_shards: int
) -> CSRGrid:
    """CSR snapshot of one stripe, carrying global object IDs.

    ``positions`` is the *full* ``(n, 2)`` snapshot (typically a view
    over shared memory); membership is recomputed here with the same
    floor rule the parent's router uses, so boundary objects agree.
    The CSRGrid copies the selected rows out of the buffer — nothing
    retains a reference into shared memory after this returns.
    """
    partition = StripePartition(n_shards)
    sel = np.flatnonzero(partition.shard_of(positions[:, 0]) == shard)
    nx, ny = shard_grid_shape(len(sel), n_shards)
    return CSRGrid(
        positions[sel],
        region=partition.region(shard),
        nx=nx,
        ny=ny,
        object_ids=sel,
    )


def run_shard_task(
    positions: np.ndarray,
    task: Dict[str, object],
    cache: Optional[CSRCache] = None,
) -> Dict[str, object]:
    """Execute one cycle task against the given snapshot.

    ``task`` fields: ``shard``, ``n_shards``, ``cycle``, ``k``, ``qx``,
    ``qy`` (routed query coordinates).  Returns the per-query top-k
    blocks (``inf``/``-1`` padded when the stripe holds fewer than ``k``
    objects) plus build/answer timings for the dispatch metrics.
    """
    shard = int(task["shard"])
    n_shards = int(task["n_shards"])
    cycle = int(task["cycle"])
    k = int(task["k"])

    t0 = perf_counter()
    key = (cycle, shard)
    csr = cache.get(key) if cache is not None else None
    if csr is None:
        csr = build_shard_csr(positions, shard, n_shards)
        if cache is not None:
            # Snapshots of past cycles can never be asked for again.
            for stale in [key2 for key2 in cache if key2[0] != cycle]:
                del cache[stale]
            cache[key] = csr
    build_seconds = perf_counter() - t0

    t0 = perf_counter()
    result = batch_knn(csr, task["qx"], task["qy"], k)
    answer_seconds = perf_counter() - t0

    return {
        "shard": shard,
        "cycle": cycle,
        "n_shard": csr.n_objects,
        "top_d2": result.top_d2,
        "top_ids": np.asarray(result.top_ids, dtype=np.int64),
        "build_seconds": build_seconds,
        "answer_seconds": answer_seconds,
        "stats": result.stats,
    }
