"""Shard tasks: maintain one stripe's delta-CSR snapshot, answer queries.

One *cycle task* asks a worker to (a) select the objects of one stripe
out of the shared-memory snapshot, (b) bring a region-aware
:class:`~repro.core.delta_index.DeltaCSRGrid` over the stripe up to
date, and (c) run :func:`~repro.core.fast_index.batch_knn` for the
queries routed to it.  The worker's cache keeps one *persistent* grid
per stripe across cycles: a new cycle incrementally updates it
(``grid.update(positions, member_idx=sel)`` — objects entering or
leaving the stripe are ordinary movers to the delta index), and
escalation rounds of the same cycle reuse it as-is, so the snapshot is
indexed at most once per shard per cycle no matter how many query
batches arrive.

Stripe grids run with ``track_dirty=False``: the snapshot arrives as a
view over a shared-memory buffer that the parent rewrites in place, so
old-coordinate comparisons would be unsound.  Mover detection stays
exact regardless — it diffs against the grid's own stored cell
assignments, not against the position buffer.

Tasks carry everything they need (shard id, shard count, k, query
coordinates) so a re-dispatched task after a worker crash is exactly the
original payload sent to a fresh process — a fresh process just pays one
full rebuild before returning the same answers.

**Telemetry.**  The build and answer stages run under
:class:`~repro.obs.tracing.Tracer` spans supplied by a
:class:`~repro.obs.remote.WorkerTelemetry`; their measured durations are
what the reply reports as ``build_seconds``/``answer_seconds`` (the
engine's timing attribution), so the stage times and the shipped
``span.shard_build.*``/``span.shard_answer.*`` counters can never
disagree.  When the task carries ``obs=True`` the telemetry also records
the stripe's delta-maintenance regime (``delta.*``), the answering
kernel's work counters (``fast.answer.*``) and per-task population
tallies (``shard.task.*``), and the reply piggybacks the per-task
counter deltas plus the task wall time — no extra syscalls or messages,
and nothing at all when instrumentation is off.

The same :func:`run_shard_task` powers the ``workers=0`` serial
fallback: the engine calls it in-process with its own cache dict and
telemetry, which guarantees the serial and multiprocess paths cannot
diverge — in answers *or* in counters.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.delta_index import DeltaCSRGrid
from ..core.fast_index import CSRGrid, batch_knn
from ..obs.remote import ANSWER_SPAN, BUILD_SPAN, WorkerTelemetry
from .partition import StripePartition, shard_grid_shape

#: Worker-side stripe-grid cache type: ``shard -> (cycle, epoch, grid)``.
#: The grid persists across cycles (that is the point — it updates itself
#: incrementally); the cycle tag tells an escalation round of the same
#: cycle that no maintenance is needed, and the epoch tag invalidates the
#: grid outright when the parent remapped object rows (session
#: compaction) — row-keyed cell state would silently alias otherwise.
CSRCache = Dict[int, Tuple[int, int, DeltaCSRGrid]]


def _stripe_members(
    positions: np.ndarray, partition: StripePartition, shard: int, churn: bool
) -> np.ndarray:
    """Row ids of the stripe's live objects.

    Under churn the snapshot is a row-stable *universe*: vacant rows
    carry the sentinel ``(-1, -1)`` and are filtered out before the
    ownership test (the sentinel x would otherwise clip into stripe 0).
    """
    x = positions[:, 0]
    owned = partition.shard_of(x) == shard
    if churn:
        owned &= x >= 0.0
    return np.flatnonzero(owned)


def build_shard_csr(
    positions: np.ndarray,
    shard: int,
    n_shards: int,
    bounds=None,
    churn: bool = False,
) -> CSRGrid:
    """CSR snapshot of one stripe, carrying global object IDs.

    ``positions`` is the *full* ``(n, 2)`` snapshot (typically a view
    over shared memory); membership is recomputed here with the same
    ownership rule the parent's router uses, so boundary objects agree.
    The CSRGrid copies the selected rows out of the buffer — nothing
    retains a reference into shared memory after this returns.
    """
    partition = StripePartition(n_shards, bounds)
    sel = _stripe_members(positions, partition, shard, churn)
    nx, ny = shard_grid_shape(len(sel), n_shards)
    return CSRGrid(
        positions[sel],
        region=partition.region(shard),
        nx=nx,
        ny=ny,
        object_ids=sel,
    )


def run_shard_task(
    positions: np.ndarray,
    task: Dict[str, object],
    cache: Optional[CSRCache] = None,
    telemetry: Optional[WorkerTelemetry] = None,
) -> Dict[str, object]:
    """Execute one cycle task against the given snapshot.

    ``task`` fields: ``shard``, ``n_shards``, ``cycle``, ``k``, ``qx``,
    ``qy`` (routed query coordinates); optional ``obs`` (ship telemetry),
    ``bounds`` (custom stripe edges after a rebalance), ``epoch``
    (object-row remap generation) and ``churn`` (snapshot is a row
    universe with ``(-1, -1)`` sentinel rows to skip).  Returns the
    per-query top-k blocks (``inf``/``-1`` padded when the stripe holds
    fewer than ``k`` objects) plus build/answer stage timings and — when
    ``obs`` is set — the task's counter deltas and wall time for the
    parent-side labeled merge.
    """
    shard = int(task["shard"])
    n_shards = int(task["n_shards"])
    cycle = int(task["cycle"])
    k = int(task["k"])
    epoch = int(task.get("epoch", 0))
    churn = bool(task.get("churn"))
    qx = task["qx"]

    if telemetry is None:
        telemetry = WorkerTelemetry()
    obs = bool(task.get("obs"))
    tracer = telemetry.begin(obs)
    t_task = perf_counter() if obs else 0.0

    with tracer.span(BUILD_SPAN) as build_span:
        entry = cache.get(shard) if cache is not None else None
        if entry is not None and entry[1] != epoch:
            entry = None  # object rows were remapped; cached cells lie
        maintained = False
        if entry is not None and entry[0] == cycle:
            csr = entry[2]  # escalation round: snapshot already current
        else:
            maintained = True
            partition = StripePartition(n_shards, task.get("bounds"))
            region = partition.region(shard)
            sel = _stripe_members(positions, partition, shard, churn)
            nx, ny = shard_grid_shape(len(sel), n_shards)
            if (
                entry is not None
                and entry[2].nx == nx
                and entry[2].ny == ny
                and entry[2].region == region
            ):
                csr = entry[2]
                csr.update(positions, member_idx=sel)
                if obs:
                    stats = csr.last_stats
                    telemetry.inc("delta.movers", stats.movers)
                    telemetry.inc("delta.dirty_cells", stats.dirty_cells)
                    telemetry.inc(
                        "delta.patch_cycles" if stats.mode == "patch"
                        else "delta.rebuild_cycles"
                    )
                    if stats.compacted:
                        telemetry.inc("delta.compactions")
            else:
                # First cycle, respawned worker, a rebalanced stripe
                # boundary, or the stripe population shifted enough to
                # change the grid resolution.
                csr = DeltaCSRGrid(
                    positions,
                    region=region,
                    nx=nx,
                    ny=ny,
                    track_dirty=False,
                    member_idx=sel,
                )
                telemetry.inc("shard.task.fresh_builds")
            if cache is not None:
                cache[shard] = (cycle, epoch, csr)

    with tracer.span(ANSWER_SPAN) as answer_span:
        result = batch_knn(csr, qx, task["qy"], k)

    out: Dict[str, object] = {
        "shard": shard,
        "cycle": cycle,
        "n_shard": csr.n_objects,
        "top_d2": result.top_d2,
        "top_ids": np.asarray(result.top_ids, dtype=np.int64),
        "build_seconds": build_span.duration,
        "answer_seconds": answer_span.duration,
        "stats": result.stats,
    }
    if obs:
        stats = result.stats
        telemetry.inc("shard.task.calls")
        telemetry.inc("shard.task.queries", len(qx))
        if maintained:
            # Once per (stripe, cycle): lets the parent check that the
            # maintained stripe populations sum to the full snapshot.
            telemetry.inc("shard.task.maintained")
            telemetry.inc("shard.task.objects", csr.n_objects)
        telemetry.inc("fast.answer.queries", len(qx))
        telemetry.inc("fast.answer.ring_passes", stats["ring_passes"])
        telemetry.inc("fast.answer.groups", stats["groups"])
        telemetry.inc("fast.answer.candidates", stats["candidates"])
        telemetry.inc("fast.answer.pairs", stats["pairs"])
        out["metrics"] = telemetry.deltas()
        out["task_seconds"] = perf_counter() - t_task
    return out
