"""Sharded parallel execution layer for the monitoring cycle.

Partition–index–merge over vertical stripes of the unit square: one
region-aware CSR snapshot per stripe (built from a shared-memory copy of
the cycle's positions by a persistent worker pool), seeded query routing
with exact escalation, and a global merge that preserves the (distance,
object ID) tie-break.  ``workers=0`` runs the identical shard tasks
in-process.  See DESIGN.md §9.
"""

from .engine import ShardedGridEngine
from .partition import StripePartition, shard_grid_shape
from .pool import ShardWorkerPool
from .tasks import build_shard_csr, run_shard_task
from .worker import worker_main

__all__ = [
    "ShardedGridEngine",
    "ShardWorkerPool",
    "StripePartition",
    "build_shard_csr",
    "run_shard_task",
    "shard_grid_shape",
    "worker_main",
]
