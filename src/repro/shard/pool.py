"""Persistent shard worker pool: shared-memory snapshots, crash recovery.

The pool owns ``n_workers`` long-lived processes (one duplex pipe each)
and one :class:`~multiprocessing.shared_memory.SharedMemory` segment
holding the current cycle's ``(n, 2)`` float64 snapshot.  Per cycle the
parent memcpys the positions into the segment once
(:meth:`ShardWorkerPool.write_snapshot`) and ships only tiny task
payloads down the pipes — positions are never pickled.

Failure model (the "failure/respawn state machine" of DESIGN.md §9):

* every task is recorded in its worker's ``outstanding`` map *before*
  the send, keyed by a monotonically increasing task id;
* a dead worker is detected three ways — ``BrokenPipeError`` on send,
  ``EOFError``/``OSError`` on receive (the child's pipe end closed), or
  ``Process.is_alive()`` going false while results are pending;
* detection triggers :meth:`_respawn`: the corpse is reaped, a fresh
  process is spawned on a fresh pipe, every outstanding task is re-sent
  verbatim (tasks are stateless, see :mod:`repro.shard.tasks`), the
  ``shard.respawns`` counter increments;
* results de-duplicate by task id: a task leaves ``outstanding`` when
  its result arrives, and a re-dispatched task can never produce two
  results because the old pipe is drained before the respawn and closed
  after it.

A liveness budget (``max_respawns``) turns a crash loop into an
:class:`~repro.errors.IndexStateError` instead of an infinite loop, and
a no-progress deadline (``task_timeout``) catches the hang case where a
worker is alive but wedged.

With a real registry bound the pool also emits health gauges:
``shard.pool.heartbeat_seconds{worker="i"}`` (+ ``..._max``) from each
:meth:`ShardWorkerPool.ping`, ``shard.pool.respawns`` mirroring the
lifetime respawn count, and the dispatch queue wait — result arrival
minus submit minus the worker-reported task wall time — as the
``shard.pool.queue_wait_seconds`` histogram and the
``shard.pool.last_queue_wait_seconds`` gauge.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as connection_wait
from multiprocessing.process import BaseProcess
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigurationError, IndexStateError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from .worker import worker_main


class _WorkerHandle:
    """One worker process, its pipe, and its in-flight tasks."""

    __slots__ = ("index", "process", "conn", "outstanding")

    # Late-init (always set by the pool's _spawn before any use).
    process: BaseProcess
    conn: Connection

    def __init__(self, index: int) -> None:
        self.index = index
        self.outstanding: Dict[int, dict] = {}


class ShardWorkerPool:
    """Fixed-size pool of shard workers with automatic respawn."""

    def __init__(
        self,
        n_workers: int,
        *,
        task_timeout: float = 60.0,
        max_respawns: int = 16,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"pool needs >= 1 worker, got {n_workers}")
        self.n_workers = int(n_workers)
        self.task_timeout = float(task_timeout)
        self.max_respawns = int(max_respawns)
        self.metrics = metrics
        self.respawns = 0
        self._ctx = multiprocessing.get_context()
        self._workers: List[_WorkerHandle] = []
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._shm_capacity = 0
        self._shm_key: "Optional[tuple[int, Optional[int]]]" = None
        self._shm_rows = -1
        self._task_seq = 0
        self._submit_times: Dict[int, float] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._workers:
            return
        for index in range(self.n_workers):
            handle = _WorkerHandle(index)
            self._spawn(handle)
            self._workers.append(handle)

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.index, child_conn),
            name=f"shard-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        handle.process = process
        handle.conn = parent_conn

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (fault-injection tests kill these)."""
        return [h.process.pid for h in self._workers if h.process.pid is not None]

    def shutdown(self) -> None:
        """Stop workers and release the shared-memory segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.conn.send({"cmd": "stop"})
            except Exception:
                pass
        for handle in self._workers:
            try:
                handle.process.join(timeout=1.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            except Exception:
                pass
            try:
                handle.conn.close()
            except Exception:
                pass
        self._workers = []
        if self._shm is not None:
            try:
                self._shm.close()
                self._shm.unlink()
            except Exception:
                pass
            self._shm = None
            self._shm_capacity = 0
            self._shm_key = None
            self._shm_rows = -1

    def __del__(self) -> None:  # best-effort; engines call shutdown() explicitly
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Shared-memory snapshot
    # ------------------------------------------------------------------
    def write_snapshot(
        self,
        positions: np.ndarray,
        key: "Optional[tuple[int, Optional[int]]]" = None,
    ) -> "tuple[str, int]":
        """Copy the cycle's positions into shared memory; return (name, n).

        The segment is grown (never shrunk) when the population outgrows
        it; a new segment gets a new name, which is how workers learn to
        re-attach — task payloads always carry the current name.  Under
        churn the rows are a stable object *universe* (vacant rows hold
        the ``(-1, -1)`` sentinel); the pool copies them verbatim and
        membership is the workers' concern.

        ``key`` is the snapshot's ``(store token, epoch)`` identity when
        the caller holds an epoch-versioned
        :class:`~repro.state.WorldSnapshot`: equal keys are guaranteed
        bytes-identical, so a repeat write with the same key (and no
        segment growth) skips the memcpy entirely — counted under
        ``state.shm_skips``.  ``None`` (anonymous arrays) always copies.
        """
        if self._closed:
            raise IndexStateError("pool is shut down")
        positions = np.asarray(positions, dtype=np.float64)
        n = len(positions)
        nbytes = max(16, n * 16)
        if self._shm is None or self._shm_capacity < nbytes:
            if self._shm is not None:
                self._shm.close()
                self._shm.unlink()
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._shm_capacity = nbytes
            self._shm_key = None
        if (
            key is not None
            and key == self._shm_key
            and n == self._shm_rows
        ):
            self.metrics.inc("state.shm_skips")
            return self._shm.name, n
        view = np.ndarray((n, 2), dtype=np.float64, buffer=self._shm.buf)
        np.copyto(view, positions.reshape(n, 2))
        self._shm_key = key
        self._shm_rows = n
        return self._shm.name, n

    # ------------------------------------------------------------------
    # Task dispatch / collection
    # ------------------------------------------------------------------
    def submit(self, worker_index: int, payload: dict) -> int:
        """Send one task to a worker; returns the task id."""
        if self._closed:
            raise IndexStateError("pool is shut down")
        self.start()
        handle = self._workers[worker_index % self.n_workers]
        self._task_seq += 1
        task_id = self._task_seq
        payload = dict(payload)
        payload["task"] = task_id
        handle.outstanding[task_id] = payload
        if self.metrics.enabled:
            # Submit time survives a crash/re-dispatch on purpose: the
            # queue wait of a recovered task includes the recovery.
            self._submit_times[task_id] = time.monotonic()
        try:
            handle.conn.send(payload)
        except (BrokenPipeError, OSError):
            self._respawn(handle)  # re-sends everything outstanding
        return task_id

    def collect(self) -> List[dict]:
        """Block until every outstanding task has a result; return them.

        Crash recovery happens inside this loop: dead workers are
        respawned and their outstanding tasks re-dispatched until the
        result set is complete, the respawn budget is exhausted, or no
        progress is made for ``task_timeout`` seconds.
        """
        results: List[dict] = []
        respawn_budget = self.max_respawns
        deadline = time.monotonic() + self.task_timeout
        while any(h.outstanding for h in self._workers):
            progress = False
            for handle in self._workers:
                if not handle.outstanding:
                    continue
                try:
                    while handle.conn.poll(0):
                        msg = handle.conn.recv()
                        if self._absorb(handle, msg, results):
                            progress = True
                except (EOFError, OSError):
                    respawn_budget -= 1
                    if respawn_budget < 0:
                        raise IndexStateError(
                            f"shard worker {handle.index} crash loop: "
                            f"exceeded {self.max_respawns} respawns in one collect"
                        )
                    self._respawn(handle)
                    progress = True
                    continue
                if handle.outstanding and not handle.process.is_alive():
                    # Died without closing the pipe cleanly (SIGKILL while
                    # idle between recv and send); pipe already drained.
                    respawn_budget -= 1
                    if respawn_budget < 0:
                        raise IndexStateError(
                            f"shard worker {handle.index} crash loop: "
                            f"exceeded {self.max_respawns} respawns in one collect"
                        )
                    self._respawn(handle)
                    progress = True
            if progress:
                deadline = time.monotonic() + self.task_timeout
                continue
            if time.monotonic() > deadline:
                pending = {h.index: sorted(h.outstanding) for h in self._workers if h.outstanding}
                raise IndexStateError(
                    f"shard workers made no progress for {self.task_timeout:.0f}s; "
                    f"pending tasks: {pending}"
                )
            connection_wait(
                [h.conn for h in self._workers if h.outstanding], timeout=0.05
            )
        return results

    def _absorb(self, handle: _WorkerHandle, msg: dict, results: List[dict]) -> bool:
        if msg.get("cmd") != "result":
            return False  # stray pong from an earlier heartbeat
        task_id = msg.get("task")
        if handle.outstanding.pop(task_id, None) is None:
            self._submit_times.pop(task_id, None)
            return False  # duplicate (task already re-dispatched and answered)
        results.append(msg)
        submitted = self._submit_times.pop(task_id, None)
        task_seconds = msg.get("task_seconds")
        if submitted is not None and task_seconds is not None:
            wait = max(0.0, time.monotonic() - submitted - float(task_seconds))
            self.metrics.observe("shard.pool.queue_wait_seconds", wait)
            self.metrics.set_gauge("shard.pool.last_queue_wait_seconds", wait)
        return True

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker and re-dispatch its outstanding tasks."""
        process = handle.process
        try:
            if process.is_alive():
                process.terminate()
            process.join(timeout=1.0)
        except Exception:
            pass
        try:
            handle.conn.close()
        except Exception:
            pass
        self._spawn(handle)
        self.respawns += 1
        self.metrics.inc("shard.respawns")
        self.metrics.set_gauge("shard.pool.respawns", self.respawns)
        for payload in list(handle.outstanding.values()):
            try:
                handle.conn.send(payload)
            except (BrokenPipeError, OSError):
                # The replacement died instantly; the next collect()
                # iteration sees the dead pipe and respawns again (the
                # budget bounds this).
                return

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def ping(self, timeout: float = 5.0) -> Dict[int, bool]:
        """Heartbeat every worker; respawn (and report False for) the dead.

        Called between cycles; a False entry means the worker missed the
        deadline and was replaced, so the next cycle starts with a full
        complement either way.
        """
        self.start()
        seq = self._task_seq = self._task_seq + 1
        alive: Dict[int, bool] = {}
        waiting: List[_WorkerHandle] = []
        sent: Dict[int, float] = {}
        obs = self.metrics.enabled
        for handle in self._workers:
            try:
                sent[handle.index] = time.monotonic()
                handle.conn.send({"cmd": "ping", "seq": seq})
                waiting.append(handle)
            except (BrokenPipeError, OSError):
                alive[handle.index] = False
                self._respawn(handle)
        latencies: Dict[int, float] = {}
        deadline = time.monotonic() + timeout
        while waiting and time.monotonic() < deadline:
            for handle in list(waiting):
                try:
                    got_pong = False
                    while handle.conn.poll(0):
                        msg = handle.conn.recv()
                        if msg.get("cmd") == "pong" and msg.get("seq") == seq:
                            got_pong = True
                    if got_pong:
                        alive[handle.index] = True
                        latencies[handle.index] = (
                            time.monotonic() - sent[handle.index]
                        )
                        waiting.remove(handle)
                except (EOFError, OSError):
                    alive[handle.index] = False
                    self._respawn(handle)
                    waiting.remove(handle)
            if waiting:
                connection_wait([h.conn for h in waiting], timeout=0.05)
        for handle in waiting:
            alive[handle.index] = False
            self._respawn(handle)
        if obs and latencies:
            for index, latency in latencies.items():
                self.metrics.set_gauge(
                    "shard.pool.heartbeat_seconds",
                    latency,
                    labels={"worker": index},
                )
            self.metrics.set_gauge(
                "shard.pool.heartbeat_seconds_max", max(latencies.values())
            )
        return alive
