"""Sharded parallel monitoring engine.

:class:`ShardedGridEngine` partitions the unit square into ``S`` vertical
stripes (:mod:`repro.shard.partition`), keeps one CSR snapshot per stripe
(built by the workers from the shared-memory position buffer), and
answers each cycle in three steps:

**Route.**  Each query is sent to the stripes its critical rectangle
overlaps.  The rectangle is seeded from the previous cycle's exact
k-th-NN distance inflated by ``seed_slack`` (the paper's incremental
insight: between cycles the answer moves little, so last cycle's radius
plus slack almost always covers this cycle's).  On the first cycle, after
a population change, or whenever the seed is stale, the engine falls back
to the overhaul route: each query starts from its home stripe and the
escalation loop widens outward until the answer is provably exact.

**Answer.**  One task per (stripe, routed-query-batch) goes to the worker
pool (``workers=0`` runs the identical task function in-process); each
returns its stripe-local top ``min(k, n_s)`` with global object IDs.

**Merge + escalate.**  Per-shard blocks merge into a global top-k by one
``lexsort`` over (query, distance, id) — the same (distance, object ID)
tie-break every other engine uses.  The seed is a *heuristic*, so the
merge checks it: if a query got fewer than ``k`` candidates, or the disc
of its merged k-th distance pokes past the consulted stripes, the query
escalates to the missing stripes and re-merges.  Escalation strictly
widens the consulted interval, so the loop terminates — and once the
interval is everything, Σ min(k, n_s) ≥ k candidates guarantees an exact
answer.  Boundary ties are safe: routing intervals are closed (see
:meth:`~repro.shard.partition.StripePartition.range_overlapping`) and the
escalation radius carries a 1-ulp inflation, so an object at *exactly*
the k-th distance in a neighboring stripe is always consulted and the ID
tie-break stays global.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.answers import AnswerList
from ..engines.base import BaseEngine
from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..state import as_world_snapshot
from ..obs.registry import MetricsRegistry
from ..obs.remote import WorkerTelemetry, merge_worker_metrics
from .partition import StripePartition
from .pool import ShardWorkerPool
from .tasks import CSRCache, run_shard_task

#: Relative inflation applied to escalation radii so float rounding in
#: ``sqrt`` can never exclude a stripe holding an exact-distance tie.
_EDGE_EPS = 1e-12


class ShardedGridEngine(BaseEngine):
    """Stripe-sharded CSR engine with a persistent worker pool.

    Churn support (member mode): the position array is treated as a
    row-stable universe whose live subset arrives via
    ``ObjectDelta.member_idx`` — vacant rows carry the ``(-1, -1)``
    sentinel and workers filter them before the stripe ownership test, so
    joins and leaves reach each stripe's delta grid as ordinary movers.
    Query deltas remap the per-query routing seeds (``_prev_kth``)
    through ``QueryDelta.kept``: surviving queries keep their seeded
    interval, registered ones route to their home stripe and escalate —
    a one-shot overhaul confined to the new rows.  When
    ``rebalance_threshold`` is set and the consulted stripes' population
    imbalance exceeds it, the stripe boundaries are re-cut from live-x
    quantiles; answers are partition-independent (the escalation loop
    proves exactness under any cut), so seeds survive a rebalance.
    """

    supports_member_idx = True

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        *,
        workers: int = 2,
        shards: Optional[int] = None,
        seed_slack: float = 0.5,
        task_timeout: float = 60.0,
        heartbeat_every: int = 0,
        oversubscribe: bool = False,
        rebalance_threshold: float = 0.0,
    ) -> None:
        super().__init__(k, queries)
        workers = int(workers)
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        # More worker processes than cores buys nothing for CPU-bound
        # shard tasks and multiplies snapshot-attach and scheduling
        # overhead, so the effective pool is capped at the machine size
        # unless the caller explicitly opts into oversubscription
        # (useful for fault-injection tests and CI boxes).
        self.requested_workers = workers
        self.oversubscribe = bool(oversubscribe)
        cpu_cap = os.cpu_count() or 1
        self.worker_cap_applied = not self.oversubscribe and workers > cpu_cap
        if self.worker_cap_applied:
            workers = cpu_cap
        self._cap_reported = False
        if shards is None:
            # One stripe per worker; with workers=0 the serial fallback
            # still shards (smaller per-stripe sorts are a win on their
            # own), defaulting to a single stripe == plain fast grid.
            shards = max(1, workers)
        shards = int(shards)
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if seed_slack < 0.0:
            raise ConfigurationError(f"seed_slack must be >= 0, got {seed_slack}")
        if rebalance_threshold < 0.0:
            raise ConfigurationError(
                f"rebalance_threshold must be >= 0, got {rebalance_threshold}"
            )
        self.name = f"sharded/{workers}w{shards}s"
        self.workers = workers
        self.n_shards = shards
        self.seed_slack = float(seed_slack)
        self.task_timeout = float(task_timeout)
        self.heartbeat_every = int(heartbeat_every)
        self.rebalance_threshold = float(rebalance_threshold)
        self.partition = StripePartition(shards)
        self._pool: Optional[ShardWorkerPool] = None
        self._serial_cache: CSRCache = {}
        self._serial_telemetry = WorkerTelemetry()
        self._deferred_index_seconds = 0.0
        self._cycle = -1
        self._n = 0
        self._n_live = 0
        self._shm_name: Optional[str] = None
        self._prev_kth: Optional[np.ndarray] = None
        self._prev_cycle = -2
        self._member_idx: Optional[np.ndarray] = None
        #: Bumped whenever the caller remaps object rows (session
        #: compaction); shipped with every task so stripe caches keyed by
        #: the old row ids self-invalidate.
        self._epoch = 0
        self._last_imbalance = 1.0
        self.rebalances = 0

    def set_queries(self, queries: np.ndarray) -> None:
        """Move the query points, dropping the per-query routing seeds.

        ``_prev_kth`` holds each query's k-th-NN distance from the last
        cycle and seeds the stripe routing positionally; after the
        queries move those radii describe the *old* positions.  Answers
        would stay exact regardless (the escalation loop re-routes any
        query whose seeded radius proves too small), but stale seeds
        cause avoidable escalation rounds — so invalidate them and let
        the next cycle take the overhaul route.  The per-stripe query
        gauges are refreshed at swap time from the new home stripes, so
        dashboards never show the pre-swap routing for a whole cycle.
        """
        super().set_queries(queries)
        self._prev_kth = None
        self._prev_cycle = -2
        self._refresh_query_gauges()

    def apply_query_delta(self, delta) -> None:
        """Admit query churn, carrying surviving routing seeds over.

        Surviving queries keep their previous k-th-NN distance (their
        positions are unchanged by contract, so the seeded interval is
        still tight); registered queries get an ``inf`` seed, which the
        router sends to the home stripe for a one-shot overhaul.  No
        rebuild: stripe snapshots are query-independent.
        """
        old_kth = self._prev_kth
        kept = np.asarray(delta.kept, dtype=np.intp)
        self.queries = np.asarray(delta.queries, dtype=np.float64)
        if old_kth is not None:
            has_prev = kept >= 0
            safe = np.where(has_prev, kept, 0)
            new_kth = old_kth[safe].copy()
            new_kth[~has_prev] = np.inf
            self._prev_kth = new_kth
        self._refresh_query_gauges()

    def apply_object_delta(self, delta) -> None:
        """Admit object churn (joins/leaves as a new live subset).

        Membership reaches the workers through their own recomputed
        stripe masks, so nothing structural happens here.  A compaction
        remaps rows: the routing seeds stay valid (distances are
        row-independent) but every stripe grid's row-keyed cell state is
        stale, so the epoch tag is bumped to force fresh stripe builds.
        """
        self._member_idx = delta.member_idx
        if delta.compacted:
            self._epoch += 1

    def _refresh_query_gauges(self) -> None:
        """Per-stripe query-count gauges from the current home stripes."""
        if not self.metrics.enabled:
            return
        if self.n_queries:
            home = self.partition.shard_of(self.queries[:, 0])
            counts = np.bincount(home, minlength=self.n_shards)
        else:
            counts = np.zeros(self.n_shards, dtype=np.int64)
        for shard in range(self.n_shards):
            self.metrics.set_gauge(
                "shard.stripe.queries", int(counts[shard]), labels={"shard": shard}
            )

    # ------------------------------------------------------------------
    # Lifecycle / plumbing
    # ------------------------------------------------------------------
    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if self._pool is not None:
            self._pool.metrics = registry

    def _ensure_pool(self) -> ShardWorkerPool:
        if self._pool is None:
            self._pool = ShardWorkerPool(
                self.workers,
                task_timeout=self.task_timeout,
                metrics=self.metrics,
            )
            self._pool.start()
        return self._pool

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (empty in serial mode); for fault injection."""
        return [] if self._pool is None else self._pool.worker_pids()

    @property
    def respawns(self) -> int:
        """Workers respawned after crashes over this engine's lifetime."""
        return 0 if self._pool is None else self._pool.respawns

    def heartbeat(self, timeout: float = 5.0) -> Dict[int, bool]:
        """Ping every worker; dead ones are respawned and reported False."""
        if self.workers == 0:
            return {}
        return self._ensure_pool().ping(timeout)

    def close(self) -> None:
        """Shut the worker pool down and release shared memory (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Cycle contract
    # ------------------------------------------------------------------
    def load(self, positions: np.ndarray) -> None:
        # The cycle counter stays monotonic across reloads on purpose:
        # worker-side stripe caches are tagged by cycle, and rewinding it
        # could collide a fresh snapshot with a cached one from a
        # previous run.  Dropping the seeds is what makes this a reload.
        self._prev_kth = None
        self._prev_cycle = -2
        self.maintain(positions)

    def maintain(self, positions: np.ndarray) -> None:
        world = as_world_snapshot(positions)
        positions = np.asarray(world, dtype=np.float64)
        self._cycle += 1
        self._positions = positions
        self._n = len(positions)
        member = self._member_idx
        self._n_live = self._n if member is None else len(member)
        if (
            self.rebalance_threshold > 0.0
            and self.n_shards > 1
            and self._last_imbalance > self.rebalance_threshold
        ):
            self._rebalance(positions, member)
        if self.worker_cap_applied and not self._cap_reported:
            self.metrics.inc("shard.worker_cap_applied")
            self._cap_reported = True
        if self.workers > 0:
            pool = self._ensure_pool()
            if (
                self.heartbeat_every > 0
                and self._cycle % self.heartbeat_every == 0
            ):
                pool.ping(timeout=self.task_timeout)
            # Epoch-versioned snapshots let the pool skip re-serializing
            # an unchanged (or carried-forward identical) world: equal
            # (token, epoch) keys are bytes-identical by store contract.
            key = (world.token, world.epoch) if world.versioned else None
            with self.tracer.span("shm_write"):
                self._shm_name, _ = pool.write_snapshot(positions, key=key)
        # Serial mode: the stripe cache deliberately survives the cycle —
        # the per-stripe delta grids update themselves incrementally in
        # run_shard_task when the new cycle's first task arrives.

    def answer(self) -> List[AnswerList]:
        if self._positions is None:
            raise IndexStateError("load() must run before answer()")
        k = self.k
        n = self._n_live
        if k > n:
            raise NotEnoughObjectsError(k, n)
        nq = self.n_queries
        if nq == 0:
            return []
        qx = np.ascontiguousarray(self.queries[:, 0])
        qy = np.ascontiguousarray(self.queries[:, 1])
        S = self.n_shards
        metrics = self.metrics

        # --- Route: seeded interval per query, overhaul fallback -------
        # The overhaul route is each query's *home* stripe only, not all
        # stripes: a query deep inside a foreign stripe clamps its home
        # cell to the stripe edge, which inflates the critical rectangle
        # by the distance gap and can pull in the entire stripe as
        # candidates.  Starting at home and letting the escalation loop
        # widen keeps every consulted stripe's candidate set bounded by
        # the query's true k-th-distance disc.
        seeded = (
            S > 1
            and self._prev_kth is not None
            and len(self._prev_kth) == nq
            and self._prev_cycle == self._cycle - 1
        )
        if seeded:
            # Per-query: surviving queries route by their seeded radius;
            # freshly registered ones (seed == inf after a query delta)
            # start from the home stripe like an overhaul and escalate.
            finite = np.isfinite(self._prev_kth)
            r = np.where(finite, self._prev_kth, 0.0)
            r = r * (1.0 + self.seed_slack) + _EDGE_EPS
            cons_lo, cons_hi = self.partition.range_overlapping(qx - r, qx + r)
            if not finite.all():
                home = self.partition.shard_of(qx)
                cons_lo = np.where(finite, cons_lo, home)
                cons_hi = np.where(finite, cons_hi, home)
            metrics.inc("shard.seeded_cycles")
        else:
            cons_lo = cons_hi = self.partition.shard_of(qx)
            metrics.inc("shard.overhaul_cycles")

        assignments = self._interval_assignments(cons_lo, cons_hi)

        # --- Answer + merge + escalate ---------------------------------
        chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        dispatch_seconds = 0.0
        merge_seconds = 0.0
        top_d2 = top_ids = None
        rounds = 0
        obs = bool(metrics.enabled)
        stripe_objects: Dict[int, int] = {}
        stripe_queries: Dict[int, int] = {}
        while True:
            rounds += 1
            if rounds > S + 1:
                raise IndexStateError(
                    f"shard escalation failed to converge after {rounds - 1} rounds"
                )
            t0 = perf_counter()
            with self.tracer.span("shard_dispatch"):
                results = self._run_tasks(assignments, qx, qy)
            dispatch_seconds += perf_counter() - t0
            # Stripe populations feed the rebalancer even when metrics
            # are off; query tallies are observability-only.
            for out in results:
                shard = int(out["shard"])
                stripe_objects[shard] = int(out["n_shard"])
                if obs:
                    stripe_queries[shard] = stripe_queries.get(shard, 0) + len(
                        out["qidx"]
                    )
            for out in results:
                # Stripe index maintenance runs lazily inside the first
                # task of the cycle, i.e. during answer(); record it so
                # the pipeline can attribute it to the index phase.
                self._deferred_index_seconds += float(out["build_seconds"])
                qidx = out["qidx"]
                d2 = out["top_d2"]
                ids = out["top_ids"]
                valid = ids >= 0
                rows = np.broadcast_to(qidx[:, None], ids.shape)
                chunks.append((rows[valid], d2[valid], ids[valid]))

            t0 = perf_counter()
            with self.tracer.span("shard_merge"):
                top_d2, top_ids, counts = _merge_chunks(chunks, nq, k)
                assignments, cons_lo, cons_hi, escalated = self._escalations(
                    qx, top_d2, counts, cons_lo, cons_hi
                )
            merge_seconds += perf_counter() - t0
            if not assignments:
                break
            metrics.inc("shard.escalated_queries", escalated)

        # --- Package + record ------------------------------------------
        answers: List[AnswerList] = []
        d_rows = top_d2.tolist()
        i_rows = top_ids.tolist()
        for query_id in range(nq):
            answer = AnswerList(k)
            answer._entries = list(zip(d_rows[query_id], i_rows[query_id]))
            answers.append(answer)

        self._prev_kth = np.sqrt(top_d2[:, k - 1])
        self._prev_cycle = self._cycle

        metrics.inc("shard.dispatch_seconds", dispatch_seconds)
        metrics.inc("shard.merge_seconds", merge_seconds)
        metrics.inc("shard.build_seconds", self._deferred_index_seconds)
        metrics.inc("shard.rounds", rounds)
        # Imbalance over the consulted stripes (max/mean object count;
        # 1.0 = perfectly balanced) drives the optional rebalancer on the
        # next maintain(), so it is tracked even without a registry.
        if stripe_objects:
            sizes = list(stripe_objects.values())
            mean = sum(sizes) / len(sizes)
            self._last_imbalance = max(sizes) / mean if mean > 0 else 1.0
        if obs:
            metrics.set_gauge("shard.last_rounds", rounds)
            # Health gauges: per-stripe populations this cycle.  Only
            # stripes consulted this cycle are refreshed — untouched
            # stripes keep their last known population.
            for shard, count in stripe_objects.items():
                metrics.set_gauge(
                    "shard.stripe.objects", count, labels={"shard": shard}
                )
            for shard, count in stripe_queries.items():
                metrics.set_gauge(
                    "shard.stripe.queries", count, labels={"shard": shard}
                )
            if stripe_objects:
                metrics.set_gauge("shard.imbalance_ratio", self._last_imbalance)
        return answers

    def pop_deferred_index_seconds(self) -> float:
        """Index-build seconds spent inside :meth:`answer`, then reset.

        Stripe snapshots are (re)indexed lazily by the first task of the
        cycle that reaches each shard, which executes during the answer
        phase.  :class:`~repro.engines.base.CyclePipeline` pulls this
        after every cycle and moves it from answer time to index time,
        so sharded cycle records attribute maintenance like every other
        engine.  In pool mode the builds overlap wall-clock, so the sum
        is clamped to the measured answer time by the caller.
        """
        seconds = self._deferred_index_seconds
        self._deferred_index_seconds = 0.0
        return seconds

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebalance(
        self, positions: np.ndarray, member: Optional[np.ndarray]
    ) -> None:
        """Re-cut stripe boundaries from live-x quantiles.

        Runs at the top of :meth:`maintain` when the last cycle's
        consulted-stripe imbalance exceeded ``rebalance_threshold``.
        Every stripe whose region changes fails the workers' cache
        region check and is rebuilt fresh; the routing seeds survive
        (a query's k-th-NN distance does not depend on the cut) and the
        escalation loop keeps answers exact under any partition.
        """
        x = positions[:, 0] if member is None else positions[member, 0]
        if len(x) == 0:
            return
        edges = np.quantile(x, np.linspace(0.0, 1.0, self.n_shards + 1))
        edges[0] = 0.0
        edges[-1] = 1.0
        if np.any(np.diff(edges) <= 0.0):
            # Degenerate population (duplicate quantiles): keep the
            # current cut rather than create empty zero-width stripes.
            self._last_imbalance = 1.0
            return
        self.partition = StripePartition(self.n_shards, edges)
        self.rebalances += 1
        self._last_imbalance = 1.0
        self.metrics.inc("shard.rebalances")

    def _interval_assignments(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """``{shard: query indices}`` for per-query closed intervals."""
        assignments: Dict[int, np.ndarray] = {}
        for shard in range(self.n_shards):
            qidx = np.flatnonzero((lo <= shard) & (shard <= hi))
            if len(qidx):
                assignments[shard] = qidx
        return assignments

    def _run_tasks(
        self, assignments: Dict[int, np.ndarray], qx: np.ndarray, qy: np.ndarray
    ) -> List[dict]:
        """Execute one round of shard tasks; annotate results with qidx."""
        metrics = self.metrics
        inflight: Dict[int, np.ndarray] = {}
        results: List[dict] = []
        serial = self.workers == 0
        pool = None if serial else self._ensure_pool()
        obs = bool(metrics.enabled)
        bounds = self.partition.bounds
        if bounds is not None:
            bounds = tuple(bounds.tolist())
        for shard, qidx in assignments.items():
            payload = {
                "cmd": "cycle",
                "cycle": self._cycle,
                "shard": shard,
                "n_shards": self.n_shards,
                "k": self.k,
                "n": self._n,
                "shm": self._shm_name,
                "qx": qx[qidx],
                "qy": qy[qidx],
                "obs": obs,
                "epoch": self._epoch,
                "churn": self._member_idx is not None,
                "bounds": bounds,
            }
            metrics.inc("shard.queries_routed", len(qidx))
            metrics.inc("shard.tasks")
            if serial:
                payload["task"] = 0
                out = run_shard_task(
                    self._positions,
                    payload,
                    self._serial_cache,
                    telemetry=self._serial_telemetry,
                )
                out["qidx"] = qidx
                results.append(out)
            else:
                task_id = pool.submit(shard % self.workers, payload)
                inflight[task_id] = qidx
        if not serial:
            for out in pool.collect():
                out["qidx"] = inflight.pop(out["task"])
                results.append(out)
        if obs:
            # The pool de-duplicates results by task id, so each task's
            # shipped deltas merge exactly once even across a crash and
            # re-dispatch — counters cannot double-count.
            for out in results:
                shipped = out.get("metrics")
                if shipped:
                    merge_worker_metrics(
                        metrics,
                        out.get("worker", "serial"),
                        shipped,
                        task_wall=out.get("task_seconds"),
                    )
        return results

    def _escalations(
        self,
        qx: np.ndarray,
        top_d2: np.ndarray,
        counts: np.ndarray,
        cons_lo: np.ndarray,
        cons_hi: np.ndarray,
    ) -> Tuple[Dict[int, np.ndarray], np.ndarray, np.ndarray, int]:
        """Shards still needed per query after a merge, if any.

        A query escalates when the consulted interval provably may miss a
        true neighbor: fewer than ``k`` candidates so far, or the disc of
        the current k-th distance extends past the consulted stripes.
        Returns the new assignments (only *unconsulted* shards), the
        widened consulted intervals, and how many queries escalated.
        """
        S = self.n_shards
        k = self.k
        full = (cons_lo == 0) & (cons_hi == S - 1)
        short = (counts < k) & ~full
        kth_d2 = top_d2[:, k - 1]
        have_k = counts >= k
        radius = np.sqrt(kth_d2, where=have_k, out=np.zeros_like(kth_d2))
        radius *= 1.0 + _EDGE_EPS
        t_lo, t_hi = self.partition.range_overlapping(qx - radius, qx + radius)
        poking = have_k & ((t_lo < cons_lo) | (t_hi > cons_hi)) & ~full
        # Short queries (no k-th distance yet) widen one stripe per side
        # per round — not straight to every stripe, which would hit the
        # clamped-home-cell blowup the router avoids; poking queries
        # widen to their disc's interval (candidates bounded by the disc).
        t_lo = np.where(short, np.maximum(cons_lo - 1, 0), t_lo)
        t_hi = np.where(short, np.minimum(cons_hi + 1, S - 1), t_hi)
        need = short | poking
        if not need.any():
            return {}, cons_lo, cons_hi, 0
        new_lo = np.where(need, np.minimum(cons_lo, t_lo), cons_lo)
        new_hi = np.where(need, np.maximum(cons_hi, t_hi), cons_hi)
        assignments: Dict[int, np.ndarray] = {}
        for shard in range(S):
            # Only shards outside the already-consulted interval: each
            # (query, shard) pair is dispatched at most once per cycle.
            fresh = need & (
                ((new_lo <= shard) & (shard < cons_lo))
                | ((cons_hi < shard) & (shard <= new_hi))
            )
            qidx = np.flatnonzero(fresh)
            if len(qidx):
                assignments[shard] = qidx
        return assignments, new_lo, new_hi, int(need.sum())


def _merge_chunks(
    chunks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    nq: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Global per-query top-k from per-shard candidate blocks.

    One ``lexsort`` over (query, distance, object ID) — identical
    tie-break to :func:`~repro.core.fast_index.batch_knn` — then a ragged
    head-``k`` per query group.  Queries with fewer than ``k`` candidates
    keep ``inf``/``-1`` padding (the escalation check needs the count).
    """
    top_d2 = np.full((nq, k), np.inf)
    top_ids = np.full((nq, k), -1, dtype=np.int64)
    if not chunks:
        return top_d2, top_ids, np.zeros(nq, dtype=np.int64)
    cq = np.concatenate([c[0] for c in chunks])
    cd2 = np.concatenate([c[1] for c in chunks])
    cid = np.concatenate([c[2] for c in chunks])
    order = np.lexsort((cid, cd2, cq))
    cq = cq[order]
    cd2 = cd2[order]
    cid = cid[order]
    counts = np.bincount(cq, minlength=nq)
    starts = np.zeros(nq, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    take = np.minimum(counts, k)
    total = int(take.sum())
    if total:
        within = np.arange(total) - np.repeat(np.cumsum(take) - take, take)
        src = np.repeat(starts, take) + within
        rows = np.repeat(np.arange(nq), take)
        top_d2[rows, within] = cd2[src]
        top_ids[rows, within] = cid[src]
    return top_d2, top_ids, counts
