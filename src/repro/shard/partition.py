"""Spatial stripe partition of the unit square.

The sharded engine splits ``[0,1)^2`` into ``S`` vertical stripes; shard
``s`` owns ``[b_s, b_{s+1}) x [0, 1)`` (the last stripe is closed on the
right so ``x == 1.0`` has an owner).  Stripes — rather than tiles — keep
the routing rule one-dimensional: the shards a query's critical
rectangle ``[qx - r, qx + r]`` overlaps form one contiguous run
``[s_lo, s_hi]``, so the escalation loop of the engine only ever widens
an interval.

By default the stripes are equal-width (``b_s = s/S``, evaluated with
``floor`` arithmetic so historic boundary behaviour is bit-identical);
the engine's load rebalancer may instead supply explicit ``bounds`` cut
from live-population quantiles, in which case ownership is resolved by
``searchsorted`` over the interior edges with the same closed/half-open
conventions.

Objects sitting *exactly* on an interior boundary belong to the
right-hand stripe — both the parent's routing and the workers'
membership masks use the same :func:`StripePartition.shard_of`
expression, so no object is ever indexed twice or dropped.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


class StripePartition:
    """``S`` vertical stripes over the unit square (uniform or custom)."""

    __slots__ = ("n_shards", "bounds", "_inner")

    def __init__(
        self, n_shards: int, bounds: Optional[np.ndarray] = None
    ) -> None:
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        if bounds is None:
            self.bounds: Optional[np.ndarray] = None
            self._inner: Optional[np.ndarray] = None
            return
        edges = np.asarray(bounds, dtype=np.float64)
        if edges.shape != (n_shards + 1,):
            raise ConfigurationError(
                f"bounds must have {n_shards + 1} edges, got shape {edges.shape}"
            )
        if edges[0] != 0.0 or edges[-1] != 1.0:
            raise ConfigurationError(
                f"bounds must span [0, 1], got [{edges[0]}, {edges[-1]}]"
            )
        if np.any(np.diff(edges) <= 0.0):
            raise ConfigurationError("bounds must be strictly increasing")
        self.bounds = edges
        self._inner = edges[1:-1]

    def region(self, shard: int) -> Tuple[float, float, float, float]:
        """The rectangle ``(x0, y0, x1, y1)`` owned by ``shard``."""
        s = self.n_shards
        if not 0 <= shard < s:
            raise ConfigurationError(f"shard {shard} out of range [0, {s})")
        if self.bounds is None:
            return (shard / s, 0.0, (shard + 1) / s, 1.0)
        return (float(self.bounds[shard]), 0.0, float(self.bounds[shard + 1]), 1.0)

    def shard_of(self, x: np.ndarray) -> np.ndarray:
        """Owning shard per x-coordinate (``x == 1.0`` maps to the last)."""
        s = self.n_shards
        x = np.asarray(x, dtype=np.float64)
        if self._inner is None:
            idx = np.floor(x * s).astype(np.intp)
            return np.clip(idx, 0, s - 1)
        # An x exactly on an interior edge sorts to its right stripe
        # (side="right"), matching the uniform floor semantics.
        return np.searchsorted(self._inner, x, side="right").astype(np.intp)

    def range_overlapping(
        self, xlo: np.ndarray, xhi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Inclusive shard interval ``[s_lo, s_hi]`` per ``[xlo, xhi]``.

        Intervals are treated as closed: a rectangle edge exactly on a
        stripe boundary includes the stripe on *both* sides, because an
        object on the boundary (owned by the right stripe) is at distance
        exactly ``r`` — ties at the critical radius matter for the ID
        tie-break, so the routing must not exclude them.
        """
        s = self.n_shards
        xlo = np.asarray(xlo, dtype=np.float64)
        xhi = np.asarray(xhi, dtype=np.float64)
        if self._inner is None:
            s_lo = np.clip(np.floor(xlo * s).astype(np.intp), 0, s - 1)
            s_hi = np.clip(np.floor(xhi * s).astype(np.intp), 0, s - 1)
            # A right edge exactly on boundary t/S already lands in stripe t
            # via floor; a left edge exactly on t/S must also pull in stripe
            # t-1, whose closure touches the edge.
            on_boundary = (xlo * s == np.floor(xlo * s)) & (s_lo > 0)
            s_lo = s_lo - on_boundary.astype(np.intp)
            return s_lo, s_hi
        # side="left": a left edge exactly on an interior boundary keeps
        # the stripe left of it; side="right": a right edge on a boundary
        # lands in the owning (right) stripe — same closed semantics as
        # the uniform path.
        s_lo = np.searchsorted(self._inner, xlo, side="left").astype(np.intp)
        s_hi = np.searchsorted(self._inner, xhi, side="right").astype(np.intp)
        return s_lo, s_hi


def shard_grid_shape(n_objects: int, n_shards: int) -> Tuple[int, int]:
    """Cell layout ``(nx, ny)`` for one stripe holding ``n_objects``.

    Targets ~1 object per cell with *square cells* (the paper's cost
    model and the fast-grid engine both assume cell aspect ratio ~1):
    a stripe is ``1/S`` wide and ``1`` tall, so for ``c = nx * ny`` cells
    square cells need ``ny = S * nx``; solving ``nx * ny = n`` gives
    ``nx = sqrt(n/S)``, ``ny = sqrt(n*S)``.
    """
    n = max(1, int(n_objects))
    s = max(1, int(n_shards))
    nx = max(1, int(round(np.sqrt(n / s))))
    ny = max(1, int(round(np.sqrt(n * s))))
    return nx, ny
