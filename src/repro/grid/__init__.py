"""Geometry primitives and the dense 2D grid substrate."""

from .geometry import (
    CellRect,
    cell_of,
    cells_ring,
    clamp,
    dist,
    dist2,
    min_dist2_point_box,
    min_dist2_point_cell,
    rect_centered,
    rect_for_radius,
    rect_paper_rcrit,
)
from .grid2d import Grid2D, resolve_grid_size

__all__ = [
    "CellRect",
    "Grid2D",
    "cell_of",
    "cells_ring",
    "clamp",
    "dist",
    "dist2",
    "min_dist2_point_box",
    "min_dist2_point_cell",
    "rect_centered",
    "rect_for_radius",
    "rect_paper_rcrit",
    "resolve_grid_size",
]
