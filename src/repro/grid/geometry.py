"""Planar geometry primitives shared by all index structures.

The paper works in the unit square ``[0, 1)^2`` partitioned into a regular
grid of ``G x G`` cells of side ``delta = 1 / G``.  Cells are addressed by
integer column/row coordinates ``(i, j)`` where ``i`` indexes the x axis and
``j`` the y axis, matching the paper's notation ``(i, j)`` with the cell
covering ``[i*delta, (i+1)*delta) x [j*delta, (j+1)*delta)``.

The paper frequently approximates circles by *rectangles of cells*
``R(c0, l)``: the square block of cells whose lower-left cell is
``(i0 - l, j0 - l)`` and upper-right cell is ``(i0 + l, j0 + l)``.  Those
rectangles are represented here by :class:`CellRect`, always clamped to the
grid bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Tuple


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def dist2(ax: float, ay: float, bx: float, by: float) -> float:
    """Squared Euclidean distance between points ``a`` and ``b``.

    Squared distances are used throughout the hot paths; the square root is
    taken only when a true distance is reported to the user or compared
    against a radius expressed in plain units.
    """
    dx = ax - bx
    dy = ay - by
    return dx * dx + dy * dy


def dist(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between points ``a`` and ``b``."""
    return math.sqrt(dist2(ax, ay, bx, by))


def cell_of(x: float, y: float, delta: float, ncells: int) -> Tuple[int, int]:
    """Map a point to the coordinates of its enclosing grid cell.

    Points exactly on the upper/right boundary (coordinate 1.0) are clamped
    into the last cell so that the closed unit square is fully covered even
    though the paper's region is half-open.

    ``x * ncells`` (not ``x / delta``) is used deliberately: all vectorised
    bulk loaders compute cells the same way, and the two float expressions
    can disagree by one cell for coordinates just below a boundary.
    """
    i = int(x * ncells)
    j = int(y * ncells)
    if i >= ncells:
        i = ncells - 1
    elif i < 0:
        i = 0
    if j >= ncells:
        j = ncells - 1
    elif j < 0:
        j = 0
    return i, j


@dataclass(frozen=True)
class CellRect:
    """An axis-aligned, inclusive rectangle of grid cells.

    ``ilo <= i <= ihi`` and ``jlo <= j <= jhi`` enumerate the member cells.
    Instances are always expected to be clamped to ``[0, ncells)``; use
    :func:`rect_centered` to construct clamped rectangles.
    """

    ilo: int
    jlo: int
    ihi: int
    jhi: int

    @property
    def ncols(self) -> int:
        return self.ihi - self.ilo + 1

    @property
    def nrows(self) -> int:
        return self.jhi - self.jlo + 1

    @property
    def ncells(self) -> int:
        """Number of grid cells covered by the rectangle."""
        return self.ncols * self.nrows

    def __contains__(self, cell: Tuple[int, int]) -> bool:
        i, j = cell
        return self.ilo <= i <= self.ihi and self.jlo <= j <= self.jhi

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the member cells in row-major order."""
        for j in range(self.jlo, self.jhi + 1):
            for i in range(self.ilo, self.ihi + 1):
                yield i, j

    def intersection(self, other: "CellRect") -> "CellRect | None":
        """The rectangle of cells common to ``self`` and ``other``."""
        ilo = max(self.ilo, other.ilo)
        jlo = max(self.jlo, other.jlo)
        ihi = min(self.ihi, other.ihi)
        jhi = min(self.jhi, other.jhi)
        if ilo > ihi or jlo > jhi:
            return None
        return CellRect(ilo, jlo, ihi, jhi)

    def cells_not_in(self, other: "CellRect") -> Iterator[Tuple[int, int]]:
        """Iterate over cells of ``self`` that are not members of ``other``.

        Used by incremental Query-Index maintenance, which must delete a
        query from ``Rcrit(t) - Rcrit(t + dt)`` and insert it into
        ``Rcrit(t + dt) - Rcrit(t)``.
        """
        overlap = self.intersection(other)
        if overlap is None:
            yield from self.cells()
            return
        for j in range(self.jlo, self.jhi + 1):
            inside_rows = overlap.jlo <= j <= overlap.jhi
            for i in range(self.ilo, self.ihi + 1):
                if inside_rows and overlap.ilo <= i <= overlap.ihi:
                    continue
                yield i, j


def rect_centered(ci: int, cj: int, l: int, ncells: int) -> CellRect:
    """The paper's ``R(c0, l)``: cells within Chebyshev distance ``l`` of ``c0``.

    The result is clamped to the grid bounds, so near a border the rectangle
    may be smaller than ``(2l + 1)^2`` cells.
    """
    return CellRect(
        max(0, ci - l),
        max(0, cj - l),
        min(ncells - 1, ci + l),
        min(ncells - 1, cj + l),
    )


def rect_for_radius(
    qx: float, qy: float, radius: float, delta: float, ncells: int
) -> CellRect:
    """The smallest clamped cell rectangle covering the disc ``(q, radius)``.

    This refines the paper's ``R(cq, ceil(lcrit / delta))``: instead of a
    square of cells centred on the query's cell, it covers exactly the cells
    intersecting the bounding box of the disc, which is never larger and
    avoids over-scanning when the query sits near a cell border.
    """
    ilo = int((qx - radius) * ncells)
    jlo = int((qy - radius) * ncells)
    ihi = int((qx + radius) * ncells)
    jhi = int((qy + radius) * ncells)
    # Clamp both corners into the grid so the rectangle can never invert
    # (a query just outside the region must still map to boundary cells).
    return CellRect(
        min(ncells - 1, max(0, ilo)),
        min(ncells - 1, max(0, jlo)),
        min(ncells - 1, max(0, ihi)),
        min(ncells - 1, max(0, jhi)),
    )


def rect_paper_rcrit(
    qx: float, qy: float, radius: float, delta: float, ncells: int
) -> CellRect:
    """The paper's literal ``Rcrit = R(cq, ceil(radius / delta))``."""
    ci, cj = cell_of(qx, qy, delta, ncells)
    return rect_centered(ci, cj, int(math.ceil(radius / delta)), ncells)


def min_dist2_point_box(
    px: float, py: float, xlo: float, ylo: float, xhi: float, yhi: float
) -> float:
    """Squared minimum distance from a point to an axis-aligned box.

    Zero when the point is inside the box.  This is the MINDIST metric of
    Roussopoulos et al., used to order R-tree branch-and-bound search.
    """
    dx = 0.0
    if px < xlo:
        dx = xlo - px
    elif px > xhi:
        dx = px - xhi
    dy = 0.0
    if py < ylo:
        dy = ylo - py
    elif py > yhi:
        dy = py - yhi
    return dx * dx + dy * dy


def min_dist2_point_cell(
    px: float, py: float, i: int, j: int, delta: float
) -> float:
    """Squared minimum distance from a point to grid cell ``(i, j)``."""
    return min_dist2_point_box(
        px, py, i * delta, j * delta, (i + 1) * delta, (j + 1) * delta
    )


@lru_cache(maxsize=None)
def _ring_offsets(l: int) -> Tuple[Tuple[int, int], ...]:
    """Relative ``(di, dj)`` offsets of the ring at Chebyshev distance ``l``.

    The offsets depend only on ``l``, yet the overhaul search asks for the
    same rings for every query every cycle; memoizing them leaves only the
    translate-and-clamp work per call.
    """
    if l == 0:
        return ((0, 0),)
    out: List[Tuple[int, int]] = []
    # Top and bottom rows of the ring.
    for dj in (-l, l):
        for di in range(-l, l + 1):
            out.append((di, dj))
    # Left and right columns, excluding the corners already emitted.
    for di in (-l, l):
        for dj in range(-l + 1, l):
            out.append((di, dj))
    return tuple(out)


def cells_ring(ci: int, cj: int, l: int, ncells: int) -> List[Tuple[int, int]]:
    """Cells at exactly Chebyshev distance ``l`` from ``(ci, cj)``, clamped.

    ``l == 0`` yields the centre cell itself.  Used by the overhaul search
    to enlarge ``R0`` one ring at a time without rescanning interior cells.
    """
    out: List[Tuple[int, int]] = []
    for di, dj in _ring_offsets(l):
        i = ci + di
        j = cj + dj
        if 0 <= i < ncells and 0 <= j < ncells:
            out.append((i, j))
    return out
