"""A dense regular grid of buckets over the unit square.

This is the shared physical structure behind both the Object-Index (buckets
hold object IDs, the paper's ``PL(i, j)``) and the Query-Index (buckets hold
query IDs, the paper's ``QL(i, j)``).  Buckets are plain Python lists; the
grid itself is a flat list indexed by ``j * ncells + i`` which profiles
measurably faster than a list-of-lists in CPython.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, IndexStateError
from .geometry import CellRect, cell_of


def resolve_grid_size(
    ncells: "int | None" = None,
    delta: "float | None" = None,
    n_objects: "int | None" = None,
) -> int:
    """Resolve the number of cells per side from one of three specs.

    Exactly one of ``ncells``, ``delta``, or ``n_objects`` should be given.
    ``n_objects`` applies the paper's Theorem 1 optimum
    ``delta* = 1 / sqrt(NP)``, i.e. ``ncells = round(sqrt(NP))``.
    """
    given = sum(arg is not None for arg in (ncells, delta, n_objects))
    if given != 1:
        raise ConfigurationError(
            "specify exactly one of ncells=, delta=, n_objects="
        )
    if ncells is not None:
        size = int(ncells)
    elif delta is not None:
        if not 0.0 < delta <= 1.0:
            raise ConfigurationError(f"cell size delta={delta!r} not in (0, 1]")
        size = max(1, int(round(1.0 / delta)))
    else:
        assert n_objects is not None
        if n_objects < 0:
            raise ConfigurationError(f"n_objects={n_objects!r} must be >= 0")
        size = max(1, int(round(math.sqrt(max(1, n_objects)))))
    if size < 1:
        raise ConfigurationError(f"grid must have at least one cell, got {size}")
    return size


class Grid2D:
    """A ``G x G`` grid of ID buckets over ``[0, 1)^2``.

    Parameters
    ----------
    ncells:
        Number of cells per side, ``G``.  The cell side is ``1 / G``.
    """

    __slots__ = ("ncells", "delta", "_buckets")

    def __init__(self, ncells: int) -> None:
        if ncells < 1:
            raise ConfigurationError(f"ncells must be >= 1, got {ncells}")
        self.ncells = ncells
        self.delta = 1.0 / ncells
        self._buckets: List[List[int]] = [[] for _ in range(ncells * ncells)]

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> Tuple[int, int]:
        """The cell containing point ``(x, y)`` (boundary-clamped)."""
        return cell_of(x, y, self.delta, self.ncells)

    def bucket(self, i: int, j: int) -> List[int]:
        """The mutable bucket of cell ``(i, j)``."""
        return self._buckets[j * self.ncells + i]

    def bucket_at(self, x: float, y: float) -> List[int]:
        """The bucket of the cell containing point ``(x, y)``."""
        i, j = self.locate(x, y)
        return self._buckets[j * self.ncells + i]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Empty every bucket (cheaper than reallocating the grid)."""
        for bucket in self._buckets:
            bucket.clear()

    def insert(self, ident: int, i: int, j: int) -> None:
        """Append ``ident`` to the bucket of cell ``(i, j)``."""
        self._buckets[j * self.ncells + i].append(ident)

    def remove(self, ident: int, i: int, j: int) -> None:
        """Remove ``ident`` from the bucket of cell ``(i, j)``.

        Raises
        ------
        IndexStateError
            If the bucket does not contain ``ident``; this always indicates
            a maintenance bug in the caller, so it is surfaced loudly.
        """
        bucket = self._buckets[j * self.ncells + i]
        try:
            bucket.remove(ident)
        except ValueError:
            raise IndexStateError(
                f"id {ident} not present in cell ({i}, {j})"
            ) from None

    def bulk_load_points(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Rebuild the grid from scratch for points with IDs ``0..n-1``.

        This implements the paper's overhaul index build (a single linear
        scan of the objects).  The cell of every point is computed with a
        vectorised floor division; the bucket fill remains a linear scan.
        """
        n = self.ncells
        ii = np.clip((xs * n).astype(np.intp), 0, n - 1)
        jj = np.clip((ys * n).astype(np.intp), 0, n - 1)
        self.bulk_load_flat(jj * n + ii)

    def bulk_load_flat(self, flat: np.ndarray) -> None:
        """Rebuild from precomputed flat cell IDs (``j * G + i``) per point.

        Callers that already hold the flat-cell array of the snapshot (the
        Object-Index keeps it for incremental maintenance) pass it here so
        the cell mapping is computed once per cycle instead of twice.
        """
        self.clear()
        buckets = self._buckets
        for ident, cell in enumerate(flat.tolist()):
            buckets[cell].append(ident)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def count_in_rect(self, rect: CellRect) -> int:
        """Total number of IDs stored in the cells of ``rect``."""
        buckets = self._buckets
        n = self.ncells
        total = 0
        for j in range(rect.jlo, rect.jhi + 1):
            base = j * n
            for i in range(rect.ilo, rect.ihi + 1):
                total += len(buckets[base + i])
        return total

    def ids_in_rect(self, rect: CellRect) -> List[int]:
        """All IDs stored in the cells of ``rect`` (duplicates preserved)."""
        out: List[int] = []
        buckets = self._buckets
        n = self.ncells
        for j in range(rect.jlo, rect.jhi + 1):
            base = j * n
            for i in range(rect.ilo, rect.ihi + 1):
                out.extend(buckets[base + i])
        return out

    def ids_in_cells(self, cells: Iterable[Tuple[int, int]]) -> List[int]:
        """All IDs stored in the given cells."""
        out: List[int] = []
        buckets = self._buckets
        n = self.ncells
        for i, j in cells:
            out.extend(buckets[j * n + i])
        return out

    def occupancy(self) -> Sequence[int]:
        """Bucket sizes in flat ``j * G + i`` order (for stats and tests)."""
        return [len(bucket) for bucket in self._buckets]

    def total_ids(self) -> int:
        """Total number of stored IDs across all buckets."""
        return sum(len(bucket) for bucket in self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid2D(ncells={self.ncells}, ids={self.total_ids()})"
