"""Hierarchical Object-Indexing engine (paper §4).

Churn: the adaptive cell tree is built over the dense object population
and its per-query answer state is positional, so both delta hooks keep
the :class:`~repro.engines.base.BaseEngine` rebuild fallback — the
session layer packs survivors densely and the next cycle reloads.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.answers import AnswerList
from ..core.hierarchical import HierarchicalObjectIndex
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from .base import _ANSWERING_MODES, _MAINTENANCE_MODES, BaseEngine


class HierarchicalEngine(BaseEngine):
    """Hierarchical Object-Indexing (§4)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "incremental",
        answering: str = "incremental",
        delta0: float = 0.1,
        max_cell_load: int = 10,
        split_factor: int = 3,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        if answering not in _ANSWERING_MODES:
            raise ConfigurationError(
                f"answering must be one of {_ANSWERING_MODES}, got {answering!r}"
            )
        self.name = f"hierarchical/{maintenance}/{answering}"
        self.maintenance = maintenance
        self.answering = answering
        self.index = HierarchicalObjectIndex(
            delta0=delta0, max_cell_load=max_cell_load, split_factor=split_factor
        )
        self._previous_ids: List[List[int]] = [[] for _ in range(self.n_queries)]

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        self.index.tracer = tracer

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        self.index.build(positions)
        self._positions = positions
        self._previous_ids = [[] for _ in range(self.n_queries)]

    def maintain(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        if self.maintenance == "rebuild" or len(positions) != self.index.n_objects:
            self.index.build(positions)
            metrics.inc("hier.maintain.rebuilds")
        else:
            moves = self.index.update(positions)
            metrics.inc("hier.maintain.moves", moves)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"hier.maintain.{name}", delta)
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers: List[AnswerList] = []
        for query_id, (qx, qy) in enumerate(self.queries):
            if self.answering == "incremental" and self._previous_ids[query_id]:
                answer = self.index.knn_incremental(
                    qx, qy, self.k, self._previous_ids[query_id]
                )
            else:
                answer = self.index.knn_overhaul(qx, qy, self.k)
            self._previous_ids[query_id] = answer.object_ids()
            answers.append(answer)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"hier.answer.{name}", delta)
        return answers
