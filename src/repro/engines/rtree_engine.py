"""R-tree baseline engine (paper §5.4).

Churn: the tree is keyed by dense object ids, so population changes take
the :class:`~repro.engines.base.BaseEngine` rebuild fallback (the
``str_bulk``/``bottom_up`` modes already rebuild on a population-size
change); query deltas are a plain swap + rebuild.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.answers import AnswerList
from ..errors import ConfigurationError
from ..rtree.rtree import RTree
from .base import BaseEngine


class RTreeEngine(BaseEngine):
    """R-tree baseline (§5.4).

    Maintenance modes:

    * ``overhaul`` — re-construct the tree entirely each cycle by inserting
      every object into an empty tree (the paper's "R-tree overhaul").
    * ``bottom_up`` — Lee et al. localized updates per object.
    * ``str_bulk`` — rebuild with Sort-Tile-Recursive packing; *stronger*
      than anything the paper ran, included as an extra baseline so the
      comparison is not won by a strawman.
    """

    _MODES = ("overhaul", "bottom_up", "str_bulk")

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "overhaul",
        max_entries: int = 32,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in self._MODES:
            raise ConfigurationError(
                f"maintenance must be one of {self._MODES}, got {maintenance!r}"
            )
        self.name = f"rtree/{maintenance}"
        self.maintenance = maintenance
        self.max_entries = max_entries
        self.index = RTree(max_entries=max_entries)

    def _rebuild_by_insertion(self, positions: np.ndarray) -> None:
        self.index = RTree(max_entries=self.max_entries)
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        for object_id in range(len(positions)):
            self.index.insert(object_id, xs[object_id], ys[object_id])

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "overhaul":
            self._rebuild_by_insertion(positions)
        else:
            self.index.bulk_load(positions)
        self._positions = positions

    def maintain(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "overhaul":
            self._rebuild_by_insertion(positions)
            self.metrics.inc("rtree.maintain.rebuilds")
        elif self.maintenance == "str_bulk" or len(positions) != len(self.index):
            self.index.bulk_load(positions)
            self.metrics.inc("rtree.maintain.rebuilds")
        else:
            xs = positions[:, 0].tolist()
            ys = positions[:, 1].tolist()
            for object_id in range(len(positions)):
                self.index.update_bottom_up(object_id, xs[object_id], ys[object_id])
            self.metrics.inc("rtree.maintain.updates", len(positions))
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        metrics = self.metrics
        # Overhaul maintenance replaces the tree (and its counter block)
        # every cycle, so the diff baseline is taken from the *current*
        # index right before answering.
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers = [self.index.knn(qx, qy, self.k) for qx, qy in self.queries]
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"rtree.answer.{name}", delta)
        return answers
