"""The single engine registry: method name -> engine class.

Every path that turns a method name into a running system resolves
through this table — :meth:`repro.core.monitor.MonitoringSystem.create`,
the benchmark presets (:data:`BENCH_PRESETS`), and the experiment
functions in :mod:`repro.bench.experiments`.  Engine classes are looked
up lazily by dotted path so importing the registry stays cheap (the
sharded engine, for instance, drags in ``multiprocessing``).
"""

from __future__ import annotations

import importlib
from typing import Dict, Mapping, Optional, Tuple, Type, Union

import numpy as np

from ..core.config import METHOD_CONFIGS, MethodConfig, resolve_config
from ..errors import ConfigurationError
from ..obs.registry import MetricsRegistry
from .base import BaseEngine

#: Method name -> (module, class name) of its engine.  The keys are
#: exactly the keys of :data:`~repro.core.config.METHOD_CONFIGS`; the
#: ``test_registry_covers_every_method`` test enforces that.
ENGINE_PATHS: Dict[str, Tuple[str, str]] = {
    "object_indexing": ("repro.engines.object_indexing", "ObjectIndexingEngine"),
    "query_indexing": ("repro.engines.query_indexing", "QueryIndexingEngine"),
    "hierarchical": ("repro.engines.hierarchical", "HierarchicalEngine"),
    "rtree": ("repro.engines.rtree_engine", "RTreeEngine"),
    "brute_force": ("repro.engines.brute", "BruteForceEngine"),
    "fast_grid": ("repro.engines.fast_grid", "FastGridEngine"),
    "delta_grid": ("repro.engines.delta_grid", "DeltaGridEngine"),
    "tpr": ("repro.tprtree.engine", "TPREngine"),
    "sharded": ("repro.engines.sharded", "ShardedGridEngine"),
}


def engine_class(method: str) -> Type[BaseEngine]:
    """The engine class registered for a method name."""
    try:
        module_path, class_name = ENGINE_PATHS[method]
    except KeyError:
        known = ", ".join(sorted(ENGINE_PATHS))
        raise ConfigurationError(
            f"no engine registered for method {method!r}; known: {known}"
        ) from None
    return getattr(importlib.import_module(module_path), class_name)


def make_engine(config: MethodConfig, k: int, queries: np.ndarray) -> BaseEngine:
    """Instantiate the engine a config block describes.

    Uniform across all methods: the config's fields are exactly the
    engine constructor's keyword arguments after ``(k, queries)``.
    """
    cls = engine_class(config.method)
    return cls(k, queries, **config._engine_kwargs())


# Benchmark method names -> (registry method, preset options).  Each entry
# maps to one line in the paper's figures; systems are built through the
# same MethodConfig registry as MonitoringSystem.create, so preset names
# and caller overrides are validated identically everywhere.
BENCH_PRESETS: Dict[str, Tuple[str, Dict[str, object]]] = {
    "object_overhaul": (
        "object_indexing", {"maintenance": "rebuild", "answering": "overhaul"}
    ),
    "object_incremental": (
        "object_indexing", {"maintenance": "incremental", "answering": "incremental"}
    ),
    "query_indexing": ("query_indexing", {"maintenance": "incremental"}),
    "query_indexing_rebuild": ("query_indexing", {"maintenance": "rebuild"}),
    "hierarchical_rebuild": (
        "hierarchical", {"maintenance": "rebuild", "answering": "incremental"}
    ),
    "hierarchical_incremental": (
        "hierarchical", {"maintenance": "incremental", "answering": "incremental"}
    ),
    "rtree_overhaul": ("rtree", {"maintenance": "overhaul"}),
    "rtree_bottom_up": ("rtree", {"maintenance": "bottom_up"}),
    "rtree_str_bulk": ("rtree", {"maintenance": "str_bulk"}),
    "brute_force": ("brute_force", {}),
    "tpr_predictive": ("tpr", {}),
    "fast_grid": ("fast_grid", {}),
    "delta_grid": ("delta_grid", {}),
    "sharded": ("sharded", {}),
}


def resolve_preset(method: str, overrides: Mapping[str, object]) -> Tuple[str, Dict[str, object]]:
    """``(registry method, merged options)`` for a preset or bare method name.

    Bare registry method names are authoritative: they always resolve to
    the method's config-class defaults, never to a preset that happens to
    share the name.  Presets with non-default payloads therefore carry
    distinct names (``hierarchical_rebuild``, ``object_overhaul``, ...);
    the remaining same-named entries in :data:`BENCH_PRESETS` are no-op
    shadows kept so the bench suite can enumerate one table.
    """
    if method in METHOD_CONFIGS:
        return method, dict(overrides)
    if method in BENCH_PRESETS:
        base, preset = BENCH_PRESETS[method]
        merged: Dict[str, object] = dict(preset)
        merged.update(overrides)
        return base, merged
    known = ", ".join(sorted(set(BENCH_PRESETS) | set(METHOD_CONFIGS)))
    raise ConfigurationError(f"unknown method {method!r}; known: {known}")


def build_system(
    method: str,
    k: int,
    queries: np.ndarray,
    *,
    config: Optional[Union[MethodConfig, Mapping[str, object]]] = None,
    tau: float = 1.0,
    registry: Optional[MetricsRegistry] = None,
    **overrides: object,
):
    """Build a :class:`~repro.core.monitor.MonitoringSystem` by name.

    The canonical system factory —
    :meth:`repro.core.monitor.MonitoringSystem.create` delegates here,
    so the two names are one entry point.  ``method`` may be a benchmark
    preset (``object_overhaul``, ...) or any bare registry method name
    (``object_indexing``, ``sharded``, ...); ``config`` may be a typed
    :class:`~repro.core.config.MethodConfig` block or a plain dict
    (validated via :meth:`~repro.core.config.MethodConfig.from_dict`);
    keyword ``overrides`` are applied on top of the preset's options and
    validated against the method's config class either way.
    """
    from ..core.monitor import MonitoringSystem

    base, merged = resolve_preset(method, overrides)
    resolved = resolve_config(base, config, merged)
    return MonitoringSystem(
        make_engine(resolved, k, queries), tau=tau, registry=registry
    )
