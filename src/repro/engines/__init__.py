"""Monitoring engines: one module per method, one registry, one pipeline.

* :mod:`~repro.engines.base` — the :class:`BaseEngine` contract, the
  unified :class:`CycleTiming` record and the :class:`CyclePipeline`
  that owns load/maintain/answer sequencing and timing capture.
* One module per engine (``object_indexing``, ``query_indexing``,
  ``hierarchical``, ``rtree_engine``, ``brute``, plus the re-homed
  ``fast_grid`` and ``sharded`` wrappers).
* :mod:`~repro.engines.registry` — the single method-name -> engine
  table every construction path resolves through.
* :mod:`~repro.engines.snapshot` — the :class:`SnapshotIndex` protocol
  and the backend-agnostic query operators the auxiliary workloads use.
"""

from .base import (
    BaseEngine,
    CyclePipeline,
    CycleStats,
    CycleTiming,
)
from .brute import BruteForceEngine
from .hierarchical import HierarchicalEngine
from .object_indexing import ObjectIndexingEngine
from .query_indexing import QueryIndexingEngine
from .registry import (
    BENCH_PRESETS,
    ENGINE_PATHS,
    build_system,
    engine_class,
    make_engine,
)
from .rtree_engine import RTreeEngine
from .snapshot import (
    SNAPSHOT_BACKENDS,
    SnapshotIndex,
    make_snapshot,
    snapshot_knn,
    snapshot_knn_seeded,
    snapshot_range,
)

__all__ = [
    "BENCH_PRESETS",
    "BaseEngine",
    "BruteForceEngine",
    "CyclePipeline",
    "CycleStats",
    "CycleTiming",
    "ENGINE_PATHS",
    "FastGridEngine",
    "HierarchicalEngine",
    "ObjectIndexingEngine",
    "QueryIndexingEngine",
    "RTreeEngine",
    "SNAPSHOT_BACKENDS",
    "ShardedGridEngine",
    "SnapshotIndex",
    "build_system",
    "engine_class",
    "make_engine",
    "make_snapshot",
    "snapshot_knn",
    "snapshot_knn_seeded",
    "snapshot_range",
]


def __getattr__(name: str):
    # The fast-grid and sharded engines live in heavier modules (numpy
    # kernels, multiprocessing); resolve them on first access instead of
    # at package import.
    if name == "FastGridEngine":
        from .fast_grid import FastGridEngine

        return FastGridEngine
    if name == "ShardedGridEngine":
        from .sharded import ShardedGridEngine

        return ShardedGridEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
