"""Linear-scan oracle engine (ground truth for the exact methods)."""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.answers import AnswerList
from ..core.brute import brute_force_knn
from ..errors import IndexStateError
from .base import BaseEngine


class BruteForceEngine(BaseEngine):
    """Linear-scan oracle, used as ground truth."""

    name = "brute-force"

    def apply_query_delta(self, delta) -> None:
        # Stateless: a query churn batch is just the swap (no index, no
        # per-query state, nothing to rebuild).
        self.queries = np.asarray(delta.queries, dtype=np.float64)

    def apply_object_delta(self, delta) -> None:
        # Stateless over densely packed positions; nothing to invalidate.
        if delta.member_idx is not None:
            super().apply_object_delta(delta)

    def load(self, positions: np.ndarray) -> None:
        self._positions = np.asarray(positions, dtype=np.float64)

    def maintain(self, positions: np.ndarray) -> None:
        self._positions = np.asarray(positions, dtype=np.float64)

    def answer(self) -> List[AnswerList]:
        if self._positions is None:
            raise IndexStateError("load() must run before answer()")
        self.metrics.inc(
            "brute.answer.objects_scanned", len(self._positions) * self.n_queries
        )
        answers: List[AnswerList] = []
        for qx, qy in self.queries:
            answer = AnswerList(self.k)
            for object_id, distance in brute_force_knn(
                self._positions, qx, qy, self.k
            ):
                answer.offer(distance * distance, object_id)
            answers.append(answer)
        return answers
