"""Engine protocol and the unified monitoring-cycle pipeline.

A monitoring *engine* packages one method's index maintenance and query
answering behind the three-call contract of the paper's cycle (§3):
``load`` (initial build), ``maintain`` (per-cycle index maintenance) and
``answer`` (exact k-NNs of every query for the last snapshot).

:class:`CyclePipeline` owns everything that used to be duplicated between
the monitor layer and the benchmark layer: the load/maintain/answer
sequencing, wall-clock timing capture per stage, and observability
binding (metrics registry + tracer propagation into the engine).  Each
executed cycle appends one :class:`CycleTiming` record to
:attr:`CyclePipeline.history`.

:class:`CycleTiming` is the single cycle-timing type of the repository.
It replaces both the former ``CycleStats`` (per-cycle record of the
monitor layer) and the former bench-layer ``CycleTiming`` (steady-state
means): a record with ``cycles == 1`` is one cycle's breakdown, and
:meth:`CycleTiming.from_history` folds a history into the steady-state
means the benchmark tables print.  ``CycleStats`` remains as an alias of
this class for backward compatibility.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, IndexStateError
from ..obs.export import mean_cycle_counters
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..obs.tracing import NULL_TRACER, Tracer, span_seconds
from ..core.answers import AnswerList

# The churn delta records and the snapshot protocol live in the state
# plane now (they are produced by the WorldStore); re-exported here
# because engine code and external callers historically import them
# from this module.
from ..state import (  # noqa: F401  (re-exports)
    ObjectDelta,
    PositionsLike,
    QueryDelta,
    WorldSnapshot,
    as_world_snapshot,
)

_MAINTENANCE_MODES = ("rebuild", "incremental")
_ANSWERING_MODES = ("overhaul", "incremental")


def _as_queries(queries: np.ndarray) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 2:
        raise ConfigurationError("queries must be an (NQ, 2) array")
    return queries


class BaseEngine(abc.ABC):
    """One monitoring method: how to maintain an index and answer queries."""

    name = "base"

    #: Whether the engine can index a row-stable position universe with a
    #: changing live subset (``ObjectDelta.member_idx``).  Engines without
    #: it receive densely packed positions and rebuild on churn.
    supports_member_idx: ClassVar[bool] = False

    def __init__(self, k: int, queries: np.ndarray) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.queries = _as_queries(queries)
        self._positions: Optional[np.ndarray] = None
        self._rebuild_pending = False
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.tracer = NULL_TRACER

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        """Attach a metrics sink and tracer (no-op instances by default).

        Subclasses propagate the tracer into their index structures so
        algorithm-level spans nest under the cycle-level ones.
        """
        self.metrics = registry
        self.tracer = tracer

    def set_queries(self, queries: np.ndarray) -> None:
        """Replace the query positions (queries may move between cycles).

        The query *set* must stay the same size: per-query state (previous
        answers, critical regions) is tracked positionally.  Correctness is
        unaffected — every incremental bound is recomputed from the new
        query position each cycle (§5.1 expects "comparable performance
        when query points are moving").
        """
        queries = _as_queries(queries)
        if len(queries) != len(self.queries):
            raise ConfigurationError(
                f"query count changed from {len(self.queries)} to "
                f"{len(queries)}; build a new monitoring system instead"
            )
        self.queries = queries

    # ------------------------------------------------------------------
    # Churn deltas (streaming session layer)
    # ------------------------------------------------------------------
    def request_rebuild(self) -> None:
        """Ask the pipeline to run :meth:`load` instead of :meth:`maintain`
        on the next cycle (cross-cycle state is about to be invalid)."""
        self._rebuild_pending = True

    def take_rebuild_request(self) -> bool:
        """Consume a pending rebuild request (pipeline-internal)."""
        pending = self._rebuild_pending
        self._rebuild_pending = False
        return pending

    def apply_query_delta(self, delta: QueryDelta) -> None:
        """Admit one cycle's batched query registrations and drops.

        The default is the cheap, always-correct fallback: swap the
        query array wholesale (unlike :meth:`set_queries`, the count may
        change) and request a rebuild, which resets whatever per-query
        state the engine tracks positionally.  Engines with remappable
        per-query state override this and use ``delta.kept`` instead.
        """
        self.queries = _as_queries(delta.queries)
        self.request_rebuild()

    def apply_object_delta(self, delta: ObjectDelta) -> None:
        """Admit one cycle's batched object joins and leaves.

        Default fallback: any membership change (or a compaction remap)
        invalidates the index, so request a rebuild; pure-move cycles
        (empty delta) cost nothing.  Engines that can patch membership
        incrementally override this.
        """
        if delta.member_idx is not None and not self.supports_member_idx:
            raise ConfigurationError(
                f"engine {self.name!r} does not support member-mode position "
                "universes; pass densely packed positions instead"
            )
        if len(delta.joined) or len(delta.left) or delta.compacted:
            self.request_rebuild()

    @abc.abstractmethod
    def load(self, positions: PositionsLike) -> None:
        """Initial build from the first snapshot.

        ``positions`` is a :class:`~repro.state.WorldSnapshot` when the
        cycle runs through :class:`CyclePipeline` (a raw array handed to
        the pipeline is shim-wrapped first); ``np.asarray(positions,
        dtype=np.float64)`` recovers the read-only view either way.
        """

    @abc.abstractmethod
    def maintain(self, positions: PositionsLike) -> None:
        """Per-cycle index maintenance against a new snapshot."""

    @abc.abstractmethod
    def answer(self) -> List[AnswerList]:
        """Exact k-NN answers for the snapshot last passed to maintain()."""

    def pop_deferred_index_seconds(self) -> float:
        """Index-maintenance seconds that ran inside :meth:`answer`.

        Engines that build or repair index state lazily during the
        answer phase (the sharded engine indexes each stripe when its
        first task of the cycle arrives) report those seconds here;
        :class:`CyclePipeline` moves them from the answer time to the
        index time of the cycle record.  Calling this resets the
        accumulator.  The default is ``0.0``: most engines do all
        maintenance in :meth:`maintain`.
        """
        return 0.0


@dataclass(frozen=True)
class CycleTiming:
    """Timing breakdown of one or more monitoring cycles (seconds).

    With ``cycles == 1`` (the default) this is the record of a single
    cycle at snapshot time ``timestamp``; :meth:`from_history` returns the
    steady-state *means* over a history with ``cycles`` set to the number
    of cycles averaged.  ``counters`` holds the per-cycle metric deltas
    (spans included) when the system runs with a
    :class:`~repro.obs.registry.MetricsRegistry`; it stays ``None`` on
    uninstrumented runs and never takes part in equality.
    """

    timestamp: float
    index_time: float
    answer_time: float
    counters: Optional[Mapping[str, float]] = field(default=None, compare=False)
    cycles: int = 1

    @property
    def total_time(self) -> float:
        return self.index_time + self.answer_time

    @staticmethod
    def mean_of(
        history: Sequence["CycleTiming"], skip_first: bool = True
    ) -> "tuple[float, float, int]":
        """``(mean index_time, mean answer_time, cycles averaged)``.

        The single source of truth for steady-state cycle means.  The
        initial build cycle is excluded by default.
        """
        stats = history[1:] if skip_first and len(history) > 1 else list(history)
        if not stats:
            raise IndexStateError("no cycle has run yet")
        cycles = len(stats)
        return (
            sum(s.index_time for s in stats) / cycles,
            sum(s.answer_time for s in stats) / cycles,
            cycles,
        )

    @classmethod
    def from_history(
        cls, history: Sequence["CycleTiming"], skip_first: bool = True
    ) -> "CycleTiming":
        """Steady-state means of a monitoring history (initial build excluded)."""
        index_time, answer_time, cycles = cls.mean_of(history, skip_first)
        counters = mean_cycle_counters(history, skip_first=skip_first) or None
        return cls(history[-1].timestamp, index_time, answer_time, counters, cycles)

    def span_means(self) -> Dict[str, float]:
        """Mean seconds per span path per cycle (empty if uninstrumented)."""
        return span_seconds(self.counters or {})


#: Backward-compatible alias — the per-cycle records and the steady-state
#: means are the same type now (see the class docstring).
CycleStats = CycleTiming


class CyclePipeline:
    """Owns the load/maintain/answer sequencing of a monitoring engine.

    One pipeline wraps one :class:`BaseEngine` and is the only place that
    times the paper's two cycle stages (index maintenance vs query
    answering), captures per-cycle counter deltas, and binds observability
    into the engine.  :class:`~repro.core.monitor.MonitoringSystem` is a
    thin facade over it; the bench layer reads the same
    :attr:`history` records.
    """

    def __init__(
        self,
        engine: BaseEngine,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.history: List[CycleTiming] = []
        #: Optional per-cycle observer ``(record, answers) -> None`` called
        #: after every executed cycle — the verify subsystem's record/replay
        #: hook (:mod:`repro.verify`).  The raw :class:`AnswerList` objects
        #: are passed through, so observers see exact squared distances
        #: before any sqrt packaging.
        self.cycle_hook: Optional[Callable[..., None]] = None
        self.registry: MetricsRegistry = (
            registry if registry is not None else NULL_REGISTRY
        )
        if tracer is None:
            tracer = Tracer(self.registry) if self.registry.enabled else NULL_TRACER
        self.tracer = tracer
        engine.bind_observability(self.registry, self.tracer)

    def bind(
        self, registry: MetricsRegistry, tracer: Optional[Tracer] = None
    ) -> None:
        """Swap the metrics sink (and tracer) and rebind the engine."""
        self.registry = registry
        if tracer is None:
            tracer = Tracer(registry) if registry.enabled else NULL_TRACER
        self.tracer = tracer
        self.engine.bind_observability(self.registry, self.tracer)

    def run_cycle(
        self, positions: PositionsLike, timestamp: float, initial: bool = False
    ) -> List[AnswerList]:
        """Run one full cycle; returns the raw per-query answer lists.

        ``positions`` may be a published
        :class:`~repro.state.WorldSnapshot` (the zero-copy path) or any
        ``(N, 2)`` array-like, which is wrapped into an anonymous
        snapshot here — engines always see the snapshot type.

        ``initial=True`` runs the engine's :meth:`~BaseEngine.load` stage
        (under the ``load`` span) and resets :attr:`history`; otherwise
        :meth:`~BaseEngine.maintain` runs under the ``maintain`` span.
        An engine-requested rebuild (:meth:`BaseEngine.request_rebuild`,
        the churn-delta fallback) also routes through :meth:`load` — but
        mid-stream, so :attr:`history` keeps accumulating.
        """
        world = as_world_snapshot(positions)
        registry = self.registry
        reload = self.engine.take_rebuild_request() or initial
        before = registry.counter_values() if registry.enabled else None
        if reload and not initial:
            registry.inc("cycle.churn_rebuilds")
        start = time.perf_counter()
        with self.tracer.span("load" if reload else "maintain"):
            if reload:
                self.engine.load(world)
            else:
                self.engine.maintain(world)
        index_time = time.perf_counter() - start
        start = time.perf_counter()
        with self.tracer.span("answer"):
            answers = self.engine.answer()
        answer_time = time.perf_counter() - start
        # Lazy index builds that ran inside answer() belong to the index
        # phase.  Clamp to the measured answer time: parallel engines sum
        # per-worker build seconds, which can exceed wall clock.
        deferred = min(self.engine.pop_deferred_index_seconds(), answer_time)
        if deferred > 0.0:
            index_time += deferred
            answer_time -= deferred
        counters = registry.counters_since(before) if before is not None else None
        record = CycleTiming(timestamp, index_time, answer_time, counters)
        if initial:
            self.history = [record]
        else:
            self.history.append(record)
        registry.inc("cycle.count")
        registry.observe("cycle.total_seconds", record.total_time)
        if self.cycle_hook is not None:
            self.cycle_hook(record, answers)
        return answers

    @property
    def last_record(self) -> CycleTiming:
        if not self.history:
            raise IndexStateError("no cycle has run yet")
        return self.history[-1]

    def mean_cycle_time(self, skip_first: bool = True) -> float:
        """Average total cycle time, by default excluding the initial build."""
        index_mean, answer_mean, _ = CycleTiming.mean_of(self.history, skip_first)
        return index_mean + answer_mean
