"""Index-agnostic snapshot protocol and the generic query operators.

The paper's query algorithms only ever need two primitives from a grid
snapshot: *count the objects inside a cell rectangle* (to grow ``R0``
ring by ring, Fig. 3) and *gather the objects inside a cell rectangle*
(to scan the critical rectangle).  :class:`SnapshotIndex` captures
exactly that contract; both the paper-faithful
:class:`~repro.core.object_index.ObjectIndex` (Grid2D bucket lists) and
the vectorized :class:`~repro.core.fast_index.CSRGrid` implement it, so
every auxiliary workload (range, RkNN, GNN, self-join, kNN-join) runs
unchanged on either backend.

All generic operators break distance ties by lowest object ID (via
``(distance^2, id)`` tuple ordering in
:class:`~repro.core.answers.AnswerList`), so two backends holding the
same snapshot return *identical* answers — the parametrized
cross-backend suite in ``tests/test_snapshot_protocol.py`` asserts this
including duplicate-coordinate tie-breaks.
"""

from __future__ import annotations

import math
from typing import List, Protocol, Sequence, Tuple

import numpy as np

from ..core.answers import AnswerList
from ..errors import ConfigurationError, NotEnoughObjectsError
from ..grid.geometry import rect_for_radius
from ..grid.grid2d import resolve_grid_size


class SnapshotIndex(Protocol):
    """A queryable grid snapshot of one cycle's object positions.

    The grid is square (``ncells`` per side) over the unit square with
    cell size ``delta``; object IDs are stable across the snapshot.
    Cell rectangles are inclusive ``(ilo, jlo, ihi, jhi)`` index ranges.
    """

    @property
    def ncells(self) -> int: ...

    @property
    def delta(self) -> float: ...

    @property
    def n_objects(self) -> int: ...

    def locate(self, x: float, y: float) -> Tuple[int, int]:
        """Cell ``(i, j)`` of a point (clamped to the grid)."""
        ...

    def count_in_cells(self, ilo: int, jlo: int, ihi: int, jhi: int) -> int:
        """Number of objects inside the inclusive cell rectangle."""
        ...

    def gather_cells(
        self, ilo: int, jlo: int, ihi: int, jhi: int
    ) -> Tuple[List[int], List[float], List[float]]:
        """``(ids, xs, ys)`` of every object inside the cell rectangle."""
        ...

    def position_of(self, object_id: int) -> Tuple[float, float]:
        """Snapshot position of one object."""
        ...


#: Snapshot backend name -> builder; see :func:`make_snapshot`.
SNAPSHOT_BACKENDS = ("object_index", "csr")


def make_snapshot(positions: np.ndarray, backend: str = "object_index") -> SnapshotIndex:
    """Build a :class:`SnapshotIndex` over a position snapshot.

    ``backend`` picks the implementation: ``"object_index"`` (the
    paper-faithful Grid2D bucket index) or ``"csr"`` (the vectorized CSR
    layout).  Both use the paper's optimal cell size for the population.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if backend == "object_index":
        from ..core.object_index import ObjectIndex

        index = ObjectIndex(n_objects=max(1, len(positions)))
        index.build(positions)
        return index
    if backend == "csr":
        from ..core.fast_index import CSRGrid

        return CSRGrid(positions, resolve_grid_size(n_objects=max(1, len(positions))))
    raise ConfigurationError(
        f"unknown snapshot backend {backend!r}; known: {', '.join(SNAPSHOT_BACKENDS)}"
    )


def snapshot_knn(index: SnapshotIndex, qx: float, qy: float, k: int) -> AnswerList:
    """Exact k-NN from scratch against any snapshot backend (paper Fig. 3).

    Grows ``R0`` around the query's cell one ring at a time until it
    holds at least ``k`` objects, takes the k-th-nearest distance inside
    ``R0`` as the critical radius, and scans the critical rectangle.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > index.n_objects:
        raise NotEnoughObjectsError(k, index.n_objects)
    n = index.ncells
    ci, cj = index.locate(qx, qy)
    level = 0
    while True:
        ilo, jlo = max(ci - level, 0), max(cj - level, 0)
        ihi, jhi = min(ci + level, n - 1), min(cj + level, n - 1)
        if index.count_in_cells(ilo, jlo, ihi, jhi) >= k:
            break
        if ilo == 0 and jlo == 0 and ihi == n - 1 and jhi == n - 1:
            # Whole grid scanned; unreachable while k <= n_objects.
            raise NotEnoughObjectsError(k, index.n_objects)
        level += 1
    _, xs, ys = index.gather_cells(ilo, jlo, ihi, jhi)
    d2s = sorted((x - qx) * (x - qx) + (y - qy) * (y - qy) for x, y in zip(xs, ys))
    lcrit = math.sqrt(d2s[k - 1])
    return _scan_rect(index, qx, qy, lcrit, k)


def snapshot_knn_seeded(
    index: SnapshotIndex,
    qx: float,
    qy: float,
    k: int,
    previous_ids: Sequence[int],
) -> AnswerList:
    """Exact k-NN seeded by a previous answer set (§3.2, backend-agnostic).

    The critical radius is the distance to the farthest *new* position of
    the previous k-NNs; the disc of that radius contains k objects, so it
    bounds the true k-th-nearest distance.  Falls back to
    :func:`snapshot_knn` when no usable previous answer exists.
    """
    n_obj = index.n_objects
    if len(previous_ids) < k or any(not 0 <= p < n_obj for p in previous_ids):
        return snapshot_knn(index, qx, qy, k)
    worst2 = 0.0
    for object_id in previous_ids:
        x, y = index.position_of(object_id)
        d2 = (x - qx) * (x - qx) + (y - qy) * (y - qy)
        if d2 > worst2:
            worst2 = d2
    answers = _scan_rect(index, qx, qy, math.sqrt(worst2), k)
    if len(answers) < k:  # pragma: no cover - defensive; cannot happen
        return snapshot_knn(index, qx, qy, k)
    return answers


def _scan_rect(
    index: SnapshotIndex, qx: float, qy: float, radius: float, k: int
) -> AnswerList:
    """Offer every object within the critical rectangle of ``radius``."""
    rect = rect_for_radius(qx, qy, radius, index.delta, index.ncells)
    answers = AnswerList(k)
    ids, xs, ys = index.gather_cells(rect.ilo, rect.jlo, rect.ihi, rect.jhi)
    offer = answers.offer
    for object_id, x, y in zip(ids, xs, ys):
        dx = x - qx
        dy = y - qy
        offer(dx * dx + dy * dy, object_id)
    return answers


def snapshot_range(index: SnapshotIndex, region) -> List[int]:
    """Member object IDs of one range query region, ascending.

    ``region`` is any object with ``bounds()`` and ``contains(x, y)``
    (:class:`~repro.core.range_monitor.RectRegion` /
    :class:`~repro.core.range_monitor.CircleRegion`).
    """
    xlo, ylo, xhi, yhi = region.bounds()
    ilo, jlo = index.locate(max(0.0, xlo), max(0.0, ylo))
    ihi, jhi = index.locate(min(1.0 - 1e-12, xhi), min(1.0 - 1e-12, yhi))
    ids, xs, ys = index.gather_cells(ilo, jlo, ihi, jhi)
    members = [
        object_id for object_id, x, y in zip(ids, xs, ys) if region.contains(x, y)
    ]
    members.sort()
    return members
