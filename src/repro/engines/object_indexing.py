"""One-level grid Object-Indexing engine (paper §3.1 overhaul, §3.2 incremental)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.answers import AnswerList
from ..core.object_index import ObjectIndex
from ..errors import ConfigurationError, IndexStateError
from ..obs.registry import MetricsRegistry
from .base import _ANSWERING_MODES, _MAINTENANCE_MODES, BaseEngine


class ObjectIndexingEngine(BaseEngine):
    """One-level grid Object-Indexing (§3.1 overhaul, §3.2 incremental)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "rebuild",
        answering: str = "overhaul",
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        if answering not in _ANSWERING_MODES:
            raise ConfigurationError(
                f"answering must be one of {_ANSWERING_MODES}, got {answering!r}"
            )
        self.name = f"object-indexing/{maintenance}/{answering}"
        self.maintenance = maintenance
        self.answering = answering
        self._ncells = ncells
        self._delta = delta
        self.index: Optional[ObjectIndex] = None
        self._previous_ids: List[List[int]] = [[] for _ in range(self.n_queries)]

    def _make_index(self, n_objects: int) -> ObjectIndex:
        if self._ncells is not None:
            return ObjectIndex(ncells=self._ncells)
        if self._delta is not None:
            return ObjectIndex(delta=self._delta)
        return ObjectIndex(n_objects=max(1, n_objects))

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if self.index is not None:
            self.index.tracer = tracer

    def apply_query_delta(self, delta) -> None:
        """Admit query churn, keeping survivors' incremental-answer state.

        ``_previous_ids`` (the previous answer each query refines in
        ``answering="incremental"`` mode) is positional, so it is
        remapped through ``delta.kept``; registered queries start from
        an empty previous answer, i.e. a one-shot overhaul.  The object
        index itself is untouched — no rebuild needed.
        """
        previous = self._previous_ids
        self.queries = np.asarray(delta.queries, dtype=np.float64)
        self._previous_ids = [
            list(previous[old]) if old >= 0 else []
            for old in np.asarray(delta.kept, dtype=np.intp)
        ]

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        self.index = self._make_index(len(positions))
        self.index.tracer = self.tracer
        self.index.build(positions)
        self._positions = positions
        self._previous_ids = [[] for _ in range(self.n_queries)]

    def maintain(self, positions: np.ndarray) -> None:
        if self.index is None:
            raise IndexStateError("load() must run before maintain()")
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "rebuild" or len(positions) != self.index.n_objects:
            self.index.build(positions)
            self.metrics.inc("oi.maintain.rebuilds")
        else:
            moves = self.index.update(positions)
            self.metrics.inc("oi.maintain.moves", moves)
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        if self.index is None:
            raise IndexStateError("load() must run before answer()")
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers: List[AnswerList] = []
        for query_id, (qx, qy) in enumerate(self.queries):
            if self.answering == "incremental" and self._previous_ids[query_id]:
                answer = self.index.knn_incremental(
                    qx, qy, self.k, self._previous_ids[query_id]
                )
            else:
                answer = self.index.knn_overhaul(qx, qy, self.k)
            self._previous_ids[query_id] = answer.object_ids()
            answers.append(answer)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"oi.answer.{name}", delta)
        return answers
