"""Engine-layer home of the incremental delta-CSR engine.

The implementation lives with its kernels in
:mod:`repro.core.delta_index` (incrementally maintained CSR snapshot +
dirty-region answer reuse); this module is the engine package's
canonical import location for it.
"""

from __future__ import annotations

from ..core.delta_index import DeltaCSRGrid, DeltaGridEngine, DeltaUpdateStats

__all__ = ["DeltaCSRGrid", "DeltaGridEngine", "DeltaUpdateStats"]
