"""Engine-layer home of the stripe-sharded multiprocess engine.

The implementation lives with its worker pool in
:mod:`repro.shard.engine`; this module is the engine package's canonical
import location for it.  Importing it pulls in ``multiprocessing``
machinery, so the registry resolves it lazily by dotted path.
"""

from __future__ import annotations

from ..shard.engine import ShardedGridEngine

__all__ = ["ShardedGridEngine"]
