"""Grid Query-Indexing engine (paper §3.3).

Churn: the engine indexes the *query* set, so query registrations and
drops invalidate the whole index — it keeps the
:class:`~repro.engines.base.BaseEngine` delta fallback (swap the array,
rebuild next cycle), which is the honest cost of this method under
churn.  Object joins/leaves likewise rebuild (positions arrive densely
packed from the session layer).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.answers import AnswerList
from ..core.query_index import QueryIndex
from ..errors import ConfigurationError, IndexStateError
from ..obs.registry import MetricsRegistry
from .base import _MAINTENANCE_MODES, BaseEngine


class QueryIndexingEngine(BaseEngine):
    """Grid Query-Indexing (§3.3)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "incremental",
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        self.name = f"query-indexing/{maintenance}"
        self.maintenance = maintenance
        self._ncells = ncells
        self._delta = delta
        self.index: Optional[QueryIndex] = None
        self._pending_answers: Optional[List[AnswerList]] = None

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if self.index is not None:
            self.index.tracer = tracer

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self._ncells is not None:
            self.index = QueryIndex(self.queries, self.k, ncells=self._ncells)
        elif self._delta is not None:
            self.index = QueryIndex(self.queries, self.k, delta=self._delta)
        else:
            self.index = QueryIndex(
                self.queries, self.k, n_objects=max(1, len(positions))
            )
        self.index.tracer = self.tracer
        self.metrics.inc("qi.maintain.bootstraps")
        self._pending_answers = self.index.bootstrap(positions)
        self._positions = positions

    def maintain(self, positions: np.ndarray) -> None:
        if self.index is None:
            raise IndexStateError("load() must run before maintain()")
        positions = np.asarray(positions, dtype=np.float64)
        self._pending_answers = None
        metrics = self.metrics
        if self.maintenance == "rebuild":
            self.index.rebuild_index(positions)
            metrics.inc("qi.maintain.rect_rebuilds")
        else:
            ops = self.index.update_index(positions)
            metrics.inc("qi.maintain.rect_ops", ops)
        if metrics.enabled:
            metrics.set_gauge("qi.rect_cells_mean", self.index.mean_rect_cells())
        self._positions = positions

    def _count_offers(self) -> int:
        """Total (object, query) distance offers of one Fig. 5 scan.

        Computed vectorized from the cell occupancies and query-list
        lengths — the hot loop itself stays uninstrumented.
        """
        assert self.index is not None and self._positions is not None
        n = self.index.grid.ncells
        positions = self._positions
        ii = np.clip((positions[:, 0] * n).astype(np.intp), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(np.intp), 0, n - 1)
        ql_len = np.fromiter(
            (len(bucket) for bucket in self.index.grid._buckets),
            dtype=np.int64,
            count=n * n,
        )
        return int(ql_len[jj * n + ii].sum())

    def answer(self) -> List[AnswerList]:
        if self.index is None or self._positions is None:
            raise IndexStateError("load() must run before answer()")
        if self._pending_answers is not None:
            # The bootstrap cycle already produced exact answers.
            answers = self._pending_answers
            self._pending_answers = None
            return answers
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("qi.answer.objects_scanned", len(self._positions))
            metrics.inc("qi.answer.offers", self._count_offers())
        return self.index.answer(self._positions)

    def set_queries(self, queries: np.ndarray) -> None:
        super().set_queries(queries)
        if self.index is not None:
            # Rectangles are recomputed from the new query positions on the
            # next maintenance pass; only the stored coordinates move here.
            self.index._qx = self.queries[:, 0].tolist()
            self.index._qy = self.queries[:, 1].tolist()
