"""Engine-layer home of the vectorized CSR fast-grid engine.

The implementation lives with its kernels in
:mod:`repro.core.fast_index` (CSR snapshot + ``batch_knn``); this module
is the engine package's canonical import location for it.
"""

from __future__ import annotations

from ..core.fast_index import FastGridEngine, StageTimings

__all__ = ["FastGridEngine", "StageTimings"]
