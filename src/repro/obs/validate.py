"""Observed-counters vs. cost-model predictions (the paper's §3 as a check).

The analytical model in :mod:`repro.core.cost_model` predicts, for the
overhaul Object-Indexing path under uniformity, *how much work* each query
should cost: the k-NN radius ``lcrit ~= sqrt(k/(pi NP))`` (Theorem 1
proof), and from it the number of grid cells and candidate objects the
``Rcrit`` scan touches.  The instrumentation layer counts that work as it
actually happens (``oi.answer.cells_visited``, ``oi.answer.objects_scanned``,
``oi.answer.r0_rings``).  This module closes the loop: run an instrumented
monitoring session, divide the counters by ``NQ``, and check each observed
per-query quantity lands within a multiplicative tolerance of its
prediction.

Order-of-magnitude agreement is the goal — the model drops constants and
edge effects (workspace boundary clipping, cell-granularity rounding), so
checks use a ratio band (default within 4x), not percent error.

Core modules are imported lazily so ``repro.obs`` stays importable on its
own and free of import cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple


def predict_overhaul_counters(
    n_objects: int, k: int, delta: Optional[float] = None
) -> Dict[str, float]:
    """Per-query work predictions for the overhaul Object-Indexing path.

    ``delta=None`` uses the cost model's optimal cell size for
    ``n_objects``.  Returns predicted means under uniformity:

    ``lcrit``
        expected k-th NN distance, ``sqrt(k/(pi NP))``.
    ``cells_per_query``
        cells of the ``Rcrit`` square of half-width ``lcrit``:
        ``(2 lcrit/delta + 1)^2``.
    ``objects_per_query``
        objects inside the cell-aligned ``Rcrit`` rectangle:
        ``NP (2 lcrit + delta)^2``, capped at ``NP``.
    ``rings_per_query``
        first-phase ring growth passes until ``>= k`` candidates are seen:
        the smallest ``L`` with ``(2L+1)^2 NP delta^2 >= k``.
    """
    from ..core.cost_model import expected_knn_radius_uniform, optimal_cell_size

    if delta is None:
        delta = optimal_cell_size(n_objects)
    lcrit = expected_knn_radius_uniform(k, n_objects)
    cells_side = 2.0 * lcrit / delta + 1.0
    objects_side = min(1.0, 2.0 * lcrit + delta)
    ring_side = math.sqrt(k / n_objects) / delta  # cells needed to hold k
    rings = max(0.0, math.ceil((ring_side - 1.0) / 2.0))
    return {
        "lcrit": lcrit,
        "delta": delta,
        "cells_per_query": cells_side * cells_side,
        "objects_per_query": min(float(n_objects), n_objects * objects_side**2),
        "rings_per_query": rings,
    }


@dataclass(frozen=True)
class QuantityCheck:
    """One observed-vs-predicted comparison."""

    name: str
    observed: float
    predicted: float
    tolerance_factor: float

    @property
    def ratio(self) -> float:
        if self.predicted == 0.0:
            return math.inf if self.observed else 1.0
        return self.observed / self.predicted

    @property
    def ok(self) -> bool:
        # Small absolute quantities (ring counts near zero) compare by
        # absolute slack instead of ratio, which is meaningless near 0.
        if self.predicted < 2.0 and self.observed < 2.0:
            return abs(self.observed - self.predicted) <= self.tolerance_factor
        ratio = self.ratio
        return 1.0 / self.tolerance_factor <= ratio <= self.tolerance_factor

    def render(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{verdict:4s} {self.name}: observed {self.observed:.3f} "
            f"vs predicted {self.predicted:.3f} "
            f"(ratio {self.ratio:.2f}, tolerance x{self.tolerance_factor:g})"
        )


@dataclass(frozen=True)
class ValidationReport:
    """All checks from one validation run."""

    checks: Tuple[QuantityCheck, ...]
    params: Mapping[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        header = ", ".join(f"{k}={v:g}" for k, v in self.params.items())
        lines = [f"== cost-model validation ({header}) =="]
        lines.extend(check.render() for check in self.checks)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def validate_object_indexing(
    observed: Mapping[str, float],
    n_objects: int,
    n_queries: int,
    k: int,
    delta: Optional[float] = None,
    tolerance_factor: float = 4.0,
) -> ValidationReport:
    """Check mean per-cycle counters against the §3.1 overhaul predictions.

    ``observed`` is a mapping of mean per-cycle counter deltas, as produced
    by :func:`repro.obs.export.mean_cycle_counters` on an instrumented
    ``object_indexing`` run (rebuild maintenance, overhaul answering).
    ``delta=None`` uses the cost model's optimal cell size.
    """
    predicted = predict_overhaul_counters(n_objects, k, delta)
    nq = float(n_queries)
    checks = (
        QuantityCheck(
            "cells_visited/query",
            observed.get("oi.answer.cells_visited", 0.0) / nq,
            predicted["cells_per_query"],
            tolerance_factor,
        ),
        QuantityCheck(
            "objects_scanned/query",
            observed.get("oi.answer.objects_scanned", 0.0) / nq,
            predicted["objects_per_query"],
            tolerance_factor,
        ),
        QuantityCheck(
            "r0_rings/query",
            observed.get("oi.answer.r0_rings", 0.0) / nq,
            predicted["rings_per_query"],
            tolerance_factor,
        ),
        QuantityCheck(
            "overhaul_calls/query",
            observed.get("oi.answer.overhaul_calls", 0.0) / nq,
            1.0,
            tolerance_factor,
        ),
    )
    return ValidationReport(
        checks,
        params={
            "NP": n_objects,
            "NQ": n_queries,
            "k": k,
            "delta": predicted["delta"],
            "lcrit": predicted["lcrit"],
        },
    )


def run_validation(
    n_objects: int = 2000,
    n_queries: int = 32,
    k: int = 8,
    cycles: int = 3,
    seed: int = 7,
    tolerance_factor: float = 4.0,
    delta: Optional[float] = None,
) -> ValidationReport:
    """End-to-end check: instrumented uniform run, counters vs. model.

    Builds an Object-Indexing system (rebuild maintenance, overhaul
    answering — the Lemma 1 configuration), monitors uniformly distributed
    objects for ``cycles`` cycles, and validates the mean per-cycle
    counters against :func:`predict_overhaul_counters`.
    """
    import numpy as np

    from ..core.cost_model import optimal_cell_size
    from ..core.monitor import MonitoringSystem
    from .export import mean_cycle_counters
    from .registry import MetricsRegistry

    if delta is None:
        delta = optimal_cell_size(n_objects)
    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    system = MonitoringSystem.object_indexing(
        k,
        rng.random((n_queries, 2)),
        maintenance="rebuild",
        answering="overhaul",
        delta=delta,
        registry=registry,
    )
    system.load(rng.random((n_objects, 2)))
    for _ in range(cycles):
        system.tick(rng.random((n_objects, 2)))
    observed = mean_cycle_counters(system.history)
    return validate_object_indexing(
        observed,
        n_objects=n_objects,
        n_queries=n_queries,
        k=k,
        delta=delta,
        tolerance_factor=tolerance_factor,
    )


def run_sharded_validation(
    n_objects: int = 600,
    n_queries: int = 32,
    k: int = 8,
    cycles: int = 4,
    seed: int = 7,
    workers: int = 2,
    shards: int = 2,
    tolerance_factor: float = 4.0,
) -> ValidationReport:
    """Soundness checks for the sharded engine's merged worker telemetry.

    Runs the same deterministic trace twice — once with ``workers``
    processes, once with the ``workers=0`` serial fallback, both on the
    same ``shards`` stripes — with a registry bound, and checks:

    * the ``shard.all.*`` aggregates of the two runs are **equal** for
      every deterministic (non-timing) counter — the multiprocess merge
      neither loses nor double-counts work;
    * the answers of the two runs are bit-identical;
    * whenever a cycle maintains every stripe, the per-stripe population
      gauges sum to exactly ``NP`` — no object is dropped or counted in
      two stripes;
    * maintenance accounting closes: every maintained (stripe, cycle)
      is exactly one of fresh build, delta patch, or delta rebuild;
    * the answering kernel's candidates per query are within
      ``tolerance_factor`` of the §3.1 cost-model prediction evaluated
      at the stripe grids' ~1-object-per-cell resolution
      (``delta = 1/sqrt(NP)``).
    """
    import numpy as np

    from ..engines.registry import build_system
    from .registry import MetricsRegistry
    from .remote import merged_worker_counters

    rng = np.random.default_rng(seed)
    queries = rng.random((n_queries, 2))
    trace = [rng.random((n_objects, 2))]
    for _ in range(cycles):
        step = np.clip(
            trace[-1] + rng.normal(0.0, 0.01, (n_objects, 2)), 0.0, 1.0
        )
        trace.append(step)

    def run(n_workers: int):
        registry = MetricsRegistry()
        system = build_system(
            "sharded",
            k,
            queries,
            workers=n_workers,
            shards=shards,
            oversubscribe=True,
            registry=registry,
        )
        answers = []
        population_violations = 0
        try:
            for i, positions in enumerate(trace):
                maintained_before = registry.counter("shard.all.shard.task.maintained")
                packaged = system.load(positions) if i == 0 else system.tick(positions)
                answers.append(tuple(query.neighbors for query in packaged))
                maintained = (
                    registry.counter("shard.all.shard.task.maintained")
                    - maintained_before
                )
                if maintained == shards:
                    # Every stripe refreshed this cycle, so every
                    # per-stripe population gauge is current.
                    total = sum(
                        registry.gauge("shard.stripe.objects", labels={"shard": s})
                        for s in range(shards)
                    )
                    if total != n_objects:
                        population_violations += 1
        finally:
            system.close()
        return registry, answers, population_violations

    serial_reg, serial_answers, serial_pop_bad = run(0)
    pool_reg, pool_answers, pool_pop_bad = run(workers)

    def deterministic(registry) -> Dict[str, float]:
        return {
            name: value
            for name, value in merged_worker_counters(registry).items()
            if not name.endswith(".seconds")
        }

    serial_counters = deterministic(serial_reg)
    pool_counters = deterministic(pool_reg)
    mismatched = sum(
        1
        for name in set(serial_counters) | set(pool_counters)
        if serial_counters.get(name) != pool_counters.get(name)
    )
    answer_mismatches = sum(
        1 for a, b in zip(serial_answers, pool_answers) if a != b
    )
    accounting_gap = abs(
        pool_counters.get("shard.task.maintained", 0.0)
        - pool_counters.get("shard.task.fresh_builds", 0.0)
        - pool_counters.get("delta.patch_cycles", 0.0)
        - pool_counters.get("delta.rebuild_cycles", 0.0)
    )
    predicted = predict_overhaul_counters(
        n_objects, k, delta=1.0 / math.sqrt(n_objects)
    )
    answered = pool_counters.get("fast.answer.queries", 0.0)
    candidates_per_query = (
        pool_counters.get("fast.answer.candidates", 0.0) / answered
        if answered
        else 0.0
    )
    checks = (
        QuantityCheck("worker_vs_serial_counter_mismatches", float(mismatched), 0.0, 0.0),
        QuantityCheck("worker_vs_serial_answer_mismatches", float(answer_mismatches), 0.0, 0.0),
        QuantityCheck(
            "stripe_population_violations",
            float(serial_pop_bad + pool_pop_bad),
            0.0,
            0.0,
        ),
        QuantityCheck("maintain_accounting_gap", accounting_gap, 0.0, 0.0),
        QuantityCheck(
            "candidates/query",
            candidates_per_query,
            predicted["objects_per_query"],
            tolerance_factor,
        ),
    )
    return ValidationReport(
        checks,
        params={
            "NP": n_objects,
            "NQ": n_queries,
            "k": k,
            "cycles": cycles,
            "workers": workers,
            "shards": shards,
        },
    )


def run_delta_validation(
    n_objects: int = 2000,
    n_queries: int = 32,
    k: int = 8,
    cycles: int = 8,
    seed: int = 7,
    move_fraction: float = 0.002,
    tolerance_factor: float = 4.0,
) -> ValidationReport:
    """Answer-reuse soundness check for the ``delta_grid`` engine.

    Runs an instrumented low-churn workload (only ``move_fraction`` of
    the objects move per cycle, so the dirty-region test lets most
    queries carry their previous answer forward) with a
    :class:`~repro.core.deltas.DeltaTracker` watching the *answers*.
    The hard invariant: a query whose answer was carried forward
    (``engine.last_reuse_mask``) must show **zero** churn in the
    tracker's delta for that cycle — reuse that changes an answer would
    be a correctness bug, so that check carries no tolerance.  Softer
    checks confirm the run exercised reuse at all and that the engine's
    reused/re-answered accounting covers every query every cycle.
    """
    import numpy as np

    from ..core.deltas import DeltaTracker
    from ..core.monitor import MonitoringSystem
    from .export import mean_cycle_counters
    from .registry import MetricsRegistry

    rng = np.random.default_rng(seed)
    registry = MetricsRegistry()
    system = MonitoringSystem.delta_grid(
        k, rng.random((n_queries, 2)), registry=registry
    )
    tracker = DeltaTracker(registry=registry)
    positions = rng.random((n_objects, 2))
    tracker.update(system.load(positions))
    violations = 0
    reused = 0
    movers_per_cycle = max(1, int(move_fraction * n_objects))
    for _ in range(cycles):
        positions = positions.copy()
        movers = rng.choice(n_objects, movers_per_cycle, replace=False)
        positions[movers] = np.clip(
            positions[movers] + rng.normal(0.0, 0.05, (movers_per_cycle, 2)),
            0.0,
            1.0,
        )
        deltas = tracker.update(system.tick(positions))
        mask = system.engine.last_reuse_mask
        if mask is not None:
            reused += int(mask.sum())
            violations += sum(
                1 for delta_q, m in zip(deltas, mask) if m and delta_q.changed
            )
    observed = mean_cycle_counters(system.history)
    accounted = observed.get("delta.queries_reused", 0.0) + observed.get(
        "delta.queries_reanswered", 0.0
    )
    checks = (
        QuantityCheck(
            "reused_query_churn_violations", float(violations), 0.0, 0.0
        ),
        QuantityCheck(
            "queries_reused/cycle", reused / cycles, float(n_queries),
            tolerance_factor,
        ),
        QuantityCheck(
            "reuse_accounting/cycle", accounted, float(n_queries), 1.0
        ),
    )
    return ValidationReport(
        checks,
        params={
            "NP": n_objects,
            "NQ": n_queries,
            "k": k,
            "cycles": cycles,
            "move_fraction": move_fraction,
        },
    )
