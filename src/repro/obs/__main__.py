"""CLI: run a short instrumented monitoring session and report.

Examples::

    PYTHONPATH=src python -m repro.obs --method object_overhaul --cycles 5
    PYTHONPATH=src python -m repro.obs --method fast_grid --jsonl run.jsonl
    PYTHONPATH=src python -m repro.obs --validate
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Instrumented monitoring run: cycle report + optional exports.",
    )
    parser.add_argument("--method", default="object_overhaul",
                        help="bench method name (see repro.bench.runner)")
    parser.add_argument("--np", dest="n_objects", type=int, default=2000)
    parser.add_argument("--nq", dest="n_queries", type=int, default=32)
    parser.add_argument("-k", type=int, default=8)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the per-cycle event log here")
    parser.add_argument("--prometheus", metavar="PATH",
                        help="write a Prometheus text dump here")
    parser.add_argument("--validate", action="store_true",
                        help="also run the cost-model validation checks "
                             "(overhaul counters + delta-grid answer reuse)")
    args = parser.parse_args(argv)

    import numpy as np

    from ..engines.registry import build_system
    from .export import cycle_report, prometheus_text, write_history_jsonl
    from .registry import MetricsRegistry
    from .validate import run_delta_validation, run_validation

    rng = np.random.default_rng(args.seed)
    queries = rng.random((args.n_queries, 2))
    registry = MetricsRegistry()
    system = build_system(args.method, args.k, queries, registry=registry)
    system.load(rng.random((args.n_objects, 2)))
    for _ in range(args.cycles):
        system.tick(rng.random((args.n_objects, 2)))

    print(cycle_report(system))
    if args.jsonl:
        lines = write_history_jsonl(system, args.jsonl)
        print(f"\nwrote {lines} cycle records to {args.jsonl}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(registry))
        print(f"wrote Prometheus dump to {args.prometheus}")
    if args.validate:
        failed = False
        for report in (
            run_validation(
                n_objects=args.n_objects,
                n_queries=args.n_queries,
                k=args.k,
                seed=args.seed,
            ),
            run_delta_validation(
                n_objects=args.n_objects,
                n_queries=args.n_queries,
                k=args.k,
                seed=args.seed,
            ),
        ):
            print()
            print(report.render())
            failed = failed or not report.ok
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
