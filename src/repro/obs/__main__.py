"""CLI: instrumented runs, a live metrics endpoint, benchmark trends.

Three entry points share the module::

    # instrumented monitoring run: cycle report + optional exports
    PYTHONPATH=src python -m repro.obs --method object_overhaul --cycles 5
    PYTHONPATH=src python -m repro.obs --validate

    # live Prometheus endpoint (+ optional terminal dashboard)
    PYTHONPATH=src python -m repro.obs serve --port 9109 --watch

    # committed BENCH_*.json vs the working tree
    PYTHONPATH=src python -m repro.obs trend BENCH_sharded.json
"""

from __future__ import annotations

import argparse
import sys


def _build(args, registry):
    """A monitoring system for the CLI flags (sharded flags only apply there)."""
    import numpy as np

    from ..engines.registry import build_system

    rng = np.random.default_rng(args.seed)
    queries = rng.random((args.n_queries, 2))
    config = {}
    if args.method == "sharded":
        config = {
            "workers": args.workers,
            "oversubscribe": True,
        }
        if args.shards is not None:
            config["shards"] = args.shards
    system = build_system(args.method, args.k, queries, registry=registry, **config)
    return system, rng


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--method", default="object_overhaul",
                        help="bench method name (see repro.bench.runner)")
    parser.add_argument("--np", dest="n_objects", type=int, default=2000)
    parser.add_argument("--nq", dest="n_queries", type=int, default=32)
    parser.add_argument("-k", type=int, default=8)
    parser.add_argument("--cycles", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (sharded method only)")
    parser.add_argument("--shards", type=int, default=None,
                        help="stripe count (sharded method only)")


def _serve(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs serve",
        description="Run a monitoring loop and expose live Prometheus text "
                    "over HTTP.",
    )
    _add_run_flags(parser)
    parser.set_defaults(method="sharded")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9109,
                        help="HTTP port (0 picks an ephemeral one)")
    parser.add_argument("--interval", type=float, default=0.0,
                        help="seconds to sleep between cycles")
    parser.add_argument("--watch", action="store_true",
                        help="print a one-line cycle dashboard to the terminal")
    args = parser.parse_args(argv)

    import time

    from .registry import MetricsRegistry
    from .remote import start_metrics_server

    registry = MetricsRegistry()
    system, rng = _build(args, registry)
    server, _ = start_metrics_server(registry, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"serving metrics at http://{host}:{port}/metrics "
          f"({args.method}, NP={args.n_objects}, NQ={args.n_queries}, "
          f"k={args.k}; {args.cycles or 'unlimited'} cycles)")
    positions = rng.random((args.n_objects, 2))
    try:
        system.load(positions)
        server.publish()
        cycle = 0
        while args.cycles == 0 or cycle < args.cycles:
            cycle += 1
            positions = positions + rng.normal(0.0, 0.01, positions.shape)
            positions = positions.clip(0.0, 1.0)
            system.tick(positions)
            server.publish()
            if args.watch:
                stats = system.last_stats
                gauges = registry.gauge_values()
                extras = "".join(
                    f"  {key}={gauges[key]:g}"
                    for key in ("shard.last_rounds", "shard.imbalance_ratio",
                                "shard.pool.respawns")
                    if key in gauges
                )
                print(f"cycle {cycle:4d}  index {stats.index_time:.4f}s  "
                      f"answer {stats.answer_time:.4f}s{extras}")
            if args.interval > 0:
                time.sleep(args.interval)
    except KeyboardInterrupt:
        print("\ninterrupted")
    finally:
        server.shutdown()
        system.close()
    return 0


def _trend(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs trend",
        description="Diff benchmark JSON files against their committed "
                    "baselines and flag regressions.",
    )
    parser.add_argument("files", nargs="*",
                        help="benchmark JSON files (default: BENCH_*.json "
                             "in the current directory)")
    parser.add_argument("--rev", default="HEAD",
                        help="git revision supplying baselines (default HEAD)")
    parser.add_argument("--baseline-dir", metavar="DIR",
                        help="read baselines from DIR/<name> instead of git")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative change that counts as movement "
                             "(default 0.10)")
    parser.add_argument("--all", action="store_true",
                        help="show every comparable metric, not just movement")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any regression is flagged")
    args = parser.parse_args(argv)

    import glob
    import json
    import os

    from .trend import committed_json, compare_benchmarks, render_trend_report

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("no benchmark files found (expected BENCH_*.json)")
        return 0
    per_file = {}
    skipped = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            current = json.load(handle)
        if args.baseline_dir:
            base_path = os.path.join(args.baseline_dir, os.path.basename(path))
            try:
                with open(base_path, "r", encoding="utf-8") as handle:
                    baseline = json.load(handle)
            except (OSError, json.JSONDecodeError):
                baseline = None
        else:
            baseline = committed_json(path, rev=args.rev)
        if baseline is None:
            skipped.append(path)
            continue
        per_file[os.path.basename(path)] = compare_benchmarks(
            baseline, current, threshold=args.threshold
        )
    for path in skipped:
        print(f"note: no baseline for {path} (new file or git unavailable)")
    if not per_file:
        print("nothing to compare")
        return 0
    report = render_trend_report(per_file, show_all=args.all)
    print(report)
    if args.strict and "TREND FAIL" in report.splitlines()[-1]:
        return 1
    return 0


def _run(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Instrumented monitoring run: cycle report + optional exports.",
    )
    _add_run_flags(parser)
    parser.add_argument("--jsonl", metavar="PATH",
                        help="write the per-cycle event log here")
    parser.add_argument("--prometheus", metavar="PATH",
                        help="write a Prometheus text dump here")
    parser.add_argument("--validate", action="store_true",
                        help="also run the soundness checks: overhaul "
                             "cost-model counters, delta-grid answer reuse, "
                             "and sharded merged-worker telemetry")
    args = parser.parse_args(argv)

    import numpy as np

    from .export import cycle_report, prometheus_text, write_history_jsonl
    from .registry import MetricsRegistry
    from .validate import (
        run_delta_validation,
        run_sharded_validation,
        run_validation,
    )

    rng = np.random.default_rng(args.seed)
    registry = MetricsRegistry()
    system, _ = _build(args, registry)
    system.load(rng.random((args.n_objects, 2)))
    for _ in range(args.cycles):
        system.tick(rng.random((args.n_objects, 2)))

    print(cycle_report(system))
    if args.jsonl:
        lines = write_history_jsonl(system, args.jsonl)
        print(f"\nwrote {lines} cycle records to {args.jsonl}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(registry))
        print(f"wrote Prometheus dump to {args.prometheus}")
    system.close()
    if args.validate:
        failed = False
        for report in (
            run_validation(
                n_objects=args.n_objects,
                n_queries=args.n_queries,
                k=args.k,
                seed=args.seed,
            ),
            run_delta_validation(
                n_objects=args.n_objects,
                n_queries=args.n_queries,
                k=args.k,
                seed=args.seed,
            ),
            run_sharded_validation(
                n_objects=min(args.n_objects, 800),
                n_queries=args.n_queries,
                k=args.k,
                seed=args.seed,
                workers=max(1, args.workers),
            ),
        ):
            print()
            print(report.render())
            failed = failed or not report.ok
        if failed:
            return 1
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return _serve(argv[1:])
    if argv and argv[0] == "trend":
        return _trend(argv[1:])
    return _run(argv)


if __name__ == "__main__":
    sys.exit(main())
