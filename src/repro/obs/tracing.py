"""Span/Tracer API: nested wall-clock stage timing.

A :class:`Span` measures one stage of a monitoring cycle; spans nest, and
the nesting is encoded in a dotted path (``maintain.csr_snapshot``,
``answer.r0_growth``).  On exit — normal or exceptional — a span records
two counters into the tracer's registry::

    span.<path>.calls    += 1
    span.<path>.seconds  += duration

so exporters and per-cycle breakdowns read stage timings from the same
:class:`~repro.obs.registry.MetricsRegistry` as every other metric.

Two flavors exist:

* :class:`Tracer` — always measures time (two ``perf_counter`` calls per
  span).  Give it :data:`~repro.obs.registry.NULL_REGISTRY` for a tracer
  that times but records nowhere; the fast CSR engine uses exactly that
  to fill its ``stage_history`` when instrumentation is off.
* :data:`NULL_TRACER` — the disabled path: ``span()`` hands back one
  shared do-nothing context manager, no clock is read at all.

Tracers are single-threaded, like the monitoring cycle they measure.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

from .registry import MetricsRegistry, NULL_REGISTRY


class Span:
    """One timed stage; use as a context manager.

    After ``__exit__`` the measured ``duration`` (seconds) and the full
    dotted ``path`` are available on the object, whether or not the body
    raised — the recording is exception-safe by construction, because
    ``__exit__`` always runs and always pops the tracer stack.
    """

    __slots__ = ("_tracer", "name", "path", "start", "duration")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.path = name
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "Span":
        self.path = self._tracer._push(self.name)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self.start
        self._tracer._finish(self)
        return False


class Tracer:
    """Factory for nested spans, recording into one metrics registry."""

    enabled = True

    def __init__(self, registry: MetricsRegistry = NULL_REGISTRY) -> None:
        self.registry = registry
        self._stack: List[str] = []
        # Span paths repeat every cycle; caching the joined paths and the
        # derived counter names keeps per-span cost to dict lookups.
        self._paths: Dict[tuple, str] = {}
        self._names: Dict[str, tuple] = {}

    def span(self, name: str) -> Span:
        """A new span named ``name``, nested under the currently open one."""
        return Span(self, name)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def _push(self, name: str) -> str:
        stack = self._stack
        parent = stack[-1] if stack else ""
        key = (parent, name)
        path = self._paths.get(key)
        if path is None:
            path = f"{parent}.{name}" if parent else name
            self._paths[key] = path
        stack.append(path)
        return path

    def _finish(self, span: Span) -> None:
        self._stack.pop()
        path = span.path
        names = self._names.get(path)
        if names is None:
            names = (f"span.{path}.calls", f"span.{path}.seconds")
            self._names[path] = names
        registry = self.registry
        registry.inc(names[0])
        registry.inc(names[1], span.duration)


class _NullSpan:
    """Shared do-nothing span returned by the null tracer."""

    __slots__ = ()
    name = ""
    path = ""
    start = 0.0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: no clock reads, no recording, no per-span objects."""

    enabled = False
    registry = NULL_REGISTRY

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    @property
    def depth(self) -> int:
        return 0


#: Shared no-op tracer for uninstrumented systems.
NULL_TRACER = NullTracer()


def span_seconds(counters: Dict[str, float]) -> Dict[str, float]:
    """Extract ``{span path: seconds}`` from a counter mapping.

    Works on registry counter dumps and on per-cycle counter deltas alike
    (both use the ``span.<path>.seconds`` naming).
    """
    out: Dict[str, float] = {}
    for name, value in counters.items():
        if name.startswith("span.") and name.endswith(".seconds"):
            out[name[len("span."):-len(".seconds")]] = value
    return out
