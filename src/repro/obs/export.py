"""Exporters: JSONL event log, Prometheus text dump, human cycle report.

Three views of the same instrumentation data:

* :func:`write_history_jsonl` — one JSON object per monitoring cycle
  (timestamp, timing split, per-cycle counter deltas), the machine-
  readable event log CI uploads as an artifact.
* :func:`prometheus_text` — a point-in-time dump of a
  :class:`~repro.obs.registry.MetricsRegistry` in the Prometheus text
  exposition format (counters as ``*_total``, gauges, cumulative-bucket
  histograms), for scraping or diffing.
* :func:`cycle_report` — an aligned plain-text report of where cycle
  time went (the paper's Fig. 11(b) split, extended with the engine's
  sub-stages) plus the per-cycle counter means.
"""

from __future__ import annotations

import json
import os
import re
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence, Union

from .registry import MetricsRegistry, split_labels
from .tracing import span_seconds

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def history_records(history: Sequence[Any]) -> List[Dict[str, Any]]:
    """Per-cycle JSON-ready records from a list of ``CycleStats``."""
    records = []
    for cycle, stats in enumerate(history):
        record: Dict[str, Any] = {
            "cycle": cycle,
            "timestamp": stats.timestamp,
            "index_time": stats.index_time,
            "answer_time": stats.answer_time,
            "total_time": stats.total_time,
        }
        counters = getattr(stats, "counters", None)
        if counters is not None:
            record["counters"] = dict(counters)
        records.append(record)
    return records


def write_history_jsonl(
    system_or_history: Any, path_or_file: Union[str, IO[str]]
) -> int:
    """Write one JSON line per monitoring cycle; returns the line count.

    Accepts a :class:`~repro.core.monitor.MonitoringSystem` (its
    ``history`` is used) or a plain list of ``CycleStats``.
    """
    history = getattr(system_or_history, "history", system_or_history)
    records = history_records(history)
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    else:
        for record in records:
            path_or_file.write(json.dumps(record) + "\n")
    return len(records)


def read_history_jsonl(path_or_file: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Read a JSONL event log back into a list of per-cycle records."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = path_or_file.readlines()
    return [json.loads(line) for line in lines if line.strip()]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    return _NAME_RE.sub("_", f"{prefix}_{name}".replace(".", "_"))


def _prom_labels(labels: Mapping[str, str]) -> str:
    """A rendered Prometheus label set (empty string when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_RE.sub("_", k)}="{str(v).translate(_LABEL_ESCAPES)}"'
        for k, v in sorted(labels.items())
    )
    return f"{{{inner}}}"


def _prom_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """Dump a registry in the Prometheus text exposition format.

    Labeled series (keys produced by
    :func:`~repro.obs.registry.label_key`) are rendered as native
    Prometheus label sets — ``repro_shard_worker_tasks_total{worker="0"}``
    — with one HELP/TYPE header per metric name, labeled series grouped
    beneath it.
    """
    lines: List[str] = []

    def emit(kind: str, keys, suffix: str, value_of) -> None:
        seen_header = None
        for key in sorted(keys):
            name, labels = split_labels(key)
            metric = _prom_name(name, prefix) + suffix
            if metric != seen_header:
                lines.append(f"# HELP {metric} registry {kind} {name}")
                lines.append(f"# TYPE {metric} {kind}")
                seen_header = metric
            lines.append(f"{metric}{_prom_labels(labels)} {value_of(key)}")

    emit(
        "counter",
        registry.counter_values(),
        "_total",
        lambda key: _prom_value(registry.counter(key)),
    )
    emit(
        "gauge",
        registry.gauge_values(),
        "",
        lambda key: _prom_value(registry.gauge(key)),
    )
    seen_header = None
    for key in sorted(registry.snapshot()["histograms"]):  # type: ignore[arg-type]
        histogram = registry.histogram(key)
        assert histogram is not None
        name, labels = split_labels(key)
        metric = _prom_name(name, prefix)
        if metric != seen_header:
            lines.append(f"# HELP {metric} registry histogram {name}")
            lines.append(f"# TYPE {metric} histogram")
            seen_header = metric
        for bound, cumulative in histogram.cumulative():
            le = "+Inf" if bound == float("inf") else f"{bound:g}"
            bucket_labels = _prom_labels({**labels, "le": le})
            lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
        lines.append(f"{metric}_sum{_prom_labels(labels)} {_prom_value(histogram.sum)}")
        lines.append(f"{metric}_count{_prom_labels(labels)} {histogram.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a Prometheus text dump into ``{sample_name: value}``.

    Labeled samples (including bucket ``{le="..."}`` suffixes) keep the
    rendered label set as part of the key —
    :func:`~repro.obs.registry.split_labels` takes such keys apart.
    Provided for round-trip tests and quick diffing, not as a full parser.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


# ----------------------------------------------------------------------
# Human-readable cycle report
# ----------------------------------------------------------------------
def _align(columns: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return lines


def mean_cycle_counters(
    history: Sequence[Any], skip_first: bool = True
) -> Dict[str, float]:
    """Mean per-cycle counter deltas over an instrumented history."""
    stats = history[1:] if skip_first and len(history) > 1 else list(history)
    totals: Dict[str, float] = {}
    cycles = 0
    for entry in stats:
        counters = getattr(entry, "counters", None)
        if counters is None:
            continue
        cycles += 1
        for name, value in counters.items():
            totals[name] = totals.get(name, 0.0) + value
    if not cycles:
        return {}
    return {name: value / cycles for name, value in totals.items()}


def cycle_report(system: Any, skip_first: bool = True) -> str:
    """Aligned text report: stage timing means + counter means per cycle.

    ``system`` is any object with ``engine`` (``.name``), ``history``
    (``CycleStats`` entries), and optionally ``registry``.  The initial
    build cycle is excluded by default, like the paper's steady-state
    measurements.
    """
    history = system.history
    stats = history[1:] if skip_first and len(history) > 1 else history
    cycles = len(stats)
    mean_index = sum(s.index_time for s in stats) / cycles
    mean_answer = sum(s.answer_time for s in stats) / cycles
    lines = [
        f"== cycle report: {system.engine.name} ==",
        f"cycles measured: {cycles} (initial build "
        f"{'excluded' if skip_first and len(history) > 1 else 'included'})",
        f"mean cycle time: {mean_index + mean_answer:.6f}s "
        f"(index {mean_index:.6f}s + answer {mean_answer:.6f}s)",
    ]
    counters = mean_cycle_counters(history, skip_first=skip_first)
    stages = span_seconds(counters)
    if stages:
        lines.append("")
        lines.append("-- mean seconds per cycle by span --")
        rows = [
            [path, f"{seconds:.6f}"]
            for path, seconds in sorted(stages.items())
        ]
        lines.extend(_align(["span", "seconds"], rows))
    plain = {
        name: value
        for name, value in counters.items()
        if not name.startswith("span.")
    }
    if plain:
        lines.append("")
        lines.append("-- mean counters per cycle --")
        rows = [
            [name, f"{value:.2f}" if value != int(value) else str(int(value))]
            for name, value in sorted(plain.items())
        ]
        lines.extend(_align(["counter", "per cycle"], rows))
    registry: Optional[MetricsRegistry] = getattr(system, "registry", None)
    if registry is not None and registry.gauge_values():
        lines.append("")
        lines.append("-- gauges (latest) --")
        rows = [
            [name, f"{value:g}"]
            for name, value in sorted(registry.gauge_values().items())
        ]
        lines.extend(_align(["gauge", "value"], rows))
    return "\n".join(lines)
