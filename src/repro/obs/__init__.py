"""Unified instrumentation layer: metrics, spans, exporters, validation.

Everything an engine or benchmark measures flows into one
:class:`MetricsRegistry`: algorithmic counters (cells visited, objects
scanned, fallbacks), per-cycle stage timings recorded by :class:`Tracer`
spans, and gauges.  Exporters turn the registry (or an instrumented cycle
history) into a JSONL event log, a Prometheus text dump, or a human cycle
report; :mod:`repro.obs.validate` compares counted work against the
paper's analytical cost model.

Instrumentation is opt-in: systems built without a registry run on the
shared no-op :data:`NULL_REGISTRY` / :data:`NULL_TRACER` pair, whose cost
is one no-op method call per emission site.

Only standard-library modules are imported here (``repro.core`` imports
``repro.obs``, never the reverse at module level).
"""

from .counters import CounterBlock
from .export import (
    cycle_report,
    history_records,
    mean_cycle_counters,
    parse_prometheus_text,
    prometheus_text,
    read_history_jsonl,
    write_history_jsonl,
)
from .remote import (
    MetricsServer,
    WorkerTelemetry,
    merge_worker_metrics,
    merged_worker_counters,
    start_metrics_server,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    label_key,
    split_labels,
)
from .tracing import NullTracer, NULL_TRACER, Span, Tracer, span_seconds
from .validate import (
    QuantityCheck,
    ValidationReport,
    predict_overhaul_counters,
    run_validation,
    validate_object_indexing,
)

__all__ = [
    "CounterBlock",
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "QuantityCheck",
    "Span",
    "Tracer",
    "ValidationReport",
    "WorkerTelemetry",
    "cycle_report",
    "history_records",
    "label_key",
    "mean_cycle_counters",
    "merge_worker_metrics",
    "merged_worker_counters",
    "parse_prometheus_text",
    "predict_overhaul_counters",
    "prometheus_text",
    "start_metrics_server",
    "read_history_jsonl",
    "run_validation",
    "span_seconds",
    "split_labels",
    "validate_object_indexing",
    "write_history_jsonl",
]
