"""Cross-process telemetry: worker-side collection, parent-side merge.

The sharded engine (:mod:`repro.shard`) executes its per-stripe work in
forked worker processes, which cannot share the parent's
:class:`~repro.obs.registry.MetricsRegistry`.  This module closes that
gap without adding a single syscall to the hot path:

* Each worker owns a :class:`WorkerTelemetry` — a lazily constructed
  local registry + tracer pair.  When a task arrives with
  ``obs=True``, the task function records its spans and counters into
  the local registry and ships the per-task **counter delta** (a small
  ``{name: float}`` dict) piggybacked on the result message it was going
  to send anyway.  With ``obs=False`` the local pair is never built and
  the reply carries no metrics key at all.
* The parent calls :func:`merge_worker_metrics` on every result.  Each
  shipped counter ``name`` lands twice in the bound registry: as the
  labeled per-worker series ``shard.worker.<name>{worker="i"}`` and as
  the plain aggregate ``shard.all.<name>``.  Because metrics ride the
  result pipe, the pool's task-id de-duplication gives merge idempotence
  for free: a task re-dispatched after a worker crash produces exactly
  one result, hence exactly one merge — counters cannot double-count.

:func:`start_metrics_server` additionally exposes a registry's live
Prometheus text over a stdlib HTTP endpoint (``python -m repro.obs
serve`` wraps it).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple

from ..errors import IndexStateError
from .registry import NULL_REGISTRY, MetricsRegistry
from .tracing import Tracer

#: Worker-side span names for the two task stages.  The parent asserts
#: their shipped seconds sum to at most the task's wall time.
BUILD_SPAN = "shard_build"
ANSWER_SPAN = "shard_answer"

_STAGE_SECONDS = (f"span.{BUILD_SPAN}.seconds", f"span.{ANSWER_SPAN}.seconds")


class WorkerTelemetry:
    """Lazy per-process metrics registry + tracer for shard workers.

    One instance lives for the whole worker process (or for the serial
    engine's in-process fallback).  ``begin()`` is called at the top of
    every task: with instrumentation off it hands back a shared
    *unrecorded* tracer — spans still measure (the engine needs the
    build/answer split for timing attribution) but record nowhere and no
    registry is ever constructed.  With instrumentation on it snapshots
    the local counters so ``deltas()`` can ship exactly this task's
    contribution; the registry and tracer persist across tasks, so span
    path/name caches stay warm.
    """

    __slots__ = ("registry", "tracer", "_timing_tracer", "_before", "_enabled")

    def __init__(self) -> None:
        self.registry: Optional[MetricsRegistry] = None
        self.tracer: Optional[Tracer] = None
        # Times but records nowhere; shared across disabled tasks.
        self._timing_tracer = Tracer(NULL_REGISTRY)
        self._before: Optional[Dict[str, float]] = None
        self._enabled = False

    def begin(self, enabled: bool) -> Tracer:
        """Start one task; returns the tracer its spans should use."""
        self._enabled = bool(enabled)
        if not self._enabled:
            return self._timing_tracer
        if self.registry is None:
            self.registry = MetricsRegistry()
            self.tracer = Tracer(self.registry)
        self._before = self.registry.counter_values()
        return self.tracer

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Record a counter for the current task (no-op when disabled)."""
        if self._enabled:
            self.registry.inc(name, amount)

    @property
    def enabled(self) -> bool:
        return self._enabled

    def deltas(self) -> Optional[Dict[str, float]]:
        """This task's counter deltas, or ``None`` when instrumentation is off."""
        if not self._enabled:
            return None
        return self.registry.counters_since(self._before)


def merge_worker_metrics(
    registry: MetricsRegistry,
    worker: object,
    deltas: Mapping[str, float],
    task_wall: Optional[float] = None,
) -> None:
    """Merge one task's shipped counter deltas into the parent registry.

    Every counter lands under the labeled per-worker series
    ``shard.worker.<name>{worker="<worker>"}`` and the plain aggregate
    ``shard.all.<name>``.  When ``task_wall`` (the worker-measured task
    wall time) is provided, the shipped build/answer stage seconds are
    checked against it: the stages are disjoint sub-intervals of the
    task, so their sum exceeding the wall time means the worker's timing
    attribution is broken and an :class:`~repro.errors.IndexStateError`
    is raised rather than silently recording nonsense.
    """
    if task_wall is not None:
        staged = sum(deltas.get(name, 0.0) for name in _STAGE_SECONDS)
        if staged > task_wall * (1.0 + 1e-9) + 1e-9:
            raise IndexStateError(
                f"worker {worker} stage seconds {staged:.9f} exceed task "
                f"wall time {task_wall:.9f}; timing attribution is broken"
            )
    labels = {"worker": worker}
    for name, value in deltas.items():
        registry.inc(f"shard.worker.{name}", value, labels=labels)
        registry.inc(f"shard.all.{name}", value)


def merged_worker_counters(
    registry: MetricsRegistry, aggregate: bool = True
) -> Dict[str, float]:
    """The merged worker counters, with the routing prefix stripped.

    ``aggregate=True`` returns the ``shard.all.*`` view (one entry per
    original worker-side counter name); ``aggregate=False`` returns the
    per-worker view keyed by the full labeled storage key.
    """
    prefix = "shard.all." if aggregate else "shard.worker."
    out: Dict[str, float] = {}
    for key, value in registry.counter_values().items():
        if key.startswith(prefix):
            out[key[len(prefix):]] = value
    return out


# ----------------------------------------------------------------------
# Live Prometheus endpoint
# ----------------------------------------------------------------------
class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves the owning server's registry as Prometheus text."""

    server: "MetricsServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path.split("?")[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served")
            return
        body = self.server.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # HTTP access logs would interleave with the cycle dashboard


class MetricsServer(ThreadingHTTPServer):
    """Stdlib HTTP server exposing one registry at ``/metrics``.

    The monitoring cycle runs in the main thread and mutates the
    registry's plain dicts without locking, so request handlers never
    read the registry directly: the cycle loop calls :meth:`publish`
    after each cycle and handlers serve the last published text (an
    atomic string swap).  ``publish()`` with no argument renders the
    bound registry on the spot — callers that *are* the mutating thread
    use that form.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], registry: MetricsRegistry) -> None:
        super().__init__(address, _MetricsHandler)
        self.registry = registry
        self._text = "# metrics: no cycle published yet\n"

    def publish(self, text: Optional[str] = None) -> None:
        if text is None:
            from .export import prometheus_text

            text = prometheus_text(self.registry)
        self._text = text

    def render(self) -> str:
        return self._text


def start_metrics_server(
    registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
) -> Tuple[MetricsServer, threading.Thread]:
    """Serve ``registry`` at ``http://host:port/metrics`` in a daemon thread.

    ``port=0`` binds an ephemeral port — read the actual one from
    ``server.server_address``.  Call ``server.publish()`` after each
    cycle to refresh the exposed text, and ``server.shutdown()`` to stop.
    """
    server = MetricsServer((host, port), registry)
    server.publish()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-obs-metrics", daemon=True
    )
    thread.start()
    return server, thread
