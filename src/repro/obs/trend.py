"""Benchmark trend analysis: diff committed BENCH_*.json against current.

``python -m repro.obs trend`` feeds this module: each benchmark JSON is
flattened to dotted numeric paths (``runs.fast_grid.answer_s``,
``variants.2w2s.total_s``), paired with a baseline — by default the
version of the same file committed at ``HEAD`` — and every pair is
classified by a direction heuristic on the metric name:

* *lower is better*: wall-clock style metrics (``*_s``, ``*seconds*``,
  ``*time*``, ``*overhead*``, ``*respawns*``);
* *higher is better*: ``*speedup*``, ``*throughput*``, ``*qps*``;
* anything else (populations, cycle counts, platform facts) carries no
  direction and is never flagged.

A pair whose value moved in the "worse" direction by more than the
relative threshold is a **regression**.  The CLI report is advisory by
default (CI uploads it as a non-blocking artifact — committed numbers
come from other machines); ``--strict`` turns regressions into a
non-zero exit for local A/B runs on one box.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

#: Substrings marking a metric where smaller values are improvements
#: (a ``_s`` *suffix* also qualifies — suffix only, so ``_std`` names
#: don't match).
LOWER_IS_BETTER = ("seconds", "time", "overhead", "respawns", "latency")
#: Substrings marking a metric where larger values are improvements.
HIGHER_IS_BETTER = ("speedup", "throughput", "qps", "rate")


def flatten_numeric(obj: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested JSON value, keyed by dotted path.

    Dict keys join with ``.``; list elements index as ``path[i]``.
    Booleans are *not* numbers here (they are config, not measurements).
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, path))
    elif isinstance(obj, (list, tuple)):
        for i, value in enumerate(obj):
            out.update(flatten_numeric(value, f"{prefix}[{i}]"))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def metric_direction(path: str) -> Optional[str]:
    """``"lower"``, ``"higher"``, or ``None`` for a flattened metric path.

    Only the leaf segment is classified — a timing-flavored *container*
    name must not give every child a direction.
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    leaf = leaf.split("[", 1)[0]
    if any(mark in leaf for mark in HIGHER_IS_BETTER):
        return "higher"
    if leaf.endswith("_s") or any(mark in leaf for mark in LOWER_IS_BETTER):
        return "lower"
    return None


@dataclass(frozen=True)
class TrendEntry:
    """One baseline-vs-current comparison of a single metric."""

    path: str
    baseline: float
    current: float
    direction: Optional[str]
    threshold: float

    @property
    def change(self) -> float:
        """Relative change vs baseline (positive = value went up)."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    @property
    def regression(self) -> bool:
        if self.direction is None:
            return False
        change = self.change
        if self.direction == "lower":
            return change > self.threshold
        return change < -self.threshold

    @property
    def improvement(self) -> bool:
        if self.direction is None:
            return False
        change = self.change
        if self.direction == "lower":
            return change < -self.threshold
        return change > self.threshold

    def render(self) -> str:
        flag = "REGRESSION" if self.regression else (
            "improved" if self.improvement else "ok"
        )
        change = self.change
        pct = "n/a" if change == float("inf") else f"{change:+.1%}"
        return (
            f"{flag:10s} {self.path}: {self.baseline:g} -> {self.current:g} "
            f"({pct})"
        )


def compare_benchmarks(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    threshold: float = 0.10,
) -> List[TrendEntry]:
    """Directional comparisons for every metric present in both dumps."""
    base_flat = flatten_numeric(baseline)
    curr_flat = flatten_numeric(current)
    return [
        TrendEntry(
            path,
            base_flat[path],
            curr_flat[path],
            metric_direction(path),
            threshold,
        )
        for path in sorted(base_flat)
        if path in curr_flat
    ]


def committed_json(path: str, rev: str = "HEAD") -> Optional[Dict[str, object]]:
    """The committed version of a repo file as parsed JSON, or ``None``.

    ``None`` means the file is not in ``rev`` (new benchmark) or git is
    unavailable — both simply leave the file without a baseline.
    """
    try:
        blob = subprocess.run(
            ["git", "show", f"{rev}:{path}"],
            capture_output=True,
            check=True,
            text=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def render_trend_report(
    per_file: Mapping[str, Sequence[TrendEntry]],
    show_all: bool = False,
) -> str:
    """Aligned multi-file report; regressions and improvements always shown."""
    lines: List[str] = []
    total_regressions = 0
    for name in sorted(per_file):
        entries = per_file[name]
        flagged = [e for e in entries if e.regression or e.improvement]
        regressions = sum(1 for e in entries if e.regression)
        total_regressions += regressions
        lines.append(
            f"== {name}: {len(entries)} comparable metrics, "
            f"{regressions} regression(s) =="
        )
        for entry in entries if show_all else flagged:
            lines.append("  " + entry.render())
        if not (entries if show_all else flagged):
            lines.append("  (no movement beyond threshold)")
    lines.append(
        f"TREND {'FAIL' if total_regressions else 'OK'}: "
        f"{total_regressions} regression(s) across {len(per_file)} file(s)"
    )
    return "\n".join(lines)
