"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single sink for everything the instrumentation layer
measures — span timings (see :mod:`repro.obs.tracing`), algorithmic
counters (cells visited, objects scanned, ...), and per-cycle gauges.  It
is deliberately minimal: plain dictionaries of floats, no locking (one
registry per monitoring system, single-threaded like the monitoring
cycle itself).

Metrics may carry a *label set* — ``inc("shard.worker.tasks",
labels={"worker": "3"})`` — which is flattened into the storage key in
the Prometheus sample syntax (``shard.worker.tasks{worker="3"}``, label
keys sorted).  :func:`label_key` builds such keys and
:func:`split_labels` takes them apart; the exporter renders the label
set natively instead of mangling it into the metric name.  Unlabeled
metrics pay nothing for this — the ``labels=None`` fast path is one
``if`` per emission.

Instrumentation is *optional*.  :data:`NULL_REGISTRY` is a shared no-op
instance used whenever a monitoring system is built without a registry;
every recording method is a ``pass``, so the disabled path costs one
method call per emission site and nothing else.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Mapping, Optional, Sequence, Tuple


def label_key(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """Canonical storage key for ``name`` under a label set.

    ``label_key("a.b", {"worker": 2}) == 'a.b{worker="2"}'``; label keys
    are sorted so equal label sets always produce the same key.  With no
    labels the name itself is the key.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_labels(key: str) -> "tuple[str, Dict[str, str]]":
    """Inverse of :func:`label_key`: ``(name, labels)`` from a storage key.

    Keys without a label suffix return an empty label dict.  Only the
    syntax :func:`label_key` emits is understood (quoted values without
    embedded quotes) — enough for round-trips, not a general parser.
    """
    if not key.endswith("}"):
        return key, {}
    brace = key.index("{")
    name = key[:brace]
    labels: Dict[str, str] = {}
    body = key[brace + 1 : -1]
    for part in body.split(","):
        if not part:
            continue
        lk, _, lv = part.partition("=")
        labels[lk] = lv.strip('"')
    return name, labels

#: Default histogram bucket upper bounds, tuned for per-cycle wall-clock
#: seconds (100 µs .. 10 s, roughly log-spaced).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0
)


class Histogram:
    """A fixed-bucket histogram (Prometheus-style cumulative buckets).

    ``bounds`` are the inclusive upper bounds of the finite buckets; one
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in bounds))
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # counts[-1] = observations above bounds[-1] (the +Inf bucket).
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": {f"{b:g}": c for b, c in zip(self.bounds, self.counts)},
            "overflow": self.counts[-1],
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms behind one flat namespace.

    Metric names are dotted paths (``oi.answer.cells_visited``,
    ``span.maintain.seconds``); exporters map them to their own naming
    rules (see :mod:`repro.obs.export`).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0).

        ``labels`` records into the labeled series instead (see
        :func:`label_key`).
        """
        if labels:
            name = label_key(name, labels)
        counters = self._counters
        counters[name] = counters.get(name, 0.0) + amount

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Set the gauge ``name`` (or its labeled series) to its latest value."""
        if labels:
            name = label_key(name, labels)
        self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one observation into the histogram ``name``.

        ``bounds`` applies only on first use; subsequent observations go
        into the existing histogram regardless.
        """
        if labels:
            name = label_key(name, labels)
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(bounds if bounds is not None else DEFAULT_TIME_BUCKETS)
            self._histograms[name] = histogram
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> float:
        return self._counters.get(label_key(name, labels), 0.0)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> float:
        return self._gauges.get(label_key(name, labels), 0.0)

    def histogram(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Optional[Histogram]:
        return self._histograms.get(label_key(name, labels))

    def counter_values(self) -> Dict[str, float]:
        """A point-in-time copy of all counters."""
        return dict(self._counters)

    def gauge_values(self) -> Dict[str, float]:
        return dict(self._gauges)

    def counters_since(
        self, before: Optional[Mapping[str, float]]
    ) -> Dict[str, float]:
        """Per-counter deltas against an earlier :meth:`counter_values` copy.

        ``before=None`` means "since the beginning" (all current values).
        Only counters that changed appear in the result — this is what a
        per-cycle breakdown wants (untouched subsystems stay silent).
        """
        deltas: Dict[str, float] = {}
        get = before.get if before is not None else (lambda name, default: default)
        for name, value in self._counters.items():
            delta = value - get(name, 0.0)
            if delta != 0.0:
                deltas[name] = delta
        return deltas

    def snapshot(self) -> Dict[str, object]:
        """Full nested dump: counters, gauges, histograms (for exporters)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self._histograms.items()
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullRegistry(MetricsRegistry):
    """No-op registry: the disabled-instrumentation path.

    Every recording method does nothing; reads report emptiness.  One
    shared instance (:data:`NULL_REGISTRY`) serves every uninstrumented
    monitoring system, so construction costs nothing either.
    """

    enabled = False

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        pass

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        pass


#: Shared no-op registry for uninstrumented systems.
NULL_REGISTRY = NullRegistry()
