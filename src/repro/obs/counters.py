"""Plain-int counter blocks for the algorithmic hot paths.

The reproduction engines are pure Python; their inner loops cannot afford
dictionary lookups per cell visited.  A :class:`CounterBlock` subclass is
a ``__slots__`` struct of integers that the algorithms bump with direct
attribute adds (one LOAD_FAST + int add per event), independent of whether
instrumentation is on.  Engines snapshot the block before a stage, diff it
after, and push the deltas into the
:class:`~repro.obs.registry.MetricsRegistry` — so the per-event cost never
depends on the registry at all.

Subclasses declare ``FIELDS`` and set ``__slots__ = FIELDS``::

    class ScanCounters(CounterBlock):
        FIELDS = ("cells_visited", "objects_scanned")
        __slots__ = FIELDS
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple


class CounterBlock:
    """Base for fixed-field integer counter structs."""

    FIELDS: Tuple[str, ...] = ()
    __slots__ = ()

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of every field."""
        return {field: getattr(self, field) for field in self.FIELDS}

    def diff(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Per-field deltas against an earlier :meth:`snapshot` (zeros omitted)."""
        out: Dict[str, int] = {}
        get = before.get
        for field in self.FIELDS:
            delta = getattr(self, field) - get(field, 0)
            if delta:
                out[field] = delta
        return out

    def reset(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"{type(self).__name__}({body})"
