"""Continuous range-query monitoring over moving objects.

This is the problem of Kalashnikov, Prabhakar & Hambrusch (2004), whose
query-index-in-a-grid methodology the paper adapts to k-NN queries (§2):
each query is a *fixed* spatial region, and every cycle reports the
objects currently inside each region.  Unlike the k-NN case, the range to
scan never changes, so the query grid is built once and reused — the exact
simplification the paper points out when contrasting the two problems.

Supported regions: axis-aligned rectangles and circles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..grid.grid2d import Grid2D, resolve_grid_size


@dataclass(frozen=True)
class RectRegion:
    """Axis-aligned query rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ConfigurationError(f"degenerate rectangle {self!r}")

    def contains(self, x: float, y: float) -> bool:
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def bounds(self) -> "tuple[float, float, float, float]":
        return self.xlo, self.ylo, self.xhi, self.yhi


@dataclass(frozen=True)
class CircleRegion:
    """Query disc centred at ``(cx, cy)`` with the given radius."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ConfigurationError(f"negative radius in {self!r}")

    def contains(self, x: float, y: float) -> bool:
        dx = x - self.cx
        dy = y - self.cy
        return dx * dx + dy * dy <= self.radius * self.radius

    def bounds(self) -> "tuple[float, float, float, float]":
        return (
            self.cx - self.radius,
            self.cy - self.radius,
            self.cx + self.radius,
            self.cy + self.radius,
        )


Region = Union[RectRegion, CircleRegion]


class RangeMonitor:
    """Continuously evaluate a fixed set of range queries.

    With the default ``backend=None`` the query index is a grid whose
    cells list the queries overlapping them; one scan over the objects
    answers all queries per cycle (the Kalashnikov et al. evaluation
    strategy).  Passing a snapshot backend name (``"object_index"`` or
    ``"csr"``) instead indexes the *objects* each cycle and answers every
    region through the generic
    :func:`~repro.engines.snapshot.snapshot_range` operator; answers are
    identical either way.
    """

    def __init__(
        self,
        regions: Sequence[Region],
        ncells: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if not regions:
            raise ConfigurationError("at least one region is required")
        self.regions: List[Region] = list(regions)
        self.backend = backend
        grid_size = ncells if ncells is not None else 64
        self.grid = Grid2D(resolve_grid_size(ncells=grid_size))
        self._index_queries()

    def _index_queries(self) -> None:
        grid = self.grid
        n = grid.ncells
        for query_id, region in enumerate(self.regions):
            xlo, ylo, xhi, yhi = region.bounds()
            ilo, jlo = grid.locate(max(0.0, xlo), max(0.0, ylo))
            ihi, jhi = grid.locate(min(1.0 - 1e-12, xhi), min(1.0 - 1e-12, yhi))
            for j in range(jlo, jhi + 1):
                for i in range(ilo, ihi + 1):
                    grid.insert(query_id, i, j)

    def tick(self, positions: np.ndarray) -> List[List[int]]:
        """One snapshot scan; returns member object IDs per region."""
        positions = np.asarray(positions, dtype=np.float64)
        if self.backend is not None:
            from ..engines.snapshot import make_snapshot, snapshot_range

            index = make_snapshot(positions, self.backend)
            return [snapshot_range(index, region) for region in self.regions]
        n = self.grid.ncells
        ii = np.clip((positions[:, 0] * n).astype(np.intp), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(np.intp), 0, n - 1)
        flat = (jj * n + ii).tolist()
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        buckets = self.grid._buckets
        regions = self.regions
        answers: List[List[int]] = [[] for _ in regions]
        for object_id, cell in enumerate(flat):
            bucket = buckets[cell]
            if not bucket:
                continue
            x = xs[object_id]
            y = ys[object_id]
            for query_id in bucket:
                if regions[query_id].contains(x, y):
                    answers[query_id].append(object_id)
        return answers


def brute_force_range(
    positions: np.ndarray, regions: Sequence[Region]
) -> List[List[int]]:
    """Range ground truth by scanning all objects per region (tests only)."""
    positions = np.asarray(positions, dtype=np.float64)
    answers: List[List[int]] = []
    for region in regions:
        members = [
            object_id
            for object_id in range(len(positions))
            if region.contains(
                float(positions[object_id, 0]), float(positions[object_id, 1])
            )
        ]
        answers.append(members)
    return answers
