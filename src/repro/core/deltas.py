"""Answer deltas: what changed between two consecutive k-NN answers.

Continuous applications rarely consume raw answer lists; they react to
*changes* — a rival entering combat range, a customer leaving a store's
top-k.  :func:`answer_delta` computes the entered/left/reordered sets
between two answers for the same query, and :class:`DeltaTracker` does it
for a whole query workload across cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.registry import NULL_REGISTRY, MetricsRegistry
from .answers import Neighbor, QueryAnswer


@dataclass(frozen=True)
class AnswerDelta:
    """Difference between consecutive answers of one query."""

    query_id: int
    entered: Tuple[int, ...]  # object IDs newly in the k-NN
    left: Tuple[int, ...]  # object IDs no longer in the k-NN
    reordered: bool  # same membership but different ranking

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left or self.reordered)

    @property
    def churn(self) -> int:
        """Number of membership changes (entries + exits)."""
        return len(self.entered) + len(self.left)


def answer_delta(
    query_id: int,
    previous: Sequence[Neighbor],
    current: Sequence[Neighbor],
) -> AnswerDelta:
    """Compute the delta between two answers of the same query."""
    previous_ids = [object_id for object_id, _ in previous]
    current_ids = [object_id for object_id, _ in current]
    previous_set = set(previous_ids)
    current_set = set(current_ids)
    entered = tuple(sorted(current_set - previous_set))
    left = tuple(sorted(previous_set - current_set))
    reordered = not entered and not left and previous_ids != current_ids
    return AnswerDelta(query_id, entered, left, reordered)


class DeltaTracker:
    """Track per-query answer changes across monitoring cycles.

    Feed it the :class:`QueryAnswer` lists produced by
    :meth:`~repro.core.monitor.MonitoringSystem.tick`; it returns the
    deltas against the previous cycle and accumulates churn statistics.

    Passing a :class:`~repro.obs.registry.MetricsRegistry` emits the
    churn as ``delta_tracker.*`` counters alongside the engine's own
    ``delta.*`` counters, which is what lets the cost-model validation
    (:func:`repro.obs.validate.run_delta_validation`) cross-check answer
    reuse against *observed* answer changes.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._previous: Dict[int, Tuple[Neighbor, ...]] = {}
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.cycles = 0
        self.total_churn = 0
        self.total_changed = 0

    def update(self, answers: Sequence[QueryAnswer]) -> List[AnswerDelta]:
        """Record one cycle's answers; returns the per-query deltas.

        The first cycle reports every non-empty answer as fully "entered".
        """
        deltas: List[AnswerDelta] = []
        entered = left = reordered = changed = 0
        for qa in answers:
            previous = self._previous.get(qa.query_id, ())
            delta = answer_delta(qa.query_id, previous, qa.neighbors)
            deltas.append(delta)
            self._previous[qa.query_id] = qa.neighbors
            self.total_churn += delta.churn
            entered += len(delta.entered)
            left += len(delta.left)
            reordered += int(delta.reordered)
            if delta.changed:
                self.total_changed += 1
                changed += 1
        self.cycles += 1
        registry = self.registry
        registry.inc("delta_tracker.cycles")
        registry.inc("delta_tracker.answers", len(deltas))
        registry.inc("delta_tracker.entered", entered)
        registry.inc("delta_tracker.left", left)
        registry.inc("delta_tracker.reordered", reordered)
        registry.inc("delta_tracker.changed_queries", changed)
        registry.inc("delta_tracker.churn", entered + left)
        return deltas

    def mean_churn_per_cycle(self) -> float:
        """Average membership changes per cycle across all queries."""
        if self.cycles == 0:
            return 0.0
        return self.total_churn / self.cycles
