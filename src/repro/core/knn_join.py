"""Bichromatic k-NN join over two moving populations (paper §6).

For every object ``a`` of population A (e.g. taxis), find its k nearest
objects of population B (e.g. ride requests), continuously.  This is the
"spatial joins of moving objects" the paper names as future work, in the
bichromatic form; the monochromatic form is
:mod:`repro.core.self_join`.

Per cycle, population B is indexed as a
:class:`~repro.engines.snapshot.SnapshotIndex` at its optimal cell size;
every A-object then runs a k-NN search, incrementally seeded from its
previous neighbor set (§3.2 applied per A-object).  Both populations may
move freely and may change size between cycles (a size change falls back
to overhaul searches for one cycle).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..engines.snapshot import (
    SnapshotIndex,
    make_snapshot,
    snapshot_knn,
    snapshot_knn_seeded,
)
from ..errors import ConfigurationError, NotEnoughObjectsError
from .answers import AnswerList, Neighbor


class KNNJoinMonitor:
    """Continuously maintain the k-NN join A -> B.

    Parameters
    ----------
    k:
        Neighbors per A-object.
    incremental:
        Seed each A-object's search from its previous answer (default);
        otherwise run the overhaul search every cycle.
    backend:
        :class:`~repro.engines.snapshot.SnapshotIndex` implementation used
        to index population B (``"object_index"`` or ``"csr"``).
    """

    def __init__(
        self, k: int, incremental: bool = True, backend: str = "object_index"
    ) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.incremental = incremental
        self.backend = backend
        self._previous: List[List[int]] = []
        self._index: Optional[SnapshotIndex] = None
        self._last_answers: List[AnswerList] = []

    def tick(
        self, a_positions: np.ndarray, b_positions: np.ndarray
    ) -> List[AnswerList]:
        """Process one snapshot pair; returns per-A-object answers into B."""
        a_positions = np.asarray(a_positions, dtype=np.float64)
        b_positions = np.asarray(b_positions, dtype=np.float64)
        if self.k > len(b_positions):
            raise NotEnoughObjectsError(self.k, len(b_positions))
        if self._index is not None and self._index.n_objects != len(b_positions):
            self._previous = []
        self._index = make_snapshot(b_positions, self.backend)
        index = self._index
        n_a = len(a_positions)
        use_previous = (
            self.incremental and len(self._previous) == n_a
        )
        answers: List[AnswerList] = []
        for a_id in range(n_a):
            ax = float(a_positions[a_id, 0])
            ay = float(a_positions[a_id, 1])
            if use_previous and self._previous[a_id]:
                answer = snapshot_knn_seeded(
                    index, ax, ay, self.k, self._previous[a_id]
                )
            else:
                answer = snapshot_knn(index, ax, ay, self.k)
            answers.append(answer)
        self._previous = [answer.object_ids() for answer in answers]
        self._last_answers = answers
        return answers

    def closest_pairs(self, n: int) -> List[Tuple[int, int, float]]:
        """The ``n`` globally closest ``(a_id, b_id, distance)`` pairs.

        Exactness requires ``n <= k``: among the true top-n pairs, a single
        A-object can account for at most n of them, and each A-object's
        candidate list holds its k nearest — so with ``n <= k`` no true
        top-n pair can be missing from the candidates.  For larger ``n``
        re-run the join with a larger ``k``.
        """
        if not self._last_answers:
            raise ConfigurationError("tick() must run before closest_pairs()")
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if n > self.k:
            raise ConfigurationError(
                f"closest_pairs(n={n}) is exact only for n <= k={self.k}; "
                "build the monitor with a larger k"
            )
        candidates: List[Tuple[float, int, int]] = []
        for a_id, answer in enumerate(self._last_answers):
            for b_id, distance in answer.neighbors():
                candidates.append((distance, a_id, b_id))
        smallest = heapq.nsmallest(n, candidates)
        return [(a_id, b_id, distance) for distance, a_id, b_id in smallest]


def brute_force_knn_join(
    a_positions: np.ndarray, b_positions: np.ndarray, k: int
) -> List[List[Neighbor]]:
    """Join ground truth by full pairwise distances (tests only)."""
    from .brute import brute_force_knn

    a_positions = np.asarray(a_positions, dtype=np.float64)
    return [
        brute_force_knn(b_positions, float(ax), float(ay), k)
        for ax, ay in a_positions
    ]
