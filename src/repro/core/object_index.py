"""One-level grid Object-Index (paper §3.1 and §3.2).

The plane is partitioned into a regular grid; each cell ``(i, j)`` keeps the
object list ``PL(i, j)`` of IDs of objects currently inside it.  Two query
algorithms are provided:

* :meth:`ObjectIndex.knn_overhaul` — the paper's Fig. 3 algorithm.  It grows
  the rectangle ``R0`` around the query's cell one ring at a time until at
  least ``k`` objects are enclosed, derives the critical radius ``lcrit``,
  and scans the critical rectangle ``Rcrit``.
* :meth:`ObjectIndex.knn_incremental` — §3.2.  ``Rcrit`` is seeded directly
  from the *previous* answer set: the new positions of the old k-NNs bound
  the new k-th-nearest distance, so the iterative ``R0`` growth is skipped.

Index maintenance likewise comes in the paper's two flavors:
:meth:`build` (overhaul, a single scan of the snapshot) and :meth:`update`
(incremental, moving only objects whose cell changed).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..errors import IndexStateError, NotEnoughObjectsError
from ..grid.geometry import (
    cells_ring,
    min_dist2_point_cell,
    rect_for_radius,
    rect_paper_rcrit,
)
from ..grid.grid2d import Grid2D, resolve_grid_size
from ..obs.counters import CounterBlock
from ..obs.tracing import NULL_TRACER
from .answers import AnswerList


class ObjectIndexCounters(CounterBlock):
    """Work counters for the §3.1/§3.2 query paths.

    Always counted (plain integer adds, at most one per cell visited);
    the engine layer diffs the block per cycle and publishes the deltas
    as ``oi.answer.*`` metrics when instrumentation is on.
    """

    FIELDS = (
        "cells_visited",
        "cells_pruned",
        "objects_scanned",
        "overhaul_calls",
        "incremental_calls",
        "incremental_fallbacks",
        "r0_rings",
        "r0_objects",
    )
    __slots__ = FIELDS


class ObjectIndex:
    """Grid index over moving-object positions.

    Parameters
    ----------
    ncells, delta, n_objects:
        Grid resolution; give exactly one.  ``n_objects`` selects the
        paper's optimal cell size ``delta* = 1 / sqrt(NP)`` (Theorem 1).
    sorted_cells:
        Keep each object list sorted by ID.  The paper notes incremental
        maintenance "requires the object lists to be implemented with a
        sorted container"; with plain Python lists both variants cost O(L)
        per deletion, so this flag exists for the container ablation bench
        rather than for speed.
    strict_paper_rcrit:
        Use the paper's literal critical rectangle
        ``R(cq, ceil(lcrit / delta))`` centred on the query's *cell*.  By
        default a tighter, still-correct rectangle covering the disc of
        radius ``lcrit`` around the query *point* is used.
    prune_cells:
        Skip cells of ``Rcrit`` that cannot contain a better neighbor than
        the current k-th candidate (exactness-preserving optimisation).
    """

    def __init__(
        self,
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
        n_objects: Optional[int] = None,
        sorted_cells: bool = False,
        strict_paper_rcrit: bool = False,
        prune_cells: bool = True,
    ) -> None:
        self.grid = Grid2D(resolve_grid_size(ncells, delta, n_objects))
        self.sorted_cells = sorted_cells
        self.strict_paper_rcrit = strict_paper_rcrit
        self.prune_cells = prune_cells
        self.counters = ObjectIndexCounters()
        self.tracer = NULL_TRACER
        self._x: List[float] = []
        self._y: List[float] = []
        self._cell_flat: Optional[np.ndarray] = None
        self._built = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def delta(self) -> float:
        return self.grid.delta

    @property
    def ncells(self) -> int:
        return self.grid.ncells

    @property
    def n_objects(self) -> int:
        return len(self._x)

    @property
    def built(self) -> bool:
        return self._built

    def position_of(self, object_id: int) -> "tuple[float, float]":
        """Snapshot position of one object."""
        return self._x[object_id], self._y[object_id]

    # ------------------------------------------------------------------
    # SnapshotIndex protocol (repro.engines.snapshot)
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> "tuple[int, int]":
        """Cell ``(i, j)`` of a point (clamped to the grid)."""
        return self.grid.locate(x, y)

    def count_in_cells(self, ilo: int, jlo: int, ihi: int, jhi: int) -> int:
        """Number of objects inside the inclusive cell rectangle."""
        buckets = self.grid._buckets
        n = self.grid.ncells
        total = 0
        for j in range(jlo, jhi + 1):
            base = j * n
            for i in range(ilo, ihi + 1):
                total += len(buckets[base + i])
        return total

    def gather_cells(
        self, ilo: int, jlo: int, ihi: int, jhi: int
    ) -> "tuple[List[int], List[float], List[float]]":
        """``(ids, xs, ys)`` of every object inside the cell rectangle."""
        buckets = self.grid._buckets
        n = self.grid.ncells
        xs = self._x
        ys = self._y
        out_ids: List[int] = []
        out_xs: List[float] = []
        out_ys: List[float] = []
        for j in range(jlo, jhi + 1):
            base = j * n
            for i in range(ilo, ihi + 1):
                for object_id in buckets[base + i]:
                    out_ids.append(object_id)
                    out_xs.append(xs[object_id])
                    out_ys.append(ys[object_id])
        return out_ids, out_xs, out_ys

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _flat_cells(self, positions: np.ndarray) -> np.ndarray:
        n = self.grid.ncells
        ii = np.clip((positions[:, 0] * n).astype(np.intp), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(np.intp), 0, n - 1)
        return jj * n + ii

    def build(self, positions: np.ndarray) -> None:
        """Overhaul rebuild from a snapshot of positions.

        ``positions`` has shape ``(n, 2)``; object IDs are row indices.
        This is the paper's ``Tindex = a0 * NP`` linear scan.
        """
        positions = np.asarray(positions, dtype=np.float64)
        # Compute the flat cell IDs once and share them between the bucket
        # fill and the stored array that incremental update() diffs against.
        self._cell_flat = self._flat_cells(positions)
        self.grid.bulk_load_flat(self._cell_flat)
        self._x = positions[:, 0].tolist()
        self._y = positions[:, 1].tolist()
        self._built = True

    def update(self, positions: np.ndarray) -> int:
        """Incremental maintenance (§3.2): move only objects that changed cell.

        Returns the number of object moves performed.  The population must
        be the same set of IDs as the previous snapshot; objects entering or
        leaving the region are handled by the monitor layer re-building.
        """
        if not self._built or self._cell_flat is None:
            raise IndexStateError("update() requires a prior build()")
        positions = np.asarray(positions, dtype=np.float64)
        if len(positions) != len(self._x):
            raise IndexStateError(
                f"population changed from {len(self._x)} to {len(positions)}; "
                "rebuild the index instead of updating it"
            )
        new_flat = self._flat_cells(positions)
        movers = np.nonzero(new_flat != self._cell_flat)[0]
        n = self.grid.ncells
        buckets = self.grid._buckets
        old_flat = self._cell_flat
        for object_id in movers.tolist():
            old_bucket = buckets[int(old_flat[object_id])]
            try:
                old_bucket.remove(object_id)
            except ValueError:
                raise IndexStateError(
                    f"object {object_id} missing from its recorded cell"
                ) from None
            new_bucket = buckets[int(new_flat[object_id])]
            if self.sorted_cells:
                from bisect import insort

                insort(new_bucket, object_id)
            else:
                new_bucket.append(object_id)
        self._x = positions[:, 0].tolist()
        self._y = positions[:, 1].tolist()
        self._cell_flat = new_flat
        return int(len(movers))

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def _scan_rect_into(
        self, qx: float, qy: float, rect, answers: AnswerList
    ) -> None:
        """Offer every object in ``rect`` to the answer list.

        With ``prune_cells`` enabled, cells that cannot improve the current
        k-th best distance are skipped entirely.
        """
        grid = self.grid
        buckets = grid._buckets
        n = grid.ncells
        delta = grid.delta
        xs = self._x
        ys = self._y
        prune = self.prune_cells
        counters = self.counters
        counters.cells_visited += rect.ncells
        for j in range(rect.jlo, rect.jhi + 1):
            base = j * n
            for i in range(rect.ilo, rect.ihi + 1):
                bucket = buckets[base + i]
                if not bucket:
                    continue
                if prune and answers.full:
                    # Strict: a cell whose min distance *equals* the k-th
                    # distance may still hold an equidistant lower-id
                    # candidate that wins the (dist2, id) tie-break.
                    if min_dist2_point_cell(qx, qy, i, j, delta) > answers.worst_dist2:
                        counters.cells_pruned += 1
                        continue
                counters.objects_scanned += len(bucket)
                for object_id in bucket:
                    dx = xs[object_id] - qx
                    dy = ys[object_id] - qy
                    answers.offer(dx * dx + dy * dy, object_id)

    def _critical_radius_overhaul(self, qx: float, qy: float, k: int) -> float:
        """Grow ``R0`` ring by ring; return a radius covering >= k objects.

        This returns the distance from ``q`` to the k-th nearest object
        found inside ``R0``, which is a tighter valid bound than the
        paper's distance to the *farthest* object in ``R0`` (both radii
        provably enclose the true k-NN; see DESIGN.md).
        """
        if k > self.n_objects:
            raise NotEnoughObjectsError(k, self.n_objects)
        grid = self.grid
        ci, cj = grid.locate(qx, qy)
        ncells = grid.ncells
        seen: List[float] = []  # squared distances of objects inside R0
        xs = self._x
        ys = self._y
        level = 0
        while len(seen) < k:
            ring = cells_ring(ci, cj, level, ncells)
            if not ring and level > 0:
                # An empty ring means every cell at this Chebyshev distance
                # is clamped away, i.e. the whole grid has been scanned.
                raise NotEnoughObjectsError(k, self.n_objects)
            for i, j in ring:
                for object_id in grid.bucket(i, j):
                    dx = xs[object_id] - qx
                    dy = ys[object_id] - qy
                    seen.append(dx * dx + dy * dy)
            level += 1
        counters = self.counters
        counters.r0_rings += level - 1  # rings beyond the home cell
        counters.r0_objects += len(seen)
        seen.sort()
        return math.sqrt(seen[k - 1])

    def _rect_for(self, qx: float, qy: float, radius: float):
        if self.strict_paper_rcrit:
            return rect_paper_rcrit(qx, qy, radius, self.grid.delta, self.grid.ncells)
        return rect_for_radius(qx, qy, radius, self.grid.delta, self.grid.ncells)

    def _incremental_lcrit(
        self, qx: float, qy: float, previous_ids: Sequence[int]
    ) -> float:
        """Distance to the farthest new position of the previous k-NNs."""
        xs = self._x
        ys = self._y
        worst2 = 0.0
        for object_id in previous_ids:
            dx = xs[object_id] - qx
            dy = ys[object_id] - qy
            d2 = dx * dx + dy * dy
            if d2 > worst2:
                worst2 = d2
        return math.sqrt(worst2)

    def knn_overhaul(self, qx: float, qy: float, k: int) -> AnswerList:
        """Exact k-NN from scratch (paper Fig. 3)."""
        if not self._built:
            raise IndexStateError("knn_overhaul() requires a prior build()")
        self.counters.overhaul_calls += 1
        tracer = self.tracer
        # Per-query path: a disabled tracer must cost one attribute check,
        # not a null context manager per stage.
        if tracer.enabled:
            with tracer.span("r0_growth"):
                lcrit = self._critical_radius_overhaul(qx, qy, k)
            rect = self._rect_for(qx, qy, lcrit)
            answers = AnswerList(k)
            with tracer.span("rcrit_scan"):
                self._scan_rect_into(qx, qy, rect, answers)
            return answers
        lcrit = self._critical_radius_overhaul(qx, qy, k)
        rect = self._rect_for(qx, qy, lcrit)
        answers = AnswerList(k)
        self._scan_rect_into(qx, qy, rect, answers)
        return answers

    def knn_incremental(
        self, qx: float, qy: float, k: int, previous_ids: Sequence[int]
    ) -> AnswerList:
        """Exact k-NN seeded by the previous answer set (§3.2).

        ``lcrit`` is the distance from ``q`` to the farthest *new* position
        of the previous k-NNs; the disc of that radius is guaranteed to
        contain the new k-NN because it already contains k objects.
        Falls back to the overhaul algorithm when no usable previous answer
        exists.
        """
        if not self._built:
            raise IndexStateError("knn_incremental() requires a prior build()")
        counters = self.counters
        counters.incremental_calls += 1
        n = self.n_objects
        if len(previous_ids) < k or any(not 0 <= p < n for p in previous_ids):
            counters.incremental_fallbacks += 1
            return self.knn_overhaul(qx, qy, k)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("lcrit"):
                lcrit = self._incremental_lcrit(qx, qy, previous_ids)
            rect = self._rect_for(qx, qy, lcrit)
            answers = AnswerList(k)
            with tracer.span("rcrit_scan"):
                self._scan_rect_into(qx, qy, rect, answers)
        else:
            lcrit = self._incremental_lcrit(qx, qy, previous_ids)
            rect = self._rect_for(qx, qy, lcrit)
            answers = AnswerList(k)
            self._scan_rect_into(qx, qy, rect, answers)
        if len(answers) < k:  # pragma: no cover - defensive; cannot happen
            counters.incremental_fallbacks += 1
            return self.knn_overhaul(qx, qy, k)
        return answers

    # ------------------------------------------------------------------
    # Statistics (used by cost-model validation and Fig. 16/21 benches)
    # ------------------------------------------------------------------
    def critical_rect_stats(self, qx: float, qy: float, k: int) -> "tuple[int, int]":
        """``(cells, objects)`` covered by the overhaul critical rectangle."""
        lcrit = self._critical_radius_overhaul(qx, qy, k)
        rect = self._rect_for(qx, qy, lcrit)
        return rect.ncells, self.grid.count_in_rect(rect)

    def validate(self) -> None:
        """Check structural invariants; raises IndexStateError on violation.

        Every object must appear exactly once, in the cell its snapshot
        position maps to.  Intended for tests, not the hot path.
        """
        if not self._built:
            raise IndexStateError("validate() requires a prior build()")
        seen = 0
        grid = self.grid
        for j in range(grid.ncells):
            for i in range(grid.ncells):
                for object_id in grid.bucket(i, j):
                    seen += 1
                    ci, cj = grid.locate(self._x[object_id], self._y[object_id])
                    if (ci, cj) != (i, j):
                        raise IndexStateError(
                            f"object {object_id} stored in ({i}, {j}) but "
                            f"positioned in ({ci}, {cj})"
                        )
        if seen != self.n_objects:
            raise IndexStateError(
                f"grid stores {seen} ids for a population of {self.n_objects}"
            )
