"""k-NN answer lists.

Each monitored query maintains "an ordered list of k objects sorted from
the nearest neighbor to the furthest" (paper, Fig. 1).  :class:`AnswerList`
is that structure: a bounded, distance-sorted list of ``(object_id,
distance)`` pairs.  For the small ``k`` typical of this workload (the paper
sweeps k up to 20) binary-search insertion into a flat list beats a heap.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError

Neighbor = Tuple[int, float]
"""An ``(object_id, distance)`` pair as reported to users."""


class AnswerList:
    """A bounded list of the k nearest objects seen so far.

    Entries are ``(squared_distance, object_id)`` so plain tuple ordering
    sorts by distance (object id breaks exact ties deterministically).
    """

    __slots__ = ("k", "_entries", "_neighbors_memo")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self._entries: List[Tuple[float, int]] = []
        #: Memoized neighbors() result; answer reuse returns the same
        #: AnswerList across cycles, so the sqrt/tuple materialization
        #: only runs when the entries actually changed.
        self._neighbors_memo: "List[Neighbor] | None" = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._neighbors_memo = None

    @property
    def full(self) -> bool:
        """True once k candidates have been collected."""
        return len(self._entries) >= self.k

    @property
    def worst_dist2(self) -> float:
        """Squared distance of the current k-th nearest candidate.

        ``inf`` while the list still has free slots, so any candidate is
        accepted.
        """
        if len(self._entries) < self.k:
            return math.inf
        return self._entries[-1][0]

    def offer(self, dist2: float, object_id: int) -> bool:
        """Consider a candidate; keep it only if it beats the k-th best.

        Returns True when the candidate entered the list.  The comparison
        is on the full ``(dist2, object_id)`` tuple, so exact distance
        ties at the k-th slot resolve to the lowest ID *regardless of the
        order candidates arrive in* — the final content is a pure
        function of the candidate multiset.  That makes answers identical
        across index backends that enumerate cell contents in different
        orders (see :mod:`repro.engines.snapshot`).
        """
        entries = self._entries
        entry = (dist2, object_id)
        if len(entries) < self.k:
            insort(entries, entry)
            self._neighbors_memo = None
            return True
        if entry >= entries[-1]:
            return False
        entries.pop()
        insort(entries, entry)
        self._neighbors_memo = None
        return True

    def object_ids(self) -> List[int]:
        """The neighbor IDs, nearest first."""
        return [object_id for _, object_id in self._entries]

    def neighbors(self) -> List[Neighbor]:
        """The answer as ``(object_id, distance)`` pairs, nearest first.

        The result is memoized until the entries change; treat it as
        read-only.
        """
        memo = self._neighbors_memo
        if memo is None:
            memo = self._neighbors_memo = [
                (object_id, math.sqrt(d2)) for d2, object_id in self._entries
            ]
        return memo

    def kth_dist(self) -> float:
        """Distance to the k-th (furthest reported) neighbor."""
        if not self._entries:
            return math.inf
        return math.sqrt(self._entries[-1][0])


@dataclass(frozen=True)
class QueryAnswer:
    """An immutable, timestamped k-NN answer for one query.

    ``timestamp`` is the snapshot time the answer is exact for — the paper's
    guarantee is exactness with a reporting delay, so every answer carries
    the instant it refers to.
    """

    query_id: int
    timestamp: float
    neighbors: Tuple[Neighbor, ...] = field(default=())

    @property
    def k(self) -> int:
        return len(self.neighbors)

    def object_ids(self) -> Tuple[int, ...]:
        return tuple(object_id for object_id, _ in self.neighbors)

    def kth_dist(self) -> float:
        if not self.neighbors:
            return math.inf
        return self.neighbors[-1][1]


def answers_equal(
    left: Sequence[Neighbor], right: Sequence[Neighbor], tol: float = 1e-12
) -> bool:
    """Whether two answers agree, allowing reordering of exact distance ties.

    Two valid exact answers may order equidistant objects differently; this
    comparison treats them as equal when the sorted distance profiles match
    and IDs only differ inside groups of equal distance.  The final group is
    special: when several objects tie at the k-th distance, any size-k
    truncation is a correct answer, so for that group only the size is
    compared.
    """
    if len(left) != len(right):
        return False
    for (_, dl), (_, dr) in zip(left, right):
        if abs(dl - dr) > tol:
            return False

    def _groups(ans: Sequence[Neighbor]) -> List[frozenset]:
        groups: List[frozenset] = []
        group: List[int] = []
        group_dist = None
        for object_id, d in ans:
            if group_dist is None or abs(d - group_dist) <= tol:
                group.append(object_id)
                group_dist = d if group_dist is None else group_dist
            else:
                groups.append(frozenset(group))
                group = [object_id]
                group_dist = d
        if group:
            groups.append(frozenset(group))
        return groups

    left_groups = _groups(left)
    right_groups = _groups(right)
    if len(left_groups) != len(right_groups):
        return False
    # All interior groups must hold the same IDs; the group cut by the k-th
    # position may legitimately hold different (equidistant) IDs.
    return all(
        gl == gr for gl, gr in zip(left_groups[:-1], right_groups[:-1])
    ) and len(left_groups[-1]) == len(right_groups[-1])
