"""Hierarchical (multi-level) Object-Index (paper §4).

A one-level grid at a coarse initial cell size ``delta0`` is built first.
Any cell holding more than ``Nc`` objects (the *maximal cell load*) is split
into an ``m x m`` sub-grid (``m`` is the *split factor*), recursively, until
no cell exceeds the load — the structure of the paper's Fig. 7.  Cells are
therefore of two kinds: *leaf cells* storing object IDs and *index cells*
pointing to sub-grids.

Maintenance is incremental (move objects between leaves, splitting
overflowing leaves and collapsing underfull sub-grids back into leaves) or
by overhaul rebuild.  Query answering uses the circle-based critical region
of Fig. 8: the region consists of the largest cells enclosed by — and the
smallest cells partially overlapping — the circle around the query, found
top-down at answer time (the region is never materialised).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..grid.geometry import min_dist2_point_box
from ..obs.counters import CounterBlock
from ..obs.tracing import NULL_TRACER
from .answers import AnswerList

_Bucket = List[int]


class HierarchicalCounters(CounterBlock):
    """Work counters for the §4 multi-level index.

    Always counted with plain integer adds; the engine layer diffs the
    block per maintenance/answering stage and publishes the deltas as
    ``hier.maintain.*`` / ``hier.answer.*`` metrics when instrumentation
    is on.
    """

    FIELDS = (
        "nodes_visited",
        "cells_pruned",
        "leaves_scanned",
        "objects_scanned",
        "splits",
        "collapses",
        "overhaul_calls",
        "overhaul_rescans",
        "incremental_calls",
        "incremental_fallbacks",
    )
    __slots__ = FIELDS


class _SubGrid:
    """One level of the hierarchy: an ``m x m`` block of slots.

    Each slot is either a leaf bucket (a plain list of object IDs) or a
    child :class:`_SubGrid`.  ``count`` caches the number of objects in the
    whole subtree for O(1) collapse decisions.
    """

    __slots__ = ("x0", "y0", "cell_side", "m", "slots", "count", "depth")

    def __init__(
        self, x0: float, y0: float, cell_side: float, m: int, depth: int
    ) -> None:
        self.x0 = x0
        self.y0 = y0
        self.cell_side = cell_side
        self.m = m
        self.depth = depth
        self.slots: List[Union[_Bucket, "_SubGrid"]] = [
            [] for _ in range(m * m)
        ]
        self.count = 0

    def slot_of(self, x: float, y: float) -> int:
        """Flat slot index of the slot containing ``(x, y)`` (clamped)."""
        i = int((x - self.x0) / self.cell_side)
        j = int((y - self.y0) / self.cell_side)
        m = self.m
        if i >= m:
            i = m - 1
        elif i < 0:
            i = 0
        if j >= m:
            j = m - 1
        elif j < 0:
            j = 0
        return j * m + i

    def slot_bounds(self, idx: int) -> Tuple[float, float, float, float]:
        """``(xlo, ylo, xhi, yhi)`` of slot ``idx``."""
        i = idx % self.m
        j = idx // self.m
        xlo = self.x0 + i * self.cell_side
        ylo = self.y0 + j * self.cell_side
        return xlo, ylo, xlo + self.cell_side, ylo + self.cell_side


class HierarchicalObjectIndex:
    """Adaptive multi-level grid index over moving objects.

    Parameters
    ----------
    delta0:
        Top-level cell size (the paper uses 0.1).  Unlike the one-level
        index this need not depend on the population size — robustness to
        ``delta0`` is one of the claims reproduced in Fig. 16.
    max_cell_load:
        The paper's ``Nc``: a leaf holding more than this many objects is
        split (default 10, the paper's Fig. 18 setting).
    split_factor:
        The paper's ``m``: each split produces ``m x m`` sub-cells
        (default 3, the paper's setting).
    max_depth:
        Safety bound on recursion so pathological coincident points cannot
        split forever; leaves at ``max_depth`` may exceed the load.
    """

    def __init__(
        self,
        delta0: float = 0.1,
        max_cell_load: int = 10,
        split_factor: int = 3,
        max_depth: int = 12,
    ) -> None:
        if not 0.0 < delta0 <= 1.0:
            raise ConfigurationError(f"delta0={delta0!r} must be in (0, 1]")
        if max_cell_load < 1:
            raise ConfigurationError(f"max_cell_load must be >= 1, got {max_cell_load}")
        if split_factor < 2:
            raise ConfigurationError(f"split_factor must be >= 2, got {split_factor}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.delta0 = delta0
        self.max_cell_load = max_cell_load
        self.split_factor = split_factor
        self.max_depth = max_depth
        self.counters = HierarchicalCounters()
        self.tracer = NULL_TRACER
        top = max(1, int(round(1.0 / delta0)))
        self._root = _SubGrid(0.0, 0.0, 1.0 / top, top, depth=0)
        self._x: List[float] = []
        self._y: List[float] = []
        # Per-object back-reference to the leaf that stores it, so
        # incremental deletes need no tree descent.
        self._leaf: List[Tuple[_SubGrid, int]] = []
        self._built = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return len(self._x)

    @property
    def built(self) -> bool:
        return self._built

    def cell_counts(self) -> Tuple[int, int]:
        """``(index_cells, leaf_cells)`` across all levels (Fig. 21 metric)."""
        index_cells = 0
        leaf_cells = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for slot in node.slots:
                if isinstance(slot, _SubGrid):
                    index_cells += 1
                    stack.append(slot)
                else:
                    leaf_cells += 1
        return index_cells, leaf_cells

    def depth(self) -> int:
        """Number of levels currently present (>= 1)."""
        deepest = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            deepest = max(deepest, node.depth)
            for slot in node.slots:
                if isinstance(slot, _SubGrid):
                    stack.append(slot)
        return deepest + 1

    # ------------------------------------------------------------------
    # Structural mutation
    # ------------------------------------------------------------------
    def _split(self, node: _SubGrid, idx: int) -> None:
        """Split an overflowing leaf slot into an ``m x m`` sub-grid."""
        bucket = node.slots[idx]
        assert isinstance(bucket, list)
        self.counters.splits += 1
        m = self.split_factor
        xlo, ylo, _, _ = node.slot_bounds(idx)
        child = _SubGrid(
            xlo, ylo, node.cell_side / m, m, depth=node.depth + 1
        )
        xs = self._x
        ys = self._y
        leaf = self._leaf
        for object_id in bucket:
            slot_idx = child.slot_of(xs[object_id], ys[object_id])
            sub = child.slots[slot_idx]
            assert isinstance(sub, list)
            sub.append(object_id)
            leaf[object_id] = (child, slot_idx)
        child.count = len(bucket)
        node.slots[idx] = child
        # Newly created sub-cells may themselves overflow (coincident or
        # tightly clustered points); split them recursively.
        if child.depth < self.max_depth - 1:
            for slot_idx, sub in enumerate(child.slots):
                if isinstance(sub, list) and len(sub) > self.max_cell_load:
                    self._split(child, slot_idx)

    def _collapse(self, node: _SubGrid, idx: int) -> None:
        """Collapse an underfull child sub-grid back into a leaf."""
        child = node.slots[idx]
        assert isinstance(child, _SubGrid)
        self.counters.collapses += 1
        gathered: _Bucket = []
        stack = [child]
        while stack:
            sub = stack.pop()
            for slot in sub.slots:
                if isinstance(slot, _SubGrid):
                    stack.append(slot)
                else:
                    gathered.extend(slot)
        node.slots[idx] = gathered
        leaf = self._leaf
        for object_id in gathered:
            leaf[object_id] = (node, idx)

    def _insert(self, object_id: int, x: float, y: float) -> None:
        """Insert one object top-down, splitting on overflow."""
        node = self._root
        while True:
            node.count += 1
            idx = node.slot_of(x, y)
            slot = node.slots[idx]
            if isinstance(slot, _SubGrid):
                node = slot
                continue
            slot.append(object_id)
            self._leaf[object_id] = (node, idx)
            if (
                len(slot) > self.max_cell_load
                and node.depth < self.max_depth - 1
            ):
                self._split(node, idx)
            return

    def _remove(self, object_id: int) -> None:
        """Remove one object via its leaf back-reference, collapsing on the way up.

        The paper checks whether "the sub-cell that c belongs to can be
        collapsed back into a leaf node at the higher level"; counts are
        maintained on every ancestor by a descent from the root (the leaf
        back-reference spares only the final list search).
        """
        leaf_node, idx = self._leaf[object_id]
        bucket = leaf_node.slots[idx]
        assert isinstance(bucket, list)
        try:
            bucket.remove(object_id)
        except ValueError:
            raise IndexStateError(
                f"object {object_id} missing from its recorded leaf"
            ) from None
        # Walk down from the root to fix counts and find the shallowest
        # ancestor sub-grid that has become collapsible.
        x = self._x[object_id]
        y = self._y[object_id]
        node = self._root
        node.count -= 1
        collapse_at: Optional[Tuple[_SubGrid, int]] = None
        while True:
            slot_idx = node.slot_of(x, y)
            slot = node.slots[slot_idx]
            if not isinstance(slot, _SubGrid):
                break
            slot.count -= 1
            if collapse_at is None and slot.count <= self.max_cell_load:
                collapse_at = (node, slot_idx)
            node = slot
        if collapse_at is not None:
            self._collapse(*collapse_at)

    # ------------------------------------------------------------------
    # Maintenance API
    # ------------------------------------------------------------------
    def build(self, positions: np.ndarray) -> None:
        """Overhaul rebuild from a snapshot of positions.

        The rebuild groups objects into cells level by level with
        vectorised index arithmetic (the same single-scan cost model as the
        one-level grid's bulk load), splitting each overflowing cell into
        a sub-grid built recursively from its own id subset.
        """
        positions = np.asarray(positions, dtype=np.float64)
        top = self._root.m
        self._root = _SubGrid(0.0, 0.0, 1.0 / top, top, depth=0)
        self._x = positions[:, 0].tolist()
        self._y = positions[:, 1].tolist()
        self._leaf = [(self._root, 0)] * len(self._x)
        if len(positions):
            ids = np.arange(len(positions), dtype=np.intp)
            self._bulk_fill(self._root, positions[:, 0], positions[:, 1], ids)
        self._built = True

    def _bulk_fill(
        self,
        node: _SubGrid,
        xs: np.ndarray,
        ys: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        """Distribute ``ids`` into ``node``, splitting overflowing slots."""
        m = node.m
        node.count = len(ids)
        ii = np.clip(((xs - node.x0) / node.cell_side).astype(np.intp), 0, m - 1)
        jj = np.clip(((ys - node.y0) / node.cell_side).astype(np.intp), 0, m - 1)
        flat = jj * m + ii
        order = np.argsort(flat, kind="stable")
        flat_sorted = flat[order]
        boundaries = np.searchsorted(
            flat_sorted, np.arange(m * m + 1), side="left"
        )
        leaf = self._leaf
        can_split = node.depth < self.max_depth - 1
        for slot_idx in range(m * m):
            lo = boundaries[slot_idx]
            hi = boundaries[slot_idx + 1]
            if lo == hi:
                continue
            member_order = order[lo:hi]
            if hi - lo > self.max_cell_load and can_split:
                xlo = node.x0 + (slot_idx % m) * node.cell_side
                ylo = node.y0 + (slot_idx // m) * node.cell_side
                child = _SubGrid(
                    xlo,
                    ylo,
                    node.cell_side / self.split_factor,
                    self.split_factor,
                    depth=node.depth + 1,
                )
                node.slots[slot_idx] = child
                self._bulk_fill(
                    child, xs[member_order], ys[member_order], ids[member_order]
                )
            else:
                bucket = ids[member_order].tolist()
                node.slots[slot_idx] = bucket
                for object_id in bucket:
                    leaf[object_id] = (node, slot_idx)

    def update(self, positions: np.ndarray) -> int:
        """Incremental maintenance: re-home only objects that left their leaf.

        Returns the number of delete+insert moves performed.
        """
        if not self._built:
            raise IndexStateError("update() requires a prior build()")
        positions = np.asarray(positions, dtype=np.float64)
        if len(positions) != len(self._x):
            raise IndexStateError(
                f"population changed from {len(self._x)} to {len(positions)}; "
                "rebuild the index instead of updating it"
            )
        xs_new = positions[:, 0].tolist()
        ys_new = positions[:, 1].tolist()
        moves = 0
        for object_id in range(len(xs_new)):
            x = xs_new[object_id]
            y = ys_new[object_id]
            node, idx = self._leaf[object_id]
            xlo, ylo, xhi, yhi = node.slot_bounds(idx)
            if xlo <= x < xhi and ylo <= y < yhi:
                # Same leaf: only the stored coordinates change.
                self._x[object_id] = x
                self._y[object_id] = y
                continue
            self._remove(object_id)
            self._x[object_id] = x
            self._y[object_id] = y
            self._insert(object_id, x, y)
            moves += 1
        return moves

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def _scan_region(
        self,
        node: _SubGrid,
        qx: float,
        qy: float,
        radius2: float,
        answers: AnswerList,
    ) -> None:
        """Scan the critical region of ``circle(q, r)`` top-down (Fig. 8).

        Descends only into slots whose cell intersects the circle, and
        additionally prunes cells that cannot beat the current k-th
        candidate (exactness-preserving).
        """
        xs = self._x
        ys = self._y
        slots = node.slots
        m = node.m
        side = node.cell_side
        x0 = node.x0
        y0 = node.y0
        counters = self.counters
        counters.nodes_visited += 1
        # Only the slots whose cells intersect the bounding box of the
        # circle can intersect the circle; restrict the loop to that
        # sub-rectangle instead of sweeping all m*m slots.
        radius = math.sqrt(radius2)
        ilo = int((qx - radius - x0) / side)
        ihi = int((qx + radius - x0) / side)
        jlo = int((qy - radius - y0) / side)
        jhi = int((qy + radius - y0) / side)
        if ilo < 0:
            ilo = 0
        if jlo < 0:
            jlo = 0
        if ihi >= m:
            ihi = m - 1
        if jhi >= m:
            jhi = m - 1
        for j in range(jlo, jhi + 1):
            base = j * m
            ylo = y0 + j * side
            for i in range(ilo, ihi + 1):
                slot = slots[base + i]
                if isinstance(slot, list):
                    if not slot:
                        continue
                elif slot.count == 0:
                    continue
                xlo = x0 + i * side
                d2 = min_dist2_point_box(
                    qx, qy, xlo, ylo, xlo + side, ylo + side
                )
                # Both prunes strict: a box at distance exactly radius2 (or
                # exactly the current k-th distance) can still contribute an
                # equidistant lower-id candidate to the (dist2, id) tie-break.
                if d2 > radius2 or (answers.full and d2 > answers.worst_dist2):
                    counters.cells_pruned += 1
                    continue
                if isinstance(slot, _SubGrid):
                    self._scan_region(slot, qx, qy, radius2, answers)
                else:
                    counters.leaves_scanned += 1
                    counters.objects_scanned += len(slot)
                    for object_id in slot:
                        dx = xs[object_id] - qx
                        dy = ys[object_id] - qy
                        answers.offer(dx * dx + dy * dy, object_id)

    def knn_overhaul(self, qx: float, qy: float, k: int) -> AnswerList:
        """Exact k-NN by repeated radius enlargement (§4).

        Starting from the side of the query's leaf cell, the radius is
        enlarged and the critical region recomputed until the k-th
        candidate provably lies inside the scanned circle.
        """
        if not self._built:
            raise IndexStateError("knn_overhaul() requires a prior build()")
        if k > self.n_objects:
            raise NotEnoughObjectsError(k, self.n_objects)
        counters = self.counters
        counters.overhaul_calls += 1
        # Initial radius: the side of the leaf containing q, a density-aware
        # starting point (small in dense areas, large in sparse ones).
        node = self._root
        while True:
            slot = node.slots[node.slot_of(qx, qy)]
            if isinstance(slot, _SubGrid):
                node = slot
            else:
                break
        radius = node.cell_side
        limit = math.sqrt(2.0)  # circumscribes the unit square from any point
        first = True
        while True:
            if not first:
                counters.overhaul_rescans += 1
            first = False
            answers = AnswerList(k)
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("region_scan"):
                    self._scan_region(self._root, qx, qy, radius * radius, answers)
            else:
                self._scan_region(self._root, qx, qy, radius * radius, answers)
            if answers.full:
                worst = math.sqrt(answers.worst_dist2)
                if worst <= radius:
                    return answers
                # The k candidates bound the true k-th distance; one more
                # scan at that radius is guaranteed exact.
                radius = worst
            else:
                if radius > limit:
                    raise NotEnoughObjectsError(k, self.n_objects)
                radius *= 2.0

    def knn_incremental(
        self, qx: float, qy: float, k: int, previous_ids: Sequence[int]
    ) -> AnswerList:
        """Exact k-NN seeded from the previous answer set (§4).

        ``r = max ||q - p(t')||`` over the previous k-NNs guarantees the
        circle already holds k objects, so a single scan is exact.
        """
        if not self._built:
            raise IndexStateError("knn_incremental() requires a prior build()")
        counters = self.counters
        counters.incremental_calls += 1
        n = self.n_objects
        if len(previous_ids) < k or any(not 0 <= p < n for p in previous_ids):
            counters.incremental_fallbacks += 1
            return self.knn_overhaul(qx, qy, k)
        xs = self._x
        ys = self._y
        worst2 = 0.0
        for object_id in previous_ids:
            dx = xs[object_id] - qx
            dy = ys[object_id] - qy
            d2 = dx * dx + dy * dy
            if d2 > worst2:
                worst2 = d2
        answers = AnswerList(k)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("region_scan"):
                self._scan_region(self._root, qx, qy, worst2, answers)
        else:
            self._scan_region(self._root, qx, qy, worst2, answers)
        if len(answers) < k:  # pragma: no cover - defensive
            counters.incremental_fallbacks += 1
            return self.knn_overhaul(qx, qy, k)
        return answers

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check counts, leaf back-references, and load limits."""
        if not self._built:
            raise IndexStateError("validate() requires a prior build()")
        total = self._check_node(self._root)
        if total != self.n_objects:
            raise IndexStateError(
                f"tree stores {total} objects, population is {self.n_objects}"
            )

    def _check_node(self, node: _SubGrid) -> int:
        total = 0
        for idx, slot in enumerate(node.slots):
            xlo, ylo, xhi, yhi = node.slot_bounds(idx)
            if isinstance(slot, _SubGrid):
                if slot.count <= self.max_cell_load:
                    raise IndexStateError(
                        f"sub-grid at depth {slot.depth} holds {slot.count} "
                        f"<= Nc={self.max_cell_load} objects and should have "
                        "been collapsed"
                    )
                child_total = self._check_node(slot)
                if child_total != slot.count:
                    raise IndexStateError(
                        f"sub-grid count {slot.count} != actual {child_total}"
                    )
                total += child_total
            else:
                if (
                    len(slot) > self.max_cell_load
                    and node.depth < self.max_depth - 1
                ):
                    raise IndexStateError(
                        f"leaf at depth {node.depth} overflows: {len(slot)} "
                        f"> Nc={self.max_cell_load}"
                    )
                for object_id in slot:
                    x = self._x[object_id]
                    y = self._y[object_id]
                    inside_x = xlo <= x < xhi or (xhi >= 1.0 and x >= xlo)
                    inside_y = ylo <= y < yhi or (yhi >= 1.0 and y >= ylo)
                    if not (inside_x and inside_y):
                        raise IndexStateError(
                            f"object {object_id} at ({x}, {y}) stored in leaf "
                            f"[{xlo}, {xhi}) x [{ylo}, {yhi})"
                        )
                    ref_node, ref_idx = self._leaf[object_id]
                    if ref_node is not node or ref_idx != idx:
                        raise IndexStateError(
                            f"object {object_id} has a stale leaf back-reference"
                        )
                total += len(slot)
        return total
