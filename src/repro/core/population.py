"""Dynamic populations: stable external IDs over dense row indices.

The paper's model lets objects "freely move in and out of the region".
Internally every index addresses objects by *row index* into the snapshot
array — compact and fast, but rows shift when the membership changes.
:class:`DynamicPopulation` provides the stable layer a real deployment
needs: external object keys (ints, strings, anything hashable) mapped to
rows, with joins, departures, and moves; plus translation of row-indexed
answers back to external keys.

Correctness note: engines rebuild automatically when the population size
changes.  When the size happens to stay equal across a membership change,
incremental answering remains *exact* anyway — the §3.2 seed only needs k
valid row indices to bound the critical radius, not identity continuity —
at worst the seeded radius is looser for one cycle.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, OutOfRegionError
from .answers import QueryAnswer

Key = Hashable


class DynamicPopulation:
    """A mutable set of keyed moving objects in the unit square."""

    def __init__(self) -> None:
        self._keys: List[Key] = []
        self._row_of: Dict[Key, int] = {}
        self._xs: List[float] = []
        self._ys: List[float] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Key) -> bool:
        return key in self._row_of

    @staticmethod
    def _check_region(x: float, y: float) -> None:
        if not (0.0 <= x < 1.0 and 0.0 <= y < 1.0):
            raise OutOfRegionError(x, y)

    def add(self, key: Key, x: float, y: float) -> None:
        """An object enters the region of interest."""
        if key in self._row_of:
            raise ConfigurationError(f"object {key!r} is already present")
        self._check_region(x, y)
        self._row_of[key] = len(self._keys)
        self._keys.append(key)
        self._xs.append(x)
        self._ys.append(y)

    def remove(self, key: Key) -> None:
        """An object leaves the region (swap-with-last removal, O(1))."""
        row = self._row_of.pop(key, None)
        if row is None:
            raise ConfigurationError(f"object {key!r} is not present")
        last = len(self._keys) - 1
        if row != last:
            moved_key = self._keys[last]
            self._keys[row] = moved_key
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._row_of[moved_key] = row
        self._keys.pop()
        self._xs.pop()
        self._ys.pop()

    def move(self, key: Key, x: float, y: float) -> None:
        """Update an object's position."""
        row = self._row_of.get(key)
        if row is None:
            raise ConfigurationError(f"object {key!r} is not present")
        self._check_region(x, y)
        self._xs[row] = x
        self._ys[row] = y

    # ------------------------------------------------------------------
    # Snapshots and translation
    # ------------------------------------------------------------------
    def keys(self) -> List[Key]:
        """Current keys in row order."""
        return list(self._keys)

    def key_of(self, row: int) -> Key:
        return self._keys[row]

    def row_of(self, key: Key) -> int:
        return self._row_of[key]

    def position_of(self, key: Key) -> Tuple[float, float]:
        row = self._row_of[key]
        return self._xs[row], self._ys[row]

    def snapshot(self) -> np.ndarray:
        """The current positions as a dense ``(n, 2)`` array (a copy)."""
        if not self._keys:
            return np.empty((0, 2))
        return np.stack(
            [np.asarray(self._xs), np.asarray(self._ys)], axis=1
        )

    def translate_answer(self, answer: QueryAnswer) -> "KeyedAnswer":
        """Convert a row-indexed answer into external keys."""
        return KeyedAnswer(
            answer.query_id,
            answer.timestamp,
            tuple(
                (self._keys[row], distance) for row, distance in answer.neighbors
            ),
        )

    def translate_answers(
        self, answers: Sequence[QueryAnswer]
    ) -> List["KeyedAnswer"]:
        return [self.translate_answer(answer) for answer in answers]


class KeyedAnswer:
    """A :class:`QueryAnswer` whose neighbors carry external keys."""

    __slots__ = ("query_id", "timestamp", "neighbors")

    def __init__(
        self,
        query_id: int,
        timestamp: float,
        neighbors: Tuple[Tuple[Key, float], ...],
    ) -> None:
        self.query_id = query_id
        self.timestamp = timestamp
        self.neighbors = neighbors

    @property
    def k(self) -> int:
        return len(self.neighbors)

    def keys(self) -> Tuple[Key, ...]:
        return tuple(key for key, _ in self.neighbors)

    def kth_dist(self) -> float:
        if not self.neighbors:
            return float("inf")
        return self.neighbors[-1][1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyedAnswer(query_id={self.query_id}, "
            f"timestamp={self.timestamp}, k={self.k})"
        )
