"""Incremental delta-CSR grid maintenance + dirty-region answer reuse.

:class:`~repro.core.fast_index.CSRGrid` rebuilds its snapshot from
scratch every cycle — one ``argsort`` over flat cell IDs plus three
permuted-array gathers — which BENCH_sharded.json shows is ~95% of the
fast-grid cycle at NP=1M.  :class:`DeltaCSRGrid` keeps the previous
cycle's CSR arrays alive and maintains them *incrementally*, the §3.2
insight of the paper lifted into the vectorized layer:

* **Mover diff.**  The grid remembers each object's flat cell ID; one
  vectorized compare against the new cell IDs yields the movers.  Objects
  that stay in their cell need no structural work at all — candidate
  coordinates are resolved lazily (``x[ids[slot]]``) from the *current*
  position array at answer time, so an in-place coordinate update is
  free.
* **Bucketed patch.**  When the mover fraction is below
  ``patch_threshold``, movers are deleted from their old cells and
  inserted into their new ones with per-cell slack capacity: affected old
  cells are repacked (live entries stay contiguous at the cell front,
  slack slots hold ``-1``), inserts append into the slack.  A cell whose
  slack overflows triggers one compaction — a full slack rebuild — and is
  counted as a ``compaction`` event.
* **Counting-sort rebuild.**  Above the threshold (the paper's default
  random walk at NP=1M moves ~99% of objects across δ*-cells every
  cycle) patching cannot win, so the grid falls back to a rebuild that is
  still ~3x cheaper than ``CSRGrid``: cell IDs are computed in int32, the
  grouping runs as a C-level counting sort (SciPy's ``coo_tocsr`` when
  available, int32 ``argsort`` otherwise), only the ``ids`` permutation
  is materialized (no permuted ``xs``/``ys`` copies), and the 2-D
  prefix-sum is accumulated in int32 into preallocated buffers.
* **Dirty rows.**  In the patch regime the horizontal pass of the
  prefix-sum is recomputed only for rows containing a touched cell; the
  vertical accumulation is one O(ncells) ``cumsum``.

On top of the structure, the grid tracks the **dirty-cell set** of each
cycle: every cell whose membership changed plus every cell holding an
object whose coordinates changed.  :class:`DeltaGridEngine` intersects
that set (via a summed-area table over the dirty mask) with each query's
previous critical rectangle — expanded by one cell — and re-runs
:func:`~repro.core.fast_index.batch_knn` only for the affected queries,
seeding their ring growth from the previous k-th distance; the answers of
clean queries carry forward verbatim.

Exactness argument (see DESIGN.md for the long form): a query answered
from rectangle ``R`` covering the disc of its k-th distance stays exact
as long as no object inside ``R`` moved and no object entered or left
``R``.  Both events mark a cell of ``R`` dirty — an object at distance
exactly ``lcrit`` can sit on the closed boundary of ``R``, whose cell can
fall just outside it when ``q + lcrit`` lands exactly on a cell edge,
which is why the dirty test expands ``R`` by one cell.  Re-answered
queries run through the same exact kernel (any seed level only enlarges
the candidate superset the exact (distance, ID) selection then reduces),
so answers are bit-identical to a full ``fast_grid`` recompute.

Positions contract: the grid keeps *references* to the position arrays
(no copies) and compares consecutive snapshots to detect coordinate
changes, so callers must pass a fresh array each cycle rather than
mutating one in place.  The motion layer always does; if the same array
object is passed twice, the grid stays exact but disables answer reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..engines.base import BaseEngine
from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..state import as_world_snapshot
from ..grid.grid2d import resolve_grid_size
from ..obs.registry import NULL_REGISTRY, MetricsRegistry
from ..obs.tracing import Tracer
from .answers import AnswerList
from .fast_index import StageTimings, batch_knn

try:  # pragma: no cover - exercised via _scipy_group_works()
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except Exception:  # pragma: no cover - scipy absent in minimal CI envs
    _scipy_sparsetools = None


def _scipy_group_works() -> bool:
    """Verify the C counting-sort kernel on a tiny case before trusting it.

    ``coo_tocsr`` is private SciPy API; a signature or semantics change in
    a future release must demote us to the argsort fallback, not corrupt
    the index.
    """
    if _scipy_sparsetools is None or not hasattr(_scipy_sparsetools, "coo_tocsr"):
        return False
    try:
        rows = np.array([2, 0, 2, 1], dtype=np.int32)
        cols = np.array([0, 1, 2, 3], dtype=np.int32)
        ones = np.ones(4, dtype=np.int8)
        indptr = np.zeros(4, dtype=np.int32)
        indices = np.empty(4, dtype=np.int32)
        data_out = np.empty(4, dtype=np.int8)
        _scipy_sparsetools.coo_tocsr(
            3, 4, 4, rows, cols, ones, indptr, indices, data_out
        )
    except Exception:
        return False
    return indptr.tolist() == [0, 1, 2, 4] and indices.tolist() == [1, 3, 0, 2]


#: Module switch (tests monkeypatch this to force the fallback path).
_USE_SCIPY = _scipy_group_works()

#: Re-answer everything when more than this fraction of cells is dirty:
#: the summed-area table over the dirty mask would cost more than the
#: answering it could save.
_REUSE_DIRTY_LIMIT = 0.25

#: Relative inflation of the previous k-th distance when seeding ring
#: growth (mirrors the sharded engine's ``seed_slack`` idea; any value is
#: exact, a small one keeps the seeded rectangle tight).
_SEED_SLACK = 0.05


@dataclass(frozen=True)
class DeltaUpdateStats:
    """What one :meth:`DeltaCSRGrid.update` call did."""

    mode: str  # "patch" | "rebuild"
    n_members: int
    movers: int
    mover_fraction: float
    dirty_cells: int
    dirty_fraction: float
    dirty_all: bool
    compacted: bool
    slack_enabled: bool


def _segmented_arange(lengths: np.ndarray) -> Tuple[np.ndarray, int]:
    """``concat([arange(n) for n in lengths])`` plus the total length."""
    total = int(lengths.sum())
    ends = np.cumsum(lengths)
    return np.arange(total) - np.repeat(ends - lengths, lengths), total


class DeltaCSRGrid:
    """A CSR grid snapshot maintained incrementally across cycles.

    Exposes the same answer-facing surface as
    :class:`~repro.core.fast_index.CSRGrid` (``count_in_rects``,
    ``pair_candidates``, ``cell_start``/``ids`` row runs and the scalar
    SnapshotIndex accessors), so :func:`~repro.core.fast_index.batch_knn`
    runs against it unchanged.  Differences: ``ids`` may contain ``-1``
    slack gaps (masked to ``inf`` distance by :meth:`pair_candidates`) and
    candidate coordinates are gathered lazily from the raw position
    array instead of permuted copies.

    ``member_idx`` optionally restricts the grid to a subset of the
    object universe (the sharded engine keeps one delta grid per stripe);
    membership may change between updates — joins and leaves are handled
    as plain inserts and deletes by the patch machinery.
    """

    def __init__(
        self,
        positions: np.ndarray,
        ncells: Optional[int] = None,
        *,
        region: Tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        nx: Optional[int] = None,
        ny: Optional[int] = None,
        patch_threshold: float = 0.3,
        slack: float = 0.5,
        track_dirty: bool = True,
        member_idx: Optional[np.ndarray] = None,
    ) -> None:
        if ncells is not None:
            nx = ny = int(ncells)
        if nx is None or ny is None:
            raise ConfigurationError("specify either ncells= or both nx= and ny=")
        nx, ny = int(nx), int(ny)
        if nx < 1 or ny < 1:
            raise ConfigurationError(
                f"grid must have >= 1 cell per side, got {nx}x{ny}"
            )
        x0, y0, x1, y1 = (float(v) for v in region)
        if not (x1 > x0 and y1 > y0):
            raise ConfigurationError(f"degenerate region {region!r}")
        if not 0.0 <= patch_threshold <= 1.0:
            raise ConfigurationError(
                f"patch_threshold must be in [0, 1], got {patch_threshold}"
            )
        if slack < 0.0:
            raise ConfigurationError(f"slack must be >= 0, got {slack}")
        self.nx = nx
        self.ny = ny
        self.ncells = nx  # legacy alias; square unit-grids keep nx == ny
        self.region = (x0, y0, x1, y1)
        self.dx = (x1 - x0) / nx
        self.dy = (y1 - y0) / ny
        self.delta = self.dx  # legacy alias
        self.patch_threshold = float(patch_threshold)
        self.slack = float(slack)
        self.track_dirty = bool(track_dirty)
        self.compactions = 0

        self._n_cells = nx * ny
        self._n_universe = -1
        self._has_slack = False
        self._backoff = False
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._positions_ref: Optional[np.ndarray] = None
        self._obj_cell: Optional[np.ndarray] = None
        self._scratch: Optional[np.ndarray] = None
        self._fbuf: Optional[np.ndarray] = None
        self._ibuf: Optional[np.ndarray] = None
        self._col: Optional[np.ndarray] = None
        self._ones: Optional[np.ndarray] = None
        self._data_out: Optional[np.ndarray] = None
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._live = np.zeros(self._n_cells, dtype=np.int32)
        self.prefix = np.zeros((ny + 1, nx + 1), dtype=np.int32)
        self._ptmp = np.empty((ny, nx), dtype=np.int32)
        self._rowcum: Optional[np.ndarray] = None
        self.dirty: Optional[np.ndarray] = None
        self._dirty_sat: Optional[np.ndarray] = None
        self._dirty_sat_fresh = False

        self.n_objects = 0
        self.ids: np.ndarray = np.empty(0, dtype=np.int32)
        self.cell_start: np.ndarray = np.zeros(1, dtype=np.int32)
        self.last_stats: DeltaUpdateStats

        self.update(positions, member_idx)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update(
        self,
        positions: np.ndarray,
        member_idx: Optional[np.ndarray] = None,
        *,
        pinned: bool = False,
    ) -> DeltaUpdateStats:
        """Bring the snapshot up to date with a new position array.

        Chooses the patch or the rebuild regime from the measured mover
        fraction; returns (and stores in :attr:`last_stats`) what it did.

        ``pinned=True`` declares the array content-stable for at least
        one cycle (an epoch-versioned store snapshot: published buffers
        are never mutated).  Unpinned arrays that share memory with the
        previous cycle's are treated as *aliased* — the caller may have
        mutated them in place, so the stored coordinate views can't
        witness what changed and answer reuse is disabled for the cycle.
        The identity check alone is not enough: a fresh view over the
        same mutated buffer is a different object with the same bytes.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("positions must be an (N, 2) array")
        n = len(positions)
        ref = self._positions_ref
        aliased = (
            not pinned
            and ref is not None
            and (positions is ref or np.may_share_memory(positions, ref))
        )
        fresh = n != self._n_universe
        if fresh:
            self._allocate(n)
        x = positions[:, 0]
        y = positions[:, 1]

        new_cell = self._compute_cells(x, y, member_idx)
        if fresh:
            stats = self._rebuild(
                x, y, new_cell, member_idx, slack_on=False, compacted=False
            )
            self._finish_update(positions, x, y, new_cell, stats)
            return stats

        assert self._obj_cell is not None
        mover_mask = new_cell != self._obj_cell
        movers = int(np.count_nonzero(mover_mask))
        n_members = (
            n if member_idx is None else int(len(member_idx))
        )
        mover_fraction = movers / max(1, n_members)

        dirty_all, dirty_count = self._track_dirty_cells(
            x, y, mover_mask, new_cell, mover_fraction, aliased
        )

        # After an overflow-triggered compaction, demand half the churn
        # before attempting to patch again: near the threshold a patch
        # overflows almost every cycle, and compact-retry-compact thrash
        # costs more than rebuilding outright.
        threshold = self.patch_threshold * (0.5 if self._backoff else 1.0)
        patchable = (
            self.slack > 0.0
            and self.patch_threshold > 0.0
            and mover_fraction <= threshold
        )
        if not patchable:
            stats = self._rebuild(
                x, y, new_cell, member_idx, slack_on=False, compacted=False,
                movers=movers, mover_fraction=mover_fraction,
                dirty_all=dirty_all, dirty_count=dirty_count,
                n_members=n_members,
            )
        elif not self._has_slack:
            # Entering the patch regime: one slack rebuild lays out the
            # spare capacity the bucketed inserts need.
            stats = self._rebuild(
                x, y, new_cell, member_idx, slack_on=True, compacted=False,
                movers=movers, mover_fraction=mover_fraction,
                dirty_all=dirty_all, dirty_count=dirty_count,
                n_members=n_members,
            )
        else:
            overflow = self._patch(mover_mask, new_cell)
            if overflow:
                self.compactions += 1
                self._backoff = True
                stats = self._rebuild(
                    x, y, new_cell, member_idx, slack_on=True, compacted=True,
                    movers=movers, mover_fraction=mover_fraction,
                    dirty_all=dirty_all, dirty_count=dirty_count,
                    n_members=n_members,
                )
            else:
                self._backoff = False
                stats = DeltaUpdateStats(
                    mode="patch",
                    n_members=n_members,
                    movers=movers,
                    mover_fraction=mover_fraction,
                    dirty_cells=dirty_count,
                    dirty_fraction=dirty_count / self._n_cells,
                    dirty_all=dirty_all,
                    compacted=False,
                    slack_enabled=True,
                )
        self._finish_update(positions, x, y, new_cell, stats)
        return stats

    def _allocate(self, n: int) -> None:
        # The full-membership float/int work buffers (_fbuf/_ibuf/_col)
        # are allocated lazily on first use: per-stripe grids only ever
        # run the member_idx path and would waste ~16MB per stripe at
        # NP=1M universes otherwise.
        self._n_universe = n
        self._obj_cell = np.full(n, -1, dtype=np.int32)
        self._scratch = np.empty(n, dtype=np.int32)
        self._fbuf = None
        self._ibuf = None
        self._col = None
        self._ones = np.ones(n, dtype=np.int8)
        self._data_out = np.empty(n, dtype=np.int8)
        self._indptr = np.empty(self._n_cells + 1, dtype=np.int32)
        self._indices = np.empty(n, dtype=np.int32)
        self._has_slack = False
        self._rowcum = None
        self._positions_ref = None

    def _compute_cells(
        self, x: np.ndarray, y: np.ndarray, member_idx: Optional[np.ndarray]
    ) -> np.ndarray:
        """Flat cell ID per universe object (``-1`` for non-members).

        Uses the exact float expression of
        :class:`~repro.core.fast_index.CSRGrid` so cell assignment (and
        with it every boundary case) is bit-identical across engines.
        """
        nx, ny = self.nx, self.ny
        x0, y0, x1, y1 = self.region
        sx = nx / (x1 - x0)
        sy = ny / (y1 - y0)
        scratch = self._scratch
        assert scratch is not None
        if member_idx is not None:
            xm = x[member_idx]
            ym = y[member_idx]
            ii = np.clip(((xm - x0) * sx).astype(np.int32), 0, nx - 1)
            jj = np.clip(((ym - y0) * sy).astype(np.int32), 0, ny - 1)
            scratch.fill(-1)
            scratch[member_idx] = jj * np.int32(nx) + ii
            return scratch
        if self._ibuf is None:
            self._fbuf = np.empty(self._n_universe, dtype=np.float64)
            self._ibuf = np.empty(self._n_universe, dtype=np.int32)
        fbuf, ibuf = self._fbuf, self._ibuf
        assert fbuf is not None and ibuf is not None
        # ii into ibuf.  ``v - 0.0 == v`` exactly for the in-region domain,
        # so the subtraction pass is skipped for origin-anchored regions
        # (the common unit square); the float64 product is truncated to
        # int32 by the ufunc's output cast — both transforms drop whole
        # memory passes without changing a single bit vs CSRGrid.
        if x0 == 0.0:
            np.multiply(x, sx, out=ibuf, casting="unsafe")
        else:
            np.subtract(x, x0, out=fbuf)
            np.multiply(fbuf, sx, out=fbuf)
            np.copyto(ibuf, fbuf, casting="unsafe")
        np.clip(ibuf, 0, nx - 1, out=ibuf)
        # jj into scratch, then flat = jj * nx + ii in place
        if y0 == 0.0:
            np.multiply(y, sy, out=scratch, casting="unsafe")
        else:
            np.subtract(y, y0, out=fbuf)
            np.multiply(fbuf, sy, out=fbuf)
            np.copyto(scratch, fbuf, casting="unsafe")
        np.clip(scratch, 0, ny - 1, out=scratch)
        np.multiply(scratch, np.int32(nx), out=scratch)
        np.add(scratch, ibuf, out=scratch)
        return scratch

    def _group_members(
        self, new_cell: np.ndarray, member_idx: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids_grouped_by_cell, indptr)`` via counting sort.

        The hot step of the rebuild regime.  SciPy's ``coo_tocsr`` is a
        two-pass C counting sort (~3x faster than ``argsort`` at NP=1M);
        the fallback is an int32 ``argsort`` — still cheaper than the
        ``CSRGrid`` build, which additionally gathers three permuted
        arrays.
        """
        indptr = self._indptr
        indices = self._indices
        assert indptr is not None and indices is not None
        if member_idx is None:
            if self._col is None:
                self._col = np.arange(self._n_universe, dtype=np.int32)
            flat = new_cell
            cols = self._col
            nnz = self._n_universe
            out = indices
        else:
            flat = np.ascontiguousarray(new_cell[member_idx], dtype=np.int32)
            cols = np.ascontiguousarray(member_idx, dtype=np.int32)
            nnz = len(flat)
            out = indices[:nnz]
        if _USE_SCIPY:
            data_out = self._data_out
            assert _scipy_sparsetools is not None
            assert self._ones is not None and data_out is not None
            _scipy_sparsetools.coo_tocsr(
                self._n_cells, self._n_universe, nnz,
                flat, cols, self._ones[:nnz], indptr, out, data_out[:nnz],
            )
            return out, indptr
        order = np.argsort(flat)
        out[:] = cols[order] if member_idx is not None else order
        counts = np.bincount(flat, minlength=self._n_cells)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        return out, indptr

    def _rebuild(
        self,
        x: np.ndarray,
        y: np.ndarray,
        new_cell: np.ndarray,
        member_idx: Optional[np.ndarray],
        *,
        slack_on: bool,
        compacted: bool,
        movers: Optional[int] = None,
        mover_fraction: float = 1.0,
        dirty_all: bool = True,
        dirty_count: Optional[int] = None,
        n_members: Optional[int] = None,
    ) -> DeltaUpdateStats:
        grouped, indptr = self._group_members(new_cell, member_idx)
        nnz = len(grouped)
        if not slack_on:
            self.ids = grouped
            self.cell_start = indptr
            self._has_slack = False
            self._rowcum = None
            # indptr is already the row-major cumulative count, so the
            # horizontal prefix pass collapses to one subtraction of each
            # row's start; only the vertical accumulation remains.
            np.subtract(
                indptr[1:].reshape(self.ny, self.nx),
                indptr[0 : self._n_cells : self.nx, None],
                out=self._ptmp,
            )
            np.cumsum(self._ptmp, axis=0, out=self.prefix[1:, 1:])
        else:
            counts = np.subtract(indptr[1:], indptr[:-1]).astype(np.int64)
            extra = np.maximum(
                1, np.ceil(counts * self.slack).astype(np.int64)
            )
            cap_start = np.zeros(self._n_cells + 1, dtype=np.int32)
            np.cumsum(counts + extra, out=cap_start[1:])
            padded = np.full(int(cap_start[-1]), -1, dtype=np.int32)
            if nnz:
                # Cell of each grouped slot, then scatter into the padded
                # layout preserving the grouped order within each cell.
                cell_of = (
                    new_cell[grouped]
                    if member_idx is not None
                    else np.repeat(np.arange(self._n_cells), counts)
                )
                within = np.arange(nnz) - indptr[cell_of]
                padded[cap_start[cell_of] + within] = grouped
            self.ids = padded
            self.cell_start = cap_start
            np.copyto(self._live, counts, casting="unsafe")
            self._has_slack = True
            self._refresh_rowcum_full()
        self.n_objects = nnz
        if movers is None:
            movers = nnz
        if n_members is None:
            n_members = nnz
        if dirty_count is None:
            dirty_count = self._n_cells
        return DeltaUpdateStats(
            mode="rebuild",
            n_members=n_members,
            movers=movers,
            mover_fraction=mover_fraction,
            dirty_cells=self._n_cells if dirty_all else dirty_count,
            dirty_fraction=1.0 if dirty_all else dirty_count / self._n_cells,
            dirty_all=dirty_all,
            compacted=compacted,
            slack_enabled=slack_on,
        )

    def _refresh_rowcum_full(self) -> None:
        if self._rowcum is None:
            self._rowcum = np.zeros((self.ny, self.nx + 1), dtype=np.int32)
        live2d = self._live.reshape(self.ny, self.nx)
        np.cumsum(live2d, axis=1, out=self._rowcum[:, 1:])
        np.cumsum(self._rowcum, axis=0, out=self.prefix[1:, :])

    def _patch(self, mover_mask: np.ndarray, new_cell: np.ndarray) -> bool:
        """Bucketed delete/insert of the movers; True on slack overflow."""
        obj_cell = self._obj_cell
        ids = self.ids
        cell_start = self.cell_start
        live = self._live
        assert obj_cell is not None
        mov = np.flatnonzero(mover_mask)
        if not len(mov):
            return False
        old_c = obj_cell[mov]
        new_c = new_cell[mov]

        # Inserts are bounded by per-cell slack; check capacity *before*
        # mutating anything so an overflow can fall back to a clean
        # rebuild (one compaction event).
        ins_mask = new_c >= 0
        ins_ids = mov[ins_mask]
        ins_cells = new_c[ins_mask]
        order = np.argsort(ins_cells)
        ins_ids = ins_ids[order]
        ins_cells = ins_cells[order]
        uniq_ins, first, ins_counts = np.unique(
            ins_cells, return_index=True, return_counts=True
        )
        del_cells = old_c[old_c >= 0]
        touched_old, del_counts = np.unique(del_cells, return_counts=True)
        # Deletions landing in the insert cells (sorted-set lookup; a
        # bincount over all cells would be O(ncells) per patch).
        if len(touched_old):
            pos = np.searchsorted(touched_old, uniq_ins)
            safe_pos = np.minimum(pos, len(touched_old) - 1)
            hit = (pos < len(touched_old)) & (touched_old[safe_pos] == uniq_ins)
            dels_at_ins = np.where(hit, del_counts[safe_pos], 0)
        else:
            # Pure-insert patch (churn: objects entering a stripe or the
            # population with no one leaving this cycle).
            dels_at_ins = np.zeros(len(uniq_ins), dtype=np.int64)
        capacity = cell_start[uniq_ins + 1] - cell_start[uniq_ins]
        occupied_after = live[uniq_ins] - dels_at_ins + ins_counts
        if np.any(occupied_after > capacity):
            return True

        # Repack affected old cells: gather their live runs, drop movers,
        # rewrite compacted, blank the tail.
        if len(touched_old):
            starts = cell_start[touched_old].astype(np.intp)
            lens = live[touched_old].astype(np.intp)
            within, total = _segmented_arange(lens)
            slot = np.repeat(starts, lens) + within
            entries = ids[slot]
            keep = ~mover_mask[entries]
            seg = np.repeat(np.arange(len(touched_old)), lens)
            kept_seg = seg[keep]
            new_len = np.bincount(kept_seg, minlength=len(touched_old)).astype(
                np.intp
            )
            within_k, _ = _segmented_arange(new_len)
            ids[np.repeat(starts, new_len) + within_k] = entries[keep]
            tail = lens - new_len
            within_t, _ = _segmented_arange(tail)
            ids[np.repeat(starts + new_len, tail) + within_t] = -1
            live[touched_old] = new_len

        # Bucketed inserts into the slack.
        if len(uniq_ins):
            base = cell_start[uniq_ins].astype(np.intp) + live[uniq_ins]
            within_i = np.arange(len(ins_cells)) - np.repeat(first, ins_counts)
            ids[np.repeat(base, ins_counts) + within_i] = ins_ids
            live[uniq_ins] += ins_counts.astype(np.int32)

        self.n_objects += int(len(ins_ids)) - int(len(del_cells))

        # Prefix: horizontal pass over dirty rows only, then one vertical
        # accumulation.
        rowcum = self._rowcum
        assert rowcum is not None
        touched = np.unique(
            np.concatenate((touched_old, uniq_ins)) // self.nx
        )
        live2d = self._live.reshape(self.ny, self.nx)
        rowcum[touched, 1:] = np.cumsum(live2d[touched], axis=1)
        np.cumsum(rowcum, axis=0, out=self.prefix[1:, :])
        return False

    def _track_dirty_cells(
        self,
        x: np.ndarray,
        y: np.ndarray,
        mover_mask: np.ndarray,
        new_cell: np.ndarray,
        mover_fraction: float,
        aliased: bool,
    ) -> Tuple[bool, int]:
        """Mark cells invalidated this cycle; returns ``(dirty_all, count)``.

        A cell is dirty when its membership changed *or* any object it
        holds changed coordinates.  When reuse is hopeless (high mover
        fraction, aliased position buffers, tracking disabled) the O(n)
        coordinate compare is skipped and everything counts as dirty.
        """
        self._dirty_sat_fresh = False
        if (
            not self.track_dirty
            or aliased
            or self._x is None
            or mover_fraction > _REUSE_DIRTY_LIMIT
        ):
            self.dirty = None
            return True, self._n_cells
        obj_cell = self._obj_cell
        assert obj_cell is not None
        changed = x != self._x
        changed |= y != self._y
        changed |= mover_mask
        touched = np.flatnonzero(changed)
        if self.dirty is None or len(self.dirty) != self._n_cells:
            self.dirty = np.zeros(self._n_cells, dtype=bool)
        else:
            self.dirty[:] = False
        old_cells = obj_cell[touched]
        new_cells = new_cell[touched]
        self.dirty[old_cells[old_cells >= 0]] = True
        self.dirty[new_cells[new_cells >= 0]] = True
        count = int(np.count_nonzero(self.dirty))
        if count > _REUSE_DIRTY_LIMIT * self._n_cells:
            self.dirty = None
            return True, count
        return False, count

    def _finish_update(
        self,
        positions: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        new_cell: np.ndarray,
        stats: DeltaUpdateStats,
    ) -> None:
        # new_cell is self._scratch; swap it into place and recycle the
        # old cell array as the next scratch buffer.
        self._obj_cell, self._scratch = new_cell, self._obj_cell
        self._x = x
        self._y = y
        self._positions_ref = positions
        self.last_stats = stats

    # ------------------------------------------------------------------
    # Answering surface (consumed by batch_knn)
    # ------------------------------------------------------------------
    def count_in_rects(
        self, ilo: np.ndarray, jlo: np.ndarray, ihi: np.ndarray, jhi: np.ndarray
    ) -> np.ndarray:
        """Live objects inside each inclusive cell rectangle (vectorized)."""
        p = self.prefix
        return (
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )

    def pair_candidates(
        self, cand: np.ndarray, px: np.ndarray, py: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, d2)`` per candidate slot; slack gaps mask to ``inf``.

        Coordinates resolve lazily through the slot->object indirection
        against the *current* position array — the reason stayers need no
        per-cycle structural work.  Gap slots (``id == -1``) report
        infinite distance; ring growth counts only live objects, so every
        query's rectangle holds >= k real candidates and gaps can never
        be selected.
        """
        assert self._x is not None and self._y is not None
        ids = self.ids[cand]
        gaps = ids < 0
        safe = np.where(gaps, 0, ids)
        pdx = self._x[safe] - px
        pdy = self._y[safe] - py
        d2 = pdx * pdx + pdy * pdy
        if gaps.any():
            d2[gaps] = np.inf
        return ids, d2

    def clean_queries(self, rects: np.ndarray) -> np.ndarray:
        """Per-query True when no dirty cell meets the rectangle (+-1 cell).

        ``rects`` is the ``(nq, 4)`` array of previous critical
        rectangles from :class:`~repro.core.fast_index.BatchKNNResult`.
        The one-cell expansion covers the knife edge where an object at
        distance exactly ``lcrit`` sits in the cell just past the
        rectangle's clamped bounding box.
        """
        if self.dirty is None:
            return np.zeros(len(rects), dtype=bool)
        if not self._dirty_sat_fresh:
            if self._dirty_sat is None:
                self._dirty_sat = np.zeros(
                    (self.ny + 1, self.nx + 1), dtype=np.int32
                )
            dirty2d = self.dirty.reshape(self.ny, self.nx)
            tmp = np.cumsum(dirty2d, axis=0, dtype=np.int32)
            np.cumsum(tmp, axis=1, out=self._dirty_sat[1:, 1:])
            self._dirty_sat_fresh = True
        p = self._dirty_sat
        ilo = np.maximum(rects[:, 0] - 1, 0)
        jlo = np.maximum(rects[:, 1] - 1, 0)
        ihi = np.minimum(rects[:, 2] + 1, self.nx - 1)
        jhi = np.minimum(rects[:, 3] + 1, self.ny - 1)
        hits = (
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )
        return hits == 0

    # ------------------------------------------------------------------
    # SnapshotIndex protocol — scalar accessors (parity with CSRGrid)
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> Tuple[int, int]:
        """Cell ``(i, j)`` of a point (clamped to the grid)."""
        x0, y0, x1, y1 = self.region
        i = min(max(int((x - x0) * (self.nx / (x1 - x0))), 0), self.nx - 1)
        j = min(max(int((y - y0) * (self.ny / (y1 - y0))), 0), self.ny - 1)
        return i, j

    def count_in_cells(self, ilo: int, jlo: int, ihi: int, jhi: int) -> int:
        """Number of live objects inside the inclusive cell rectangle."""
        p = self.prefix
        return int(
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )

    def gather_cells(
        self, ilo: int, jlo: int, ihi: int, jhi: int
    ) -> Tuple[List[int], List[float], List[float]]:
        """``(ids, xs, ys)`` of every live object inside the rectangle."""
        assert self._x is not None and self._y is not None
        starts = self.cell_start
        nx = self.nx
        out_ids: List[int] = []
        out_xs: List[float] = []
        out_ys: List[float] = []
        for j in range(jlo, jhi + 1):
            base = j * nx
            lo = int(starts[base + ilo])
            hi = int(starts[base + ihi + 1])
            if lo == hi:
                continue
            run = self.ids[lo:hi]
            run = run[run >= 0]
            out_ids.extend(run.tolist())
            out_xs.extend(self._x[run].tolist())
            out_ys.extend(self._y[run].tolist())
        return out_ids, out_xs, out_ys

    def position_of(self, object_id: int) -> Tuple[float, float]:
        """Snapshot position of one object (by global ID)."""
        assert self._x is not None and self._y is not None
        return float(self._x[object_id]), float(self._y[object_id])


class DeltaGridEngine(BaseEngine):
    """Monitoring engine over :class:`DeltaCSRGrid` with answer reuse.

    Same exact-answer contract (ties broken by object ID) and the same
    stage-history surface as
    :class:`~repro.core.fast_index.FastGridEngine`; the ``snapshot_csr``
    stage slot reports the incremental maintenance time instead of a full
    rebuild.

    Churn support (member mode): with a row-stable position universe and
    an ``ObjectDelta.member_idx`` subset, joins and leaves reach the grid
    as ordinary movers (cell ``-1`` ↔ live cell), so membership churn is
    patched incrementally instead of forcing a rebuild.  Query deltas
    remap the per-query reuse state through ``QueryDelta.kept``: a
    surviving query keeps its previous answer, critical rectangle and
    seeded radius; registered queries are answered by a one-shot overhaul
    on their first cycle (their rows are masked out of the clean set).
    """

    supports_member_idx = True

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
        patch_threshold: float = 0.3,
        slack: float = 0.5,
        reuse: bool = True,
    ) -> None:
        super().__init__(k, queries)
        self.name = "delta-grid"
        self._ncells = ncells
        self._delta = delta
        self._patch_threshold = float(patch_threshold)
        self._slack = float(slack)
        self._reuse = bool(reuse)
        self.grid: Optional[DeltaCSRGrid] = None
        self.stage_history: List[StageTimings] = []
        self._snapshot_time = 0.0
        self._stage_tracer = Tracer(NULL_REGISTRY)
        self.last_reuse_mask: Optional[np.ndarray] = None
        self._prev_top_d2: Optional[np.ndarray] = None
        self._prev_top_ids: Optional[np.ndarray] = None
        self._prev_rects: Optional[np.ndarray] = None
        self._prev_kth: Optional[np.ndarray] = None
        self._prev_answers: Optional[List[AnswerList]] = None
        self._member_idx: Optional[np.ndarray] = None
        # Rows admitted by the last query delta: their remapped reuse
        # slots are placeholders, so they must be re-answered once.
        self._fresh_queries: Optional[np.ndarray] = None

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if isinstance(tracer, Tracer):
            self._stage_tracer = tracer

    def set_queries(self, queries: np.ndarray) -> None:
        """Move the query points, dropping all per-query reuse state.

        Previous critical rectangles describe the old positions, so
        every query is re-answered on the next cycle.
        """
        super().set_queries(queries)
        self._drop_reuse_state()

    def _drop_reuse_state(self) -> None:
        self._prev_top_d2 = None
        self._prev_top_ids = None
        self._prev_rects = None
        self._prev_kth = None
        self._prev_answers = None
        self.last_reuse_mask = None
        self._fresh_queries = None

    # ------------------------------------------------------------------
    # Churn deltas
    # ------------------------------------------------------------------
    def apply_query_delta(self, delta) -> None:
        """Admit a query churn batch, carrying surviving reuse state over.

        ``delta.kept`` maps new rows to old rows; surviving queries keep
        their previous answers, critical rectangles and k-th-distance
        seeds (their positions are unchanged by contract).  New rows get
        placeholder state and are force-re-answered on the next cycle.
        """
        kept = np.asarray(delta.kept, dtype=np.intp)
        had_state = self._prev_top_d2 is not None
        self.queries = np.asarray(delta.queries, dtype=np.float64)
        nq = len(self.queries)
        if not had_state:
            self._drop_reuse_state()
            return
        has_prev = kept >= 0
        safe = np.where(has_prev, kept, 0)
        k = self.k
        top_d2 = self._prev_top_d2[safe].copy()
        top_ids = self._prev_top_ids[safe].copy()
        rects = self._prev_rects[safe].copy()
        kth = self._prev_kth[safe].copy()
        new_rows = ~has_prev
        top_d2[new_rows] = np.inf
        top_ids[new_rows] = -1
        rects[new_rows] = 0
        kth[new_rows] = np.inf
        if self._prev_answers is not None:
            # Fresh rows get placeholders; they are force-re-answered
            # (via _fresh_queries) before the next answers are returned.
            self._prev_answers = [
                self._prev_answers[i] if i >= 0 else AnswerList(k)
                for i in kept
            ]
        self._prev_top_d2 = top_d2
        self._prev_top_ids = top_ids
        self._prev_rects = rects
        self._prev_kth = kth
        self._fresh_queries = new_rows if new_rows.any() else None
        self.last_reuse_mask = None
        assert len(top_d2) == nq

    def apply_object_delta(self, delta) -> None:
        """Admit an object churn batch.

        Membership changes need no structural work here — the next
        :meth:`maintain` passes the new ``member_idx`` to the grid, which
        treats joins and leaves as movers.  Answer reuse stays sound:
        every join or leave dirties its cell, so any query whose answer
        could change is re-answered.  A compaction remaps row ids, which
        invalidates the grid's cell bookkeeping and every stored answer
        id — rebuild from scratch.
        """
        self._member_idx = delta.member_idx
        if delta.compacted:
            self.request_rebuild()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    #: Default grid-sizing factor vs the paper's delta* = 1/sqrt(NP).
    #: The overhaul cost model behind Theorem 1 balances per-cycle build
    #: cost against per-query scan cost; the delta engine's rebuild is
    #: dominated by the counting-sort scatter over the cell array, whose
    #: cache behavior improves sharply with fewer cells while the
    #: vectorized answering stays exact at any resolution.  Half the
    #: cells per side (cell area x4) measures fastest end-to-end at
    #: NP=1M on the benchmark box.
    GRID_FACTOR = 0.5

    def _resolve_ncells(self, n_objects: int) -> int:
        if self._ncells is None and self._delta is None:
            base = resolve_grid_size(n_objects=max(1, n_objects))
            return max(1, round(base * self.GRID_FACTOR))
        return resolve_grid_size(self._ncells, self._delta, None)

    def load(self, positions: np.ndarray) -> None:
        self.stage_history = []
        self.grid = None
        self._drop_reuse_state()
        self.maintain(positions)

    def maintain(self, positions: np.ndarray) -> None:
        with self._stage_tracer.span("delta_update") as span:
            world = as_world_snapshot(positions)
            positions = np.asarray(world, dtype=np.float64)
            member = self._member_idx
            n_live = len(positions) if member is None else len(member)
            # Sizing from the *live* population keeps the geometry
            # identical to a fresh engine built from the packed survivors
            # (the bit-identity contract of the churn suite).
            ncells = self._resolve_ncells(n_live)
            grid = self.grid
            if grid is None or grid.nx != ncells:
                self.grid = grid = DeltaCSRGrid(
                    positions,
                    ncells,
                    patch_threshold=self._patch_threshold,
                    slack=self._slack,
                    track_dirty=self._reuse,
                    member_idx=member,
                )
                # A fresh grid means fresh geometry: old critical
                # rectangles are meaningless in the new cell coordinates.
                self._drop_reuse_state()
            else:
                grid.update(positions, member, pinned=world.versioned)
            self._positions = positions
        self._snapshot_time = span.duration
        metrics = self.metrics
        if metrics.enabled:
            stats = grid.last_stats
            metrics.inc("delta.movers", stats.movers)
            metrics.inc("delta.dirty_cells", stats.dirty_cells)
            metrics.inc(
                "delta.patch_cycles" if stats.mode == "patch"
                else "delta.rebuild_cycles"
            )
            if stats.compacted:
                metrics.inc("delta.compactions")
            metrics.set_gauge("delta.mover_fraction", stats.mover_fraction)
            metrics.set_gauge("delta.dirty_fraction", stats.dirty_fraction)

    # ------------------------------------------------------------------
    # Answering: dirty-rectangle reuse + seeded batch_knn
    # ------------------------------------------------------------------
    def answer(self) -> List[AnswerList]:
        grid = self.grid
        if grid is None:
            raise IndexStateError("load() must run before answer()")
        k = self.k
        if k > grid.n_objects:
            raise NotEnoughObjectsError(k, grid.n_objects)
        nq = self.n_queries
        if nq == 0:
            self.stage_history.append(
                StageTimings(self._snapshot_time, 0.0, 0.0, 0.0)
            )
            return []

        with self._stage_tracer.span("reuse_check"):
            reusable = (
                self._reuse
                and self._prev_rects is not None
                and len(self._prev_rects) == nq
                and not grid.last_stats.dirty_all
            )
            if reusable:
                clean = grid.clean_queries(self._prev_rects)
                if self._fresh_queries is not None:
                    # Rows admitted by the last query delta carry
                    # placeholder rects — never reusable.
                    clean &= ~self._fresh_queries
            else:
                clean = np.zeros(nq, dtype=bool)
            self._fresh_queries = None
        affected = np.flatnonzero(~clean)
        n_clean = int(nq - len(affected))

        if self._prev_top_d2 is None:
            top_d2 = np.full((nq, k), np.inf)
            top_ids = np.full((nq, k), -1, dtype=np.int64)
            rects = np.zeros((nq, 4), dtype=np.intp)
        else:
            top_d2 = self._prev_top_d2
            top_ids = self._prev_top_ids
            rects = self._prev_rects

        timings = {"radii": 0.0, "gather": 0.0, "select": 0.0}
        if len(affected):
            qx = self.queries[affected, 0]
            qy = self.queries[affected, 1]
            seeds = None
            if self._prev_kth is not None and len(self._prev_kth) == nq:
                radius = self._prev_kth[affected] * (1.0 + _SEED_SLACK)
                cell = min(grid.dx, grid.dy)
                seeds = np.where(
                    np.isfinite(radius),
                    np.ceil(radius / cell),
                    0.0,
                ).astype(np.intp)
            result = batch_knn(
                grid, qx, qy, k, self._stage_tracer, seed_level=seeds
            )
            top_d2[affected] = result.top_d2
            top_ids[affected] = result.top_ids
            rects[affected] = result.rects
            timings = result.timings
            if self.metrics.enabled:
                stats = result.stats
                self.metrics.inc("fast.answer.queries", len(affected))
                self.metrics.inc("fast.answer.ring_passes", stats["ring_passes"])
                self.metrics.inc("fast.answer.pairs", stats["pairs"])

        prev_answers = self._prev_answers
        if prev_answers is not None and len(prev_answers) == nq:
            # Clean queries keep last cycle's AnswerList objects (and
            # their memoized neighbors); only re-answered rows are
            # materialized again.
            answers = prev_answers
            if len(affected):
                d_rows = top_d2[affected].tolist()
                i_rows = top_ids[affected].tolist()
                for j, query_id in enumerate(affected.tolist()):
                    answer = AnswerList(k)
                    answer._entries = list(zip(d_rows[j], i_rows[j]))
                    answers[query_id] = answer
        else:
            answers = []
            d_rows = top_d2.tolist()
            i_rows = top_ids.tolist()
            for query_id in range(nq):
                answer = AnswerList(k)
                answer._entries = list(zip(d_rows[query_id], i_rows[query_id]))
                answers.append(answer)
        self._prev_answers = answers

        self._prev_top_d2 = top_d2
        self._prev_top_ids = top_ids
        self._prev_rects = rects
        self._prev_kth = np.sqrt(top_d2[:, k - 1])
        self.last_reuse_mask = clean
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("delta.queries_reused", n_clean)
            metrics.inc("delta.queries_reanswered", len(affected))
            if n_clean:
                metrics.inc("delta.reuse_cycles")
        self.stage_history.append(
            StageTimings(
                self._snapshot_time,
                timings["radii"],
                timings["gather"],
                timings["select"],
            )
        )
        return answers

    # ------------------------------------------------------------------
    # Introspection (parity with FastGridEngine)
    # ------------------------------------------------------------------
    @property
    def last_stages(self) -> StageTimings:
        if not self.stage_history:
            raise IndexStateError("no cycle has run yet")
        return self.stage_history[-1]

    def mean_stage_times(self, skip_first: bool = True) -> "dict[str, float]":
        """Mean seconds per stage, by default excluding the initial build."""
        history = (
            self.stage_history[1:]
            if skip_first and len(self.stage_history) > 1
            else self.stage_history
        )
        if not history:
            raise IndexStateError("no cycle has run yet")
        return {
            name: sum(getattr(s, name) for s in history) / len(history)
            for name in ("snapshot_csr", "radii", "gather", "select")
        }
