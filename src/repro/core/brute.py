"""Brute-force exact k-NN — the ground-truth oracle.

Linear scan over all object positions with :func:`numpy.argpartition`.
Used in tests to validate every index structure and in benchmarks as a
floor/ceiling reference.  It is *not* part of the monitored fast path.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import NotEnoughObjectsError
from .answers import Neighbor


def brute_force_knn(
    positions: np.ndarray, qx: float, qy: float, k: int
) -> List[Neighbor]:
    """Exact k nearest neighbors of ``(qx, qy)`` by linear scan.

    Parameters
    ----------
    positions:
        Array of shape ``(n, 2)`` with one row per object; the object ID is
        the row index.
    qx, qy:
        Query point.
    k:
        Number of neighbors; must not exceed ``n``.

    Returns
    -------
    list of ``(object_id, distance)`` sorted by distance then by ID.
    """
    n = len(positions)
    if k > n:
        raise NotEnoughObjectsError(k, n)
    dx = positions[:, 0] - qx
    dy = positions[:, 1] - qy
    d2 = dx * dx + dy * dy
    if k == n:
        candidates = np.arange(n)
    else:
        # argpartition picks an arbitrary member of a distance tie that
        # straddles the k-th cut; widen to every object at the cut
        # distance so ties are broken by ID, not by partition order.
        selected = np.argpartition(d2, k - 1)[:k]
        cut = d2[selected].max()
        candidates = np.flatnonzero(d2 <= cut)
    order = sorted((float(d2[i]), int(i)) for i in candidates)[:k]
    return [(object_id, float(np.sqrt(dd))) for dd, object_id in order]


def brute_force_all(
    positions: np.ndarray, queries: Sequence[Tuple[float, float]], k: int
) -> List[List[Neighbor]]:
    """Exact k-NN for a batch of queries (one linear scan per query)."""
    return [brute_force_knn(positions, qx, qy, k) for qx, qy in queries]
