"""The snapshot buffer of §3: ``OBJ_curr`` and ``OBJ_snapshot``.

The paper's system model: objects report new positions *continuously and
asynchronously* into a current-position buffer; every ``tau`` time units a
consistent snapshot is taken and the monitoring cycle (index maintenance +
query answering) runs against that snapshot only.  Answers are therefore
exact for the snapshot instant — updating the index mid-cycle as reports
arrive would break that guarantee (§3, first paragraph).

:class:`PositionBuffer` is that buffer, and :class:`MonitoringService`
wires a buffer to a :class:`~repro.core.monitor.MonitoringSystem` for a
streaming-update API.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, OutOfRegionError
from .answers import QueryAnswer
from .monitor import MonitoringSystem


class PositionBuffer:
    """Current positions of a fixed population, updated asynchronously.

    Reports may arrive in any order, multiple times per object per cycle;
    only the latest report per object is in effect when a snapshot is
    taken.  Positions must lie in the unit square.
    """

    def __init__(self, initial_positions: np.ndarray) -> None:
        positions = np.asarray(initial_positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("initial_positions must be an (n, 2) array")
        self._validate_region(positions)
        self._current = positions.copy()
        self._dirty: Dict[int, Tuple[float, float]] = {}
        self.reports_received = 0
        #: Reports that overwrote a still-pending report for the same
        #: object (the buffer "hit" its coalescing purpose).
        self.coalesced_reports = 0
        self.snapshots_taken = 0

    @staticmethod
    def _validate_region(positions: np.ndarray) -> None:
        if len(positions) == 0:
            return
        bad = np.nonzero(
            (positions[:, 0] < 0.0)
            | (positions[:, 0] >= 1.0)
            | (positions[:, 1] < 0.0)
            | (positions[:, 1] >= 1.0)
        )[0]
        if len(bad):
            x, y = positions[bad[0]]
            raise OutOfRegionError(float(x), float(y))

    @property
    def n_objects(self) -> int:
        return len(self._current)

    @property
    def pending_reports(self) -> int:
        """Objects with reports not yet folded into a snapshot."""
        return len(self._dirty)

    def report(self, object_id: int, x: float, y: float) -> None:
        """One asynchronous position report from an object."""
        if not 0 <= object_id < len(self._current):
            raise ConfigurationError(
                f"object id {object_id} outside population "
                f"[0, {len(self._current)})"
            )
        if not (0.0 <= x < 1.0 and 0.0 <= y < 1.0):
            raise OutOfRegionError(x, y)
        if object_id in self._dirty:
            self.coalesced_reports += 1
        self._dirty[object_id] = (x, y)
        self.reports_received += 1

    def report_batch(self, object_ids: Sequence[int], positions: np.ndarray) -> None:
        """A batch of reports (e.g. one radio frame's worth)."""
        positions = np.asarray(positions, dtype=np.float64)
        if len(object_ids) != len(positions):
            raise ConfigurationError("object_ids and positions length mismatch")
        for object_id, (x, y) in zip(object_ids, positions):
            self.report(int(object_id), float(x), float(y))

    def snapshot(self) -> np.ndarray:
        """Fold pending reports in and return a consistent snapshot copy."""
        if self._dirty:
            for object_id, (x, y) in self._dirty.items():
                self._current[object_id, 0] = x
                self._current[object_id, 1] = y
            self._dirty.clear()
        self.snapshots_taken += 1
        return self._current.copy()


class MonitoringService:
    """Streaming facade: asynchronous reports in, periodic answers out.

    Combines a :class:`PositionBuffer` with any configured
    :class:`MonitoringSystem`.  Call :meth:`report` as position updates
    arrive and :meth:`run_cycle` every ``tau`` to obtain exact answers for
    the snapshot taken at that moment.
    """

    def __init__(
        self, system: MonitoringSystem, initial_positions: np.ndarray
    ) -> None:
        self.buffer = PositionBuffer(initial_positions)
        self.system = system
        #: Exact answers for the initial snapshot (timestamp 0).
        self.initial_answers: List[QueryAnswer] = system.load(self.buffer.snapshot())
        self._reports_seen = self.buffer.reports_received
        self._coalesced_seen = self.buffer.coalesced_reports

    def report(self, object_id: int, x: float, y: float) -> None:
        """Accept one asynchronous position report."""
        self.buffer.report(object_id, x, y)

    def report_batch(self, object_ids: Sequence[int], positions: np.ndarray) -> None:
        self.buffer.report_batch(object_ids, positions)

    def run_cycle(self) -> List[QueryAnswer]:
        """Take a snapshot and run one monitoring cycle against it."""
        registry = self.system.registry
        if registry.enabled:
            buffer = self.buffer
            registry.inc(
                "buffer.reports", buffer.reports_received - self._reports_seen
            )
            registry.inc(
                "buffer.coalesced_hits",
                buffer.coalesced_reports - self._coalesced_seen,
            )
            registry.inc("buffer.objects_folded", buffer.pending_reports)
            self._reports_seen = buffer.reports_received
            self._coalesced_seen = buffer.coalesced_reports
        return self.system.tick(self.buffer.snapshot())

    @property
    def timestamp(self) -> float:
        return self.system.timestamp
