"""The snapshot buffer of §3: ``OBJ_curr`` and ``OBJ_snapshot``.

The paper's system model: objects report new positions *continuously and
asynchronously* into a current-position buffer; every ``tau`` time units a
consistent snapshot is taken and the monitoring cycle (index maintenance +
query answering) runs against that snapshot only.  Answers are therefore
exact for the snapshot instant — updating the index mid-cycle as reports
arrive would break that guarantee (§3, first paragraph).

:class:`PositionBuffer` is that buffer.  Since the world-state plane
landed it is a thin ingest adapter over a
:class:`~repro.state.WorldStore`: reports coalesce in a dict, fold into
the store's staging epoch in one vectorized write at snapshot time, and
the snapshot itself is the store's published read-only view — zero
copies anywhere on the path.  **Snapshots are immutable now**: writing
through the returned array raises ``ValueError`` where it used to
silently modify a private copy.

:class:`MonitoringService` is deprecated; prefer
:class:`repro.service.MonitoringSession` (query/object churn, stable
handles, backpressure) or drive a :class:`PositionBuffer` +
:class:`~repro.core.monitor.MonitoringSystem` pair directly.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, OutOfRegionError
from ..obs.registry import MetricsRegistry
from ..state import WorldSnapshot, WorldStore
from .answers import QueryAnswer
from .monitor import MonitoringSystem


class PositionBuffer:
    """Current positions of a fixed population, updated asynchronously.

    Reports may arrive in any order, multiple times per object per cycle;
    only the latest report per object is in effect when a snapshot is
    taken.  Positions must lie in the unit square.
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        positions = np.asarray(initial_positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError("initial_positions must be an (n, 2) array")
        self._validate_region(positions)
        self.store = WorldStore(positions, registry=registry)
        self._n = len(positions)
        self._dirty: Dict[int, Tuple[float, float]] = {}
        self.reports_received = 0
        #: Reports that overwrote a still-pending report for the same
        #: object (the buffer "hit" its coalescing purpose).
        self.coalesced_reports = 0
        self.snapshots_taken = 0
        self._reports_seen = 0
        self._coalesced_seen = 0

    @staticmethod
    def _validate_region(positions: np.ndarray) -> None:
        if len(positions) == 0:
            return
        bad = np.nonzero(
            (positions[:, 0] < 0.0)
            | (positions[:, 0] >= 1.0)
            | (positions[:, 1] < 0.0)
            | (positions[:, 1] >= 1.0)
        )[0]
        if len(bad):
            x, y = positions[bad[0]]
            raise OutOfRegionError(float(x), float(y))

    @property
    def n_objects(self) -> int:
        return self._n

    @property
    def pending_reports(self) -> int:
        """Objects with reports not yet folded into a snapshot."""
        return len(self._dirty)

    def report(self, object_id: int, x: float, y: float) -> None:
        """One asynchronous position report from an object."""
        if not 0 <= object_id < self._n:
            raise ConfigurationError(
                f"object id {object_id} outside population [0, {self._n})"
            )
        if not (0.0 <= x < 1.0 and 0.0 <= y < 1.0):
            raise OutOfRegionError(x, y)
        if object_id in self._dirty:
            self.coalesced_reports += 1
        self._dirty[object_id] = (x, y)
        self.reports_received += 1

    def report_batch(self, object_ids: Sequence[int], positions: np.ndarray) -> None:
        """A batch of reports (e.g. one radio frame's worth)."""
        positions = np.asarray(positions, dtype=np.float64)
        if len(object_ids) != len(positions):
            raise ConfigurationError("object_ids and positions length mismatch")
        for object_id, (x, y) in zip(object_ids, positions):
            self.report(int(object_id), float(x), float(y))

    def _fold(self) -> None:
        """Apply the coalesced reports in one vectorized store write."""
        if not self._dirty:
            return
        rows = np.fromiter(self._dirty.keys(), dtype=np.intp, count=len(self._dirty))
        points = np.array(list(self._dirty.values()), dtype=np.float64)
        self.store.write_rows(rows, points)
        self._dirty.clear()

    def publish(self) -> WorldSnapshot:
        """Fold pending reports and publish a consistent store epoch.

        An unchanged world republishes the same epoch — the snapshot
        object (and its memory) is shared, never re-copied.  Emits the
        per-snapshot ``buffer.*`` counters when the store has a live
        metrics registry.
        """
        registry = self.store.registry
        if registry.enabled:
            registry.inc(
                "buffer.reports", self.reports_received - self._reports_seen
            )
            registry.inc(
                "buffer.coalesced_hits",
                self.coalesced_reports - self._coalesced_seen,
            )
            registry.inc("buffer.objects_folded", len(self._dirty))
            self._reports_seen = self.reports_received
            self._coalesced_seen = self.coalesced_reports
        self._fold()
        self.snapshots_taken += 1
        return self.store.packed(self.store.publish())

    def snapshot(self) -> np.ndarray:
        """Fold pending reports in and return a consistent snapshot.

        The array is a **read-only view** of the published store epoch —
        shared zero-copy with every other consumer of the same epoch.
        Callers that used to scribble on the returned copy must copy
        explicitly now (``buffer.snapshot().copy()``).
        """
        return self.publish().positions


class MonitoringService:
    """Deprecated streaming facade: buffer + system behind one object.

    .. deprecated::
        Use :class:`repro.service.MonitoringSession` (stable handles,
        churn admission, backpressure) or compose a
        :class:`PositionBuffer` with a
        :class:`~repro.core.monitor.MonitoringSystem` directly —
        ``system.tick(buffer.publish())`` is the whole loop.
    """

    def __init__(
        self, system: MonitoringSystem, initial_positions: np.ndarray
    ) -> None:
        warnings.warn(
            "MonitoringService is deprecated; use repro.service."
            "MonitoringSession, or drive a PositionBuffer + "
            "MonitoringSystem pair directly (system.tick(buffer.publish()))",
            DeprecationWarning,
            stacklevel=2,
        )
        self.buffer = PositionBuffer(
            initial_positions, registry=system.registry
        )
        self.system = system
        #: Exact answers for the initial snapshot (timestamp 0).
        self.initial_answers: List[QueryAnswer] = system.load(self.buffer.publish())

    def report(self, object_id: int, x: float, y: float) -> None:
        """Accept one asynchronous position report."""
        self.buffer.report(object_id, x, y)

    def report_batch(self, object_ids: Sequence[int], positions: np.ndarray) -> None:
        self.buffer.report_batch(object_ids, positions)

    def run_cycle(self) -> List[QueryAnswer]:
        """Take a snapshot and run one monitoring cycle against it."""
        return self.system.tick(self.buffer.publish())

    @property
    def timestamp(self) -> float:
        return self.system.timestamp
