"""Analytical cost models from the paper (§3.1–§3.3).

These closed forms are what the experiments in §5.3 validate:

* Lemma 1  — overhaul Object-Indexing run time
  ``T = Tindex + Tquery`` with ``Tindex = a0 * NP`` and
  ``Tquery = (a1 (lcrit+delta)^2 / delta^2 + a2 (lcrit+delta)^2 NP) * NQ``.
* Theorem 1 — under uniformity the optimal cell size is
  ``delta* = 1 / sqrt(NP)`` and per-query time is constant in ``NP``.
* Theorem 2/3 — under skew (Thm 2) or mobility (Thm 3) the per-query time
  inflates to ``b0 + b1 mu sqrt(NP) + b2 mu^2 NP`` per query.
* The mobility model's cell-exit probability ``Pr(exit)`` (closed form in
  §3.2), which decides incremental-vs-overhaul index maintenance.

Constants ``a_i``, ``b_i``, ``c_i`` are machine dependent; helpers are
provided to fit them to measured series with linear least squares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


def optimal_cell_size(n_objects: int) -> float:
    """Theorem 1: ``delta* = 1 / sqrt(NP)``."""
    if n_objects < 1:
        raise ConfigurationError(f"n_objects must be >= 1, got {n_objects}")
    return 1.0 / math.sqrt(n_objects)


def expected_knn_radius_uniform(k: int, n_objects: int) -> float:
    """Expected distance to the k-th NN under uniformity.

    From ``pi * lcrit^2 * NP ~= k`` (proof of Theorem 1):
    ``lcrit ~= sqrt(k / (pi * NP))``.
    """
    if k < 1 or n_objects < 1:
        raise ConfigurationError("k and n_objects must be >= 1")
    return math.sqrt(k / (math.pi * n_objects))


def pr_exit(delta: float, vmax: float) -> float:
    """Probability that an object leaves its cell within one cycle (§3.2).

    Displacements ``u, v ~ U[-vmax, vmax]`` i.i.d., start position uniform
    in the cell.  The paper's closed form::

        Pr(exit) = 1 - (delta / (2 vmax))^2          if delta <= vmax
        Pr(exit) = (vmax/delta) (1 - vmax/(4 delta)) ... per axis, combined

    The second branch printed in the paper is the small-``vmax`` expansion;
    here the exact two-axis form ``1 - Pstay_1d(delta, vmax)^2`` is used,
    which reduces to the paper's expressions in both regimes.
    """
    if delta <= 0.0 or vmax < 0.0:
        raise ConfigurationError("delta must be > 0 and vmax >= 0")
    if vmax == 0.0:
        return 0.0
    stay_1d = _pr_stay_1d(delta, vmax)
    return 1.0 - stay_1d * stay_1d


def _pr_stay_1d(delta: float, vmax: float) -> float:
    """One-axis stay probability for ``u ~ U[-vmax, vmax]``, ``x ~ U[0, delta)``."""
    if delta <= vmax:
        return delta / (2.0 * vmax)
    return 1.0 - vmax / (2.0 * delta)


def pr_exit_paper(delta: float, vmax: float) -> float:
    """The paper's printed piecewise ``Pr(exit)`` formula, verbatim.

    ``1 - (delta/(2 vmax))^2`` for ``delta <= vmax`` and
    ``(vmax/delta) * (1 - vmax/(4 delta))`` for ``delta > vmax``.  The
    second branch equals ``1 - (1 - vmax/(2 delta))^2`` exactly, i.e. the
    two-axis combination is already folded in; kept for fidelity checks.
    """
    if delta <= 0.0 or vmax < 0.0:
        raise ConfigurationError("delta must be > 0 and vmax >= 0")
    if vmax == 0.0:
        return 0.0
    if delta <= vmax:
        ratio = delta / (2.0 * vmax)
        return 1.0 - ratio * ratio
    return (vmax / delta) * (1.0 - vmax / (4.0 * delta))


@dataclass(frozen=True)
class ObjectIndexingCost:
    """Fitted Lemma 1 constants for overhaul Object-Indexing."""

    a0: float  # index build, per object
    a1: float  # query answering, per cell of Rcrit
    a2: float  # query answering, per (area * NP) unit

    def t_index(self, n_objects: int) -> float:
        return self.a0 * n_objects

    def t_query(
        self, lcrit: float, delta: float, n_objects: int, n_queries: int
    ) -> float:
        width = lcrit + delta
        area = width * width
        per_query = self.a1 * area / (delta * delta) + self.a2 * area * n_objects
        return per_query * n_queries

    def total(
        self, lcrit: float, delta: float, n_objects: int, n_queries: int
    ) -> float:
        return self.t_index(n_objects) + self.t_query(
            lcrit, delta, n_objects, n_queries
        )


@dataclass(frozen=True)
class SkewedQueryCost:
    """Theorem 2/3 per-query cost ``b0 + b1 mu sqrt(NP) + b2 mu^2 NP``."""

    b0: float
    b1: float
    b2: float

    def t_query(self, mu: float, n_objects: int, n_queries: int) -> float:
        root = math.sqrt(n_objects)
        per_query = self.b0 + self.b1 * mu * root + self.b2 * mu * mu * n_objects
        return per_query * n_queries


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~= slope * x + intercept``.

    Returns ``(slope, intercept)``.  Used to verify the linear trends of
    Figs. 11(a)/11(b)/20.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(x) < 2:
        raise ConfigurationError("need at least two points to fit a line")
    design = np.stack([x, np.ones_like(x)], axis=1)
    (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    return float(slope), float(intercept)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~= c * x^p`` in log space.

    Returns ``(p, c)``.  Used to distinguish the O(sqrt(NP)) and O(NP)
    regimes of Fig. 13/18(a).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if np.any(x <= 0.0) or np.any(y <= 0.0):
        raise ConfigurationError("power-law fit requires positive data")
    p, logc = fit_linear(np.log(x), np.log(y))
    return float(p), float(math.exp(logc))


def linearity_r2(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of the best linear fit."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    slope, intercept = fit_linear(x, y)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def incremental_maintenance_cost(
    n_objects: int, delta: float, vmax: float, per_move_cost: float
) -> float:
    """Expected incremental Object-Index maintenance time (§3.2).

    ``Tindex,incr = c * NP * Pr(exit) * (NP * delta^2)`` — the number of
    movers times the average object-list length ``L ~= NP * delta^2``.
    With the optimal ``delta* = 1/sqrt(NP)``, ``L ~= 1``.
    """
    list_length = n_objects * delta * delta
    return per_move_cost * n_objects * pr_exit(delta, vmax) * max(1.0, list_length)
