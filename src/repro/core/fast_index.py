"""Vectorized CSR grid snapshot + batched multi-query k-NN answering.

This is the repository's *production* fast path, distinct from the
paper-faithful engines in :mod:`~repro.core.object_index` et al. (which
deliberately stay pure-Python so the reproduced cost model holds; see
DESIGN.md).  It keeps the paper's algorithmic skeleton — grid snapshot,
ring growth to a critical radius, critical-rectangle scan — but lays the
grid out as flat numpy arrays and answers all queries of a cycle in one
batched pass, in the spirit of Lettich et al.'s manycore k-NN engine:

* **CSR snapshot** (:class:`CSRGrid`): one ``argsort`` over flat cell IDs
  plus one ``bincount``/``cumsum`` produce ``cell_start`` offsets and
  permuted ``xs``/``ys``/``ids`` arrays, so "all objects in cells
  ``(ilo..ihi, j)``" is a single contiguous slice.  A 2-D prefix-sum of
  the cell counts makes "objects inside rectangle R" an O(1) lookup.
* **Batched answering** (:class:`FastGridEngine`): per-query critical
  radii come from vectorized ring growth over the prefix-sum (every
  active query advances one ring per pass, no per-object work); queries
  are then grouped by home cell with ``np.minimum.reduceat`` /
  ``np.maximum.reduceat`` union rectangles so queries sharing a cell
  share one gather; the exact k-NN of every query falls out of a single
  ``lexsort`` over all (query, candidate) pairs, with ties broken by
  object ID.

Exactness argument (same as the paper's Fig. 3): the ring growth stops at
the first rectangle ``R0 = R(cq, l)`` holding at least ``k`` objects, so
the distance from ``q`` to the farthest corner of ``R0`` bounds the true
k-th-NN distance; the critical rectangle covers the disc of that radius,
and the per-query union rectangle only ever *adds* candidate cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import IndexStateError, NotEnoughObjectsError
from ..grid.grid2d import resolve_grid_size
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..obs.tracing import Tracer
from .answers import AnswerList
from .monitor import BaseEngine

STAGE_NAMES = ("snapshot_csr", "radii", "gather", "select")

# The dense (padded-matrix) selection path is used whenever the padded
# matrix would stay within this many cells even if padding dominates; the
# ragged (global-lexsort) fallback handles heavily skewed candidate
# distributions where one query's block would blow up the padding.
DENSE_SELECT_LIMIT = 1 << 22


@dataclass(frozen=True)
class StageTimings:
    """Per-stage wall-clock breakdown of one fast-engine cycle (seconds).

    ``snapshot_csr`` is the maintenance stage (flat cell IDs + CSR layout
    + prefix-sum); ``radii``/``gather``/``select`` partition the
    answering stage.
    """

    snapshot_csr: float
    radii: float
    gather: float
    select: float

    @property
    def total(self) -> float:
        return self.snapshot_csr + self.radii + self.gather + self.select

    def as_dict(self) -> "dict[str, float]":
        return {name: getattr(self, name) for name in STAGE_NAMES}


class CSRGrid:
    """A grid snapshot in CSR (compressed sparse row) layout.

    Built in one vectorized pass over a ``(n, 2)`` position array:

    ``order``
        stable argsort of the flat cell IDs ``j * G + i``; doubles as the
        permuted object-ID array (``ids``).
    ``xs``, ``ys``
        positions permuted by ``order`` — objects of one cell, and of one
        row-run of cells, are contiguous.
    ``cell_start``
        ``(G*G + 1,)`` offsets; cell ``(i, j)`` owns the slice
        ``[cell_start[j*G+i], cell_start[j*G+i+1])``.
    ``prefix``
        ``(G+1, G+1)`` summed-area table of cell counts for O(1)
        rectangle population counts.
    """

    __slots__ = ("ncells", "delta", "n_objects", "xs", "ys", "ids", "cell_start", "prefix")

    def __init__(self, positions: np.ndarray, ncells: int) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        n = int(ncells)
        self.ncells = n
        self.delta = 1.0 / n
        self.n_objects = len(positions)
        x = np.ascontiguousarray(positions[:, 0])
        y = np.ascontiguousarray(positions[:, 1])
        ii = np.clip((x * n).astype(np.intp), 0, n - 1)
        jj = np.clip((y * n).astype(np.intp), 0, n - 1)
        flat = jj * n + ii
        # Introsort beats the stable radix sort ~5x on these keys; the
        # within-cell object order is irrelevant (ties are broken by ID at
        # selection time), so stability is not needed.
        order = np.argsort(flat)
        self.ids = order
        self.xs = x[order]
        self.ys = y[order]
        counts = np.bincount(flat, minlength=n * n)
        cell_start = np.zeros(n * n + 1, dtype=np.intp)
        np.cumsum(counts, out=cell_start[1:])
        self.cell_start = cell_start
        prefix = np.zeros((n + 1, n + 1), dtype=np.int64)
        np.cumsum(np.cumsum(counts.reshape(n, n), axis=0), axis=1, out=prefix[1:, 1:])
        self.prefix = prefix

    def count_in_rects(
        self, ilo: np.ndarray, jlo: np.ndarray, ihi: np.ndarray, jhi: np.ndarray
    ) -> np.ndarray:
        """Objects inside each inclusive cell rectangle (vectorized)."""
        p = self.prefix
        return (
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )


class FastGridEngine(BaseEngine):
    """Batched CSR-grid monitoring engine (production fast path).

    Same :class:`~repro.core.monitor.BaseEngine` contract as the
    paper-faithful engines, exact answers with ties broken by object ID.
    Stage timings of every cycle are appended to :attr:`stage_history`.
    """

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        self.name = "fast-grid"
        self._ncells = ncells
        self._delta = delta
        self.csr: Optional[CSRGrid] = None
        self.stage_history: List[StageTimings] = []
        self._snapshot_time = 0.0
        # stage_history must be populated whether or not the monitoring
        # system is instrumented, so stages are always timed by a real
        # Tracer; by default it records into the no-op registry.
        self._stage_tracer = Tracer(NULL_REGISTRY)

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if isinstance(tracer, Tracer):
            # Share the system tracer: stage spans then both feed the
            # registry (nested under maintain/answer) and fill
            # stage_history via their measured durations.
            self._stage_tracer = tracer

    # ------------------------------------------------------------------
    # Maintenance: rebuild the CSR snapshot every cycle
    # ------------------------------------------------------------------
    def _resolve_ncells(self, n_objects: int) -> int:
        if self._ncells is None and self._delta is None:
            return resolve_grid_size(n_objects=max(1, n_objects))
        return resolve_grid_size(self._ncells, self._delta, None)

    def load(self, positions: np.ndarray) -> None:
        self.stage_history = []
        self.maintain(positions)

    def maintain(self, positions: np.ndarray) -> None:
        with self._stage_tracer.span("csr_snapshot") as span:
            positions = np.asarray(positions, dtype=np.float64)
            self.csr = CSRGrid(positions, self._resolve_ncells(len(positions)))
            self._positions = positions
        self._snapshot_time = span.duration

    # ------------------------------------------------------------------
    # Answering: radii -> gather -> select, all queries at once
    # ------------------------------------------------------------------
    def answer(self) -> List[AnswerList]:
        if self.csr is None:
            raise IndexStateError("load() must run before answer()")
        csr = self.csr
        k = self.k
        if k > csr.n_objects:
            raise NotEnoughObjectsError(k, csr.n_objects)
        nq = self.n_queries
        if nq == 0:
            self.stage_history.append(
                StageTimings(self._snapshot_time, 0.0, 0.0, 0.0)
            )
            return []
        tracer = self._stage_tracer

        # ---- stage: radii -------------------------------------------------
        with tracer.span("radii") as span_radii:
            n = csr.ncells
            delta = csr.delta
            qx = np.ascontiguousarray(self.queries[:, 0])
            qy = np.ascontiguousarray(self.queries[:, 1])
            qi = np.clip((qx * n).astype(np.intp), 0, n - 1)
            qj = np.clip((qy * n).astype(np.intp), 0, n - 1)

            # Vectorized ring growth: every query still short of k objects
            # grows its rectangle R(cq, l) by one ring per pass; the
            # prefix-sum makes each pass O(NQ) with no per-object work.
            level = np.zeros(nq, dtype=np.intp)
            counts = csr.count_in_rects(qi, qj, qi, qj)
            active = counts < k
            l = 0
            while active.any():
                l += 1
                if l > n:  # pragma: no cover - k <= n_objects makes this unreachable
                    raise NotEnoughObjectsError(k, csr.n_objects)
                ai, aj = qi[active], qj[active]
                acounts = csr.count_in_rects(
                    np.maximum(ai - l, 0),
                    np.maximum(aj - l, 0),
                    np.minimum(ai + l, n - 1),
                    np.minimum(aj + l, n - 1),
                )
                done = acounts >= k
                idx = np.nonzero(active)[0]
                level[idx[done]] = l
                active[idx[done]] = False

            # lcrit: distance from q to the farthest corner of the clamped R0.
            # R0 holds >= k objects, so the disc (q, lcrit) covers the true k-NN.
            r0_xlo = np.maximum(qi - level, 0) * delta
            r0_ylo = np.maximum(qj - level, 0) * delta
            r0_xhi = (np.minimum(qi + level, n - 1) + 1) * delta
            r0_yhi = (np.minimum(qj + level, n - 1) + 1) * delta
            far_dx = np.maximum(qx - r0_xlo, r0_xhi - qx)
            far_dy = np.maximum(qy - r0_ylo, r0_yhi - qy)
            lcrit = np.hypot(far_dx, far_dy)

            # Critical rectangle: cells intersecting the bounding box of the disc.
            ilo = np.clip(np.floor((qx - lcrit) * n).astype(np.intp), 0, n - 1)
            jlo = np.clip(np.floor((qy - lcrit) * n).astype(np.intp), 0, n - 1)
            ihi = np.clip(np.floor((qx + lcrit) * n).astype(np.intp), 0, n - 1)
            jhi = np.clip(np.floor((qy + lcrit) * n).astype(np.intp), 0, n - 1)

        # ---- stage: gather ------------------------------------------------
        with tracer.span("gather") as span_gather:
            # Group queries by home cell; the group's union rectangle is shared
            # by every member, so co-located queries share one gather.
            qflat = qj * n + qi
            qorder = np.argsort(qflat, kind="stable")
            sorted_flat = qflat[qorder]
            group_start = np.concatenate(
                ([0], np.nonzero(np.diff(sorted_flat))[0] + 1)
            )
            g_ilo = np.minimum.reduceat(ilo[qorder], group_start)
            g_jlo = np.minimum.reduceat(jlo[qorder], group_start)
            g_ihi = np.maximum.reduceat(ihi[qorder], group_start)
            g_jhi = np.maximum.reduceat(jhi[qorder], group_start)
            group_sizes = np.diff(np.concatenate((group_start, [nq])))
            ngroups = len(group_start)

            # Expand each group rectangle into row segments: row j of the rect
            # is one contiguous CSR slice (cells (ilo..ihi, j) have consecutive
            # flat IDs).
            rows_per_group = g_jhi - g_jlo + 1
            seg_group = np.repeat(np.arange(ngroups), rows_per_group)
            row_cum = np.concatenate(([0], np.cumsum(rows_per_group)))
            seg_j = g_jlo[seg_group] + (np.arange(row_cum[-1]) - row_cum[seg_group])
            seg_lo = csr.cell_start[seg_j * n + g_ilo[seg_group]]
            seg_hi = csr.cell_start[seg_j * n + g_ihi[seg_group] + 1]
            seg_len = seg_hi - seg_lo

            # Flatten the segments into per-group candidate blocks of CSR
            # indices (block = all objects inside the group's rectangle).
            ncand = int(seg_len.sum())
            seg_cum = np.concatenate(([0], np.cumsum(seg_len)))
            block_idx = (
                np.repeat(seg_lo - seg_cum[:-1], seg_len) + np.arange(ncand)
            )
            cand_per_group = np.bincount(
                seg_group, weights=seg_len, minlength=ngroups
            ).astype(np.intp)
            group_cand_start = np.concatenate(
                ([0], np.cumsum(cand_per_group))
            )

            # Expand to (query, candidate) pairs: every query of a group pairs
            # with the group's whole block.
            pairs_per_query = cand_per_group[np.repeat(np.arange(ngroups), group_sizes)]
            npairs = int(pairs_per_query.sum())
            pair_cum = np.concatenate(([0], np.cumsum(pairs_per_query)))
            pair_block_start = np.repeat(
                group_cand_start[:-1], group_sizes * cand_per_group
            )
            pair_local = np.arange(npairs) - np.repeat(pair_cum[:-1], pairs_per_query)
            pair_cand = block_idx[pair_block_start + pair_local]
            # Query of each pair, in sorted-query positions (0..nq-1).
            pair_qpos = np.repeat(np.arange(nq), pairs_per_query)

            sqx = qx[qorder]
            sqy = qy[qorder]
            dx = csr.xs[pair_cand] - sqx[pair_qpos]
            dy = csr.ys[pair_cand] - sqy[pair_qpos]
            pair_d2 = dx * dx + dy * dy
            pair_ids = csr.ids[pair_cand]

        # ---- stage: select ------------------------------------------------
        with tracer.span("select") as span_select:
            maxc = int(pairs_per_query.max())
            dense = maxc * nq <= max(4 * npairs, DENSE_SELECT_LIMIT)
            if dense:
                # Dense path: scatter the ragged pairs into an (nq, maxc)
                # matrix padded with inf and rank each row by (distance, ID)
                # with one two-key lexsort — exact k-NN with deterministic
                # ID tie-breaking, no per-query Python work.
                dmat = np.full((nq, maxc), np.inf)
                imat = np.zeros((nq, maxc), dtype=np.intp)
                within = np.arange(npairs) - np.repeat(
                    pair_cum[:-1], pairs_per_query
                )
                dmat[pair_qpos, within] = pair_d2
                imat[pair_qpos, within] = pair_ids
                row_order = np.lexsort((imat, dmat), axis=1)[:, :k]
                top_d2 = np.take_along_axis(dmat, row_order, axis=1)
                top_ids = np.take_along_axis(imat, row_order, axis=1)
            else:
                # Ragged fallback (heavily skewed data can give a few queries
                # huge candidate blocks): one global lexsort by (query,
                # distance, ID); the first k pairs of each query's contiguous
                # run are its exact k-NN.
                order = np.lexsort((pair_ids, pair_d2, pair_qpos))
                top = order[pair_cum[:-1, None] + np.arange(k)[None, :]]
                top_d2 = pair_d2[top]
                top_ids = pair_ids[top]

            answers: List[AnswerList] = [None] * nq  # type: ignore[list-item]
            d_rows = top_d2.tolist()
            i_rows = top_ids.tolist()
            for pos, query_id in enumerate(qorder.tolist()):
                answer = AnswerList(k)
                answer._entries = list(zip(d_rows[pos], i_rows[pos]))
                answers[query_id] = answer

        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("fast.answer.queries", nq)
            metrics.inc("fast.answer.ring_passes", l)
            metrics.inc("fast.answer.groups", ngroups)
            metrics.inc("fast.answer.candidates", ncand)
            metrics.inc("fast.answer.pairs", npairs)
            metrics.inc(
                "fast.answer.dense_selects" if dense else "fast.answer.ragged_selects"
            )
        self.stage_history.append(
            StageTimings(
                self._snapshot_time,
                span_radii.duration,
                span_gather.duration,
                span_select.duration,
            )
        )
        return answers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_stages(self) -> StageTimings:
        if not self.stage_history:
            raise IndexStateError("no cycle has run yet")
        return self.stage_history[-1]

    def mean_stage_times(self, skip_first: bool = True) -> "dict[str, float]":
        """Mean seconds per stage, by default excluding the initial build."""
        history = (
            self.stage_history[1:]
            if skip_first and len(self.stage_history) > 1
            else self.stage_history
        )
        if not history:
            raise IndexStateError("no cycle has run yet")
        return {
            name: sum(getattr(s, name) for s in history) / len(history)
            for name in STAGE_NAMES
        }
