"""Vectorized CSR grid snapshot + batched multi-query k-NN answering.

This is the repository's *production* fast path, distinct from the
paper-faithful engines in :mod:`~repro.core.object_index` et al. (which
deliberately stay pure-Python so the reproduced cost model holds; see
DESIGN.md).  It keeps the paper's algorithmic skeleton — grid snapshot,
ring growth to a critical radius, critical-rectangle scan — but lays the
grid out as flat numpy arrays and answers all queries of a cycle in one
batched pass, in the spirit of Lettich et al.'s manycore k-NN engine:

* **CSR snapshot** (:class:`CSRGrid`): one ``argsort`` over flat cell IDs
  plus one ``bincount``/``cumsum`` produce ``cell_start`` offsets and
  permuted ``xs``/``ys``/``ids`` arrays, so "all objects in cells
  ``(ilo..ihi, j)``" is a single contiguous slice.  A 2-D prefix-sum of
  the cell counts makes "objects inside rectangle R" an O(1) lookup.
* **Batched answering** (:func:`batch_knn`): per-query critical radii
  come from vectorized ring growth over the prefix-sum (every active
  query advances one ring per pass, no per-object work); queries are
  then grouped by home cell with ``np.minimum.reduceat`` /
  ``np.maximum.reduceat`` union rectangles so queries sharing a cell
  share one gather; the exact k-NN of every query falls out of a single
  ``lexsort`` over all (query, candidate) pairs, with ties broken by
  object ID.

Both pieces are *region-aware*: a :class:`CSRGrid` may cover any axis-
aligned rectangle ``region = (x0, y0, x1, y1)`` with an ``nx x ny`` cell
layout and carry caller-supplied global object IDs.  That makes the pair
a reusable per-region snapshot/answer kernel — the sharded engine
(:mod:`repro.shard`) builds one CSRGrid per spatial stripe and merges the
per-shard ``batch_knn`` results, while :class:`FastGridEngine` keeps
using the whole unit square as a single region.

Exactness argument (same as the paper's Fig. 3): the ring growth stops at
the first rectangle ``R0 = R(cq, l)`` holding at least ``k`` objects, so
the distance from ``q`` to the farthest corner of ``R0`` bounds the true
k-th-NN distance; the critical rectangle covers the disc of that radius,
and the per-query union rectangle only ever *adds* candidate cells.
Queries may lie outside the grid's region: the home cell clamps to the
nearest edge cell, which only enlarges ``R0`` (and so the candidate set),
never shrinks it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..grid.grid2d import resolve_grid_size
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..obs.tracing import NULL_TRACER, Tracer

from ..engines.base import BaseEngine, _as_queries
from .answers import AnswerList

STAGE_NAMES = ("snapshot_csr", "radii", "gather", "select")

# The dense (padded-matrix) selection path is used whenever the padded
# matrix would stay within this many cells even if padding dominates; the
# ragged (global-lexsort) fallback handles heavily skewed candidate
# distributions where one query's block would blow up the padding.
DENSE_SELECT_LIMIT = 1 << 22


@dataclass(frozen=True)
class StageTimings:
    """Per-stage wall-clock breakdown of one fast-engine cycle (seconds).

    ``snapshot_csr`` is the maintenance stage (flat cell IDs + CSR layout
    + prefix-sum); ``radii``/``gather``/``select`` partition the
    answering stage.
    """

    snapshot_csr: float
    radii: float
    gather: float
    select: float

    @property
    def total(self) -> float:
        return self.snapshot_csr + self.radii + self.gather + self.select

    def as_dict(self) -> "dict[str, float]":
        return {name: getattr(self, name) for name in STAGE_NAMES}


class CSRGrid:
    """A grid snapshot of one rectangular region in CSR layout.

    Built in one vectorized pass over a ``(n, 2)`` position array:

    ``order``
        stable argsort of the flat cell IDs ``j * nx + i``; combined with
        ``object_ids`` it yields the permuted global-ID array (``ids``).
    ``xs``, ``ys``
        positions permuted by ``order`` — objects of one cell, and of one
        row-run of cells, are contiguous.
    ``cell_start``
        ``(nx*ny + 1,)`` offsets; cell ``(i, j)`` owns the slice
        ``[cell_start[j*nx+i], cell_start[j*nx+i+1])``.
    ``prefix``
        ``(ny+1, nx+1)`` summed-area table of cell counts for O(1)
        rectangle population counts.

    ``region = (x0, y0, x1, y1)`` defaults to the unit square and
    ``ncells`` keeps the legacy square layout (``nx = ny = ncells``);
    shards pass their stripe bounds plus an ``nx x ny`` layout sized for
    the stripe's population.  ``object_ids`` maps local row indices to
    global IDs so downstream tie-breaking stays global.
    """

    __slots__ = (
        "nx", "ny", "ncells", "region", "dx", "dy", "delta",
        "n_objects", "xs", "ys", "ids", "cell_start", "prefix", "_inv",
    )

    def __init__(
        self,
        positions: np.ndarray,
        ncells: Optional[int] = None,
        *,
        region: Tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        nx: Optional[int] = None,
        ny: Optional[int] = None,
        object_ids: Optional[np.ndarray] = None,
    ) -> None:
        if ncells is not None:
            nx = ny = int(ncells)
        if nx is None or ny is None:
            raise ConfigurationError("specify either ncells= or both nx= and ny=")
        nx, ny = int(nx), int(ny)
        if nx < 1 or ny < 1:
            raise ConfigurationError(f"grid must have >= 1 cell per side, got {nx}x{ny}")
        x0, y0, x1, y1 = (float(v) for v in region)
        if not (x1 > x0 and y1 > y0):
            raise ConfigurationError(f"degenerate region {region!r}")
        positions = np.asarray(positions, dtype=np.float64)
        self.nx = nx
        self.ny = ny
        self.ncells = nx  # legacy alias; square unit-grids keep nx == ny
        self.region = (x0, y0, x1, y1)
        self.dx = (x1 - x0) / nx
        self.dy = (y1 - y0) / ny
        self.delta = self.dx  # legacy alias
        self.n_objects = len(positions)
        x = np.ascontiguousarray(positions[:, 0])
        y = np.ascontiguousarray(positions[:, 1])
        ii = np.clip(((x - x0) * (nx / (x1 - x0))).astype(np.intp), 0, nx - 1)
        jj = np.clip(((y - y0) * (ny / (y1 - y0))).astype(np.intp), 0, ny - 1)
        flat = jj * nx + ii
        # Introsort beats the stable radix sort ~5x on these keys; the
        # within-cell object order is irrelevant (ties are broken by ID at
        # selection time), so stability is not needed.
        order = np.argsort(flat)
        self.ids = order if object_ids is None else np.asarray(object_ids)[order]
        self.xs = x[order]
        self.ys = y[order]
        counts = np.bincount(flat, minlength=nx * ny)
        cell_start = np.zeros(nx * ny + 1, dtype=np.intp)
        np.cumsum(counts, out=cell_start[1:])
        self.cell_start = cell_start
        prefix = np.zeros((ny + 1, nx + 1), dtype=np.int64)
        np.cumsum(np.cumsum(counts.reshape(ny, nx), axis=0), axis=1, out=prefix[1:, 1:])
        self.prefix = prefix
        self._inv: Optional[np.ndarray] = None  # lazy id -> row permutation

    def count_in_rects(
        self, ilo: np.ndarray, jlo: np.ndarray, ihi: np.ndarray, jhi: np.ndarray
    ) -> np.ndarray:
        """Objects inside each inclusive cell rectangle (vectorized)."""
        p = self.prefix
        return (
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )

    def pair_candidates(
        self, cand: np.ndarray, px: np.ndarray, py: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, d2)`` of candidate CSR slots against per-pair query coords.

        The one snapshot-layout-specific step of :func:`batch_knn`: a
        :class:`CSRGrid` reads its permuted coordinate copies, while the
        delta grid (:mod:`repro.core.delta_index`) resolves coordinates
        lazily through its slot->object indirection and masks slack gaps.
        """
        pdx = self.xs[cand] - px
        pdy = self.ys[cand] - py
        return self.ids[cand], pdx * pdx + pdy * pdy

    # ------------------------------------------------------------------
    # SnapshotIndex protocol (repro.engines.snapshot) — scalar accessors
    # used by the index-agnostic workload operators.  The batched fast
    # path above never calls these.
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> Tuple[int, int]:
        """Cell ``(i, j)`` of a point (clamped to the grid)."""
        x0, y0, x1, y1 = self.region
        i = min(max(int((x - x0) * (self.nx / (x1 - x0))), 0), self.nx - 1)
        j = min(max(int((y - y0) * (self.ny / (y1 - y0))), 0), self.ny - 1)
        return i, j

    def count_in_cells(self, ilo: int, jlo: int, ihi: int, jhi: int) -> int:
        """Number of objects inside the inclusive cell rectangle."""
        p = self.prefix
        return int(
            p[jhi + 1, ihi + 1] - p[jlo, ihi + 1] - p[jhi + 1, ilo] + p[jlo, ilo]
        )

    def gather_cells(
        self, ilo: int, jlo: int, ihi: int, jhi: int
    ) -> Tuple[List[int], List[float], List[float]]:
        """``(ids, xs, ys)`` of every object inside the cell rectangle.

        One contiguous CSR slice per grid row; returns plain Python lists
        so answers are bit-identical to the ObjectIndex backend.
        """
        starts = self.cell_start
        nx = self.nx
        out_ids: List[int] = []
        out_xs: List[float] = []
        out_ys: List[float] = []
        for j in range(jlo, jhi + 1):
            base = j * nx
            lo = int(starts[base + ilo])
            hi = int(starts[base + ihi + 1])
            if lo == hi:
                continue
            out_ids.extend(self.ids[lo:hi].tolist())
            out_xs.extend(self.xs[lo:hi].tolist())
            out_ys.extend(self.ys[lo:hi].tolist())
        return out_ids, out_xs, out_ys

    def position_of(self, object_id: int) -> Tuple[float, float]:
        """Snapshot position of one object (by global ID)."""
        if self._inv is None:
            inv = np.empty(self.n_objects, dtype=np.intp)
            inv[self.ids] = np.arange(self.n_objects, dtype=np.intp)
            self._inv = inv
        row = int(self._inv[object_id])
        return float(self.xs[row]), float(self.ys[row])


@dataclass
class BatchKNNResult:
    """Raw output of one :func:`batch_knn` pass over one region.

    ``top_d2``/``top_ids`` are ``(nq, k)`` arrays in the *caller's* query
    order; when the region holds fewer than ``k`` objects the tail
    columns are padded with ``inf`` / ``-1``.  ``rects`` is the ``(nq, 4)``
    array of per-query critical rectangles ``(ilo, jlo, ihi, jhi)`` in
    clamped cell coordinates — the delta engine intersects them with the
    next cycle's dirty-cell set to decide answer reuse.  ``timings`` maps
    the answering stages (``radii``/``gather``/``select``) to seconds and
    ``stats`` carries the algorithmic counters of the pass.
    """

    top_d2: np.ndarray
    top_ids: np.ndarray
    timings: Dict[str, float]
    stats: Dict[str, int]
    rects: Optional[np.ndarray] = None


def _empty_result(nq: int, k: int) -> BatchKNNResult:
    return BatchKNNResult(
        np.full((nq, k), np.inf),
        np.full((nq, k), -1, dtype=np.intp),
        {"radii": 0.0, "gather": 0.0, "select": 0.0},
        {"ring_passes": 0, "groups": 0, "candidates": 0, "pairs": 0, "dense": 0},
        np.zeros((nq, 4), dtype=np.intp),
    )


def batch_knn(
    csr: CSRGrid,
    qx: np.ndarray,
    qy: np.ndarray,
    k: int,
    tracer: Tracer = None,
    seed_level: Optional[np.ndarray] = None,
) -> BatchKNNResult:
    """Exact batched k-NN of every query against one CSR region snapshot.

    The reusable per-region answering kernel: radii -> gather -> select,
    all queries at once, ties broken by (distance, global object ID).
    ``k`` may exceed the region population — the kernel then returns the
    ``min(k, n_objects)`` nearest and pads the remaining columns with
    ``inf`` distances and ``-1`` IDs (the sharded merge relies on this).
    Queries may lie outside the region; their home cell clamps to the
    nearest edge cell, which preserves exactness (see module docstring).

    ``seed_level`` optionally starts each query's ring growth at a given
    level instead of 0 (the delta engine seeds it from the previous
    cycle's k-th distance).  Any seed is exact: growth still stops only
    at a rectangle holding >= k objects, and a too-large seed merely
    enlarges the candidate superset the exact selection then reduces.
    """
    if tracer is None:
        tracer = Tracer(NULL_REGISTRY)
    qx = np.ascontiguousarray(qx, dtype=np.float64)
    qy = np.ascontiguousarray(qy, dtype=np.float64)
    nq = len(qx)
    k = int(k)
    k_eff = min(k, csr.n_objects)
    if nq == 0 or k_eff == 0:
        return _empty_result(nq, k)

    nx, ny = csr.nx, csr.ny
    x0, y0, x1, y1 = csr.region
    dx, dy = csr.dx, csr.dy

    # ---- stage: radii -------------------------------------------------
    with tracer.span("radii") as span_radii:
        qi = np.clip(((qx - x0) * (nx / (x1 - x0))).astype(np.intp), 0, nx - 1)
        qj = np.clip(((qy - y0) * (ny / (y1 - y0))).astype(np.intp), 0, ny - 1)

        # Vectorized ring growth: every query still short of k objects
        # grows its rectangle R(cq, l) by one ring per pass; the
        # prefix-sum makes each pass O(NQ) with no per-object work.
        if seed_level is None:
            level = np.zeros(nq, dtype=np.intp)
        else:
            level = np.clip(
                np.asarray(seed_level, dtype=np.intp), 0, max(nx, ny)
            )
        counts = csr.count_in_rects(
            np.maximum(qi - level, 0),
            np.maximum(qj - level, 0),
            np.minimum(qi + level, nx - 1),
            np.minimum(qj + level, ny - 1),
        )
        active = counts < k_eff
        l = 0
        while active.any():
            l += 1
            if l > max(nx, ny):  # pragma: no cover - k_eff <= n_objects makes this unreachable
                raise NotEnoughObjectsError(k, csr.n_objects)
            level[active] += 1
            ai, aj, al = qi[active], qj[active], level[active]
            acounts = csr.count_in_rects(
                np.maximum(ai - al, 0),
                np.maximum(aj - al, 0),
                np.minimum(ai + al, nx - 1),
                np.minimum(aj + al, ny - 1),
            )
            done = acounts >= k_eff
            idx = np.nonzero(active)[0]
            active[idx[done]] = False

        # lcrit: distance from q to the farthest corner of the clamped R0.
        # R0 holds >= k objects, so the disc (q, lcrit) covers the true k-NN.
        r0_xlo = x0 + np.maximum(qi - level, 0) * dx
        r0_ylo = y0 + np.maximum(qj - level, 0) * dy
        r0_xhi = x0 + (np.minimum(qi + level, nx - 1) + 1) * dx
        r0_yhi = y0 + (np.minimum(qj + level, ny - 1) + 1) * dy
        far_dx = np.maximum(qx - r0_xlo, r0_xhi - qx)
        far_dy = np.maximum(qy - r0_ylo, r0_yhi - qy)
        lcrit = np.hypot(far_dx, far_dy)

        # Critical rectangle: cells intersecting the bounding box of the disc.
        ilo = np.clip(np.floor((qx - lcrit - x0) / dx).astype(np.intp), 0, nx - 1)
        jlo = np.clip(np.floor((qy - lcrit - y0) / dy).astype(np.intp), 0, ny - 1)
        ihi = np.clip(np.floor((qx + lcrit - x0) / dx).astype(np.intp), 0, nx - 1)
        jhi = np.clip(np.floor((qy + lcrit - y0) / dy).astype(np.intp), 0, ny - 1)

    # ---- stage: gather ------------------------------------------------
    with tracer.span("gather") as span_gather:
        # Group queries by home cell; the group's union rectangle is shared
        # by every member, so co-located queries share one gather.
        qflat = qj * nx + qi
        qorder = np.argsort(qflat, kind="stable")
        sorted_flat = qflat[qorder]
        group_start = np.concatenate(
            ([0], np.nonzero(np.diff(sorted_flat))[0] + 1)
        )
        g_ilo = np.minimum.reduceat(ilo[qorder], group_start)
        g_jlo = np.minimum.reduceat(jlo[qorder], group_start)
        g_ihi = np.maximum.reduceat(ihi[qorder], group_start)
        g_jhi = np.maximum.reduceat(jhi[qorder], group_start)
        group_sizes = np.diff(np.concatenate((group_start, [nq])))
        ngroups = len(group_start)

        # Expand each group rectangle into row segments: row j of the rect
        # is one contiguous CSR slice (cells (ilo..ihi, j) have consecutive
        # flat IDs).
        rows_per_group = g_jhi - g_jlo + 1
        seg_group = np.repeat(np.arange(ngroups), rows_per_group)
        row_cum = np.concatenate(([0], np.cumsum(rows_per_group)))
        seg_j = g_jlo[seg_group] + (np.arange(row_cum[-1]) - row_cum[seg_group])
        seg_lo = csr.cell_start[seg_j * nx + g_ilo[seg_group]]
        seg_hi = csr.cell_start[seg_j * nx + g_ihi[seg_group] + 1]
        seg_len = seg_hi - seg_lo

        # Flatten the segments into per-group candidate blocks of CSR
        # indices (block = all objects inside the group's rectangle).
        ncand = int(seg_len.sum())
        seg_cum = np.concatenate(([0], np.cumsum(seg_len)))
        block_idx = (
            np.repeat(seg_lo - seg_cum[:-1], seg_len) + np.arange(ncand)
        )
        cand_per_group = np.bincount(
            seg_group, weights=seg_len, minlength=ngroups
        ).astype(np.intp)
        group_cand_start = np.concatenate(
            ([0], np.cumsum(cand_per_group))
        )

        # Expand to (query, candidate) pairs: every query of a group pairs
        # with the group's whole block.
        pairs_per_query = cand_per_group[np.repeat(np.arange(ngroups), group_sizes)]
        npairs = int(pairs_per_query.sum())
        pair_cum = np.concatenate(([0], np.cumsum(pairs_per_query)))
        pair_block_start = np.repeat(
            group_cand_start[:-1], group_sizes * cand_per_group
        )
        pair_local = np.arange(npairs) - np.repeat(pair_cum[:-1], pairs_per_query)
        pair_cand = block_idx[pair_block_start + pair_local]
        # Query of each pair, in sorted-query positions (0..nq-1).
        pair_qpos = np.repeat(np.arange(nq), pairs_per_query)

        sqx = qx[qorder]
        sqy = qy[qorder]
        pair_ids, pair_d2 = csr.pair_candidates(
            pair_cand, sqx[pair_qpos], sqy[pair_qpos]
        )

    # ---- stage: select ------------------------------------------------
    with tracer.span("select") as span_select:
        maxc = int(pairs_per_query.max())
        dense = maxc * nq <= max(4 * npairs, DENSE_SELECT_LIMIT)
        if dense:
            # Dense path: scatter the ragged pairs into an (nq, maxc)
            # matrix padded with inf and rank each row by (distance, ID)
            # with one two-key lexsort — exact k-NN with deterministic
            # ID tie-breaking, no per-query Python work.
            dmat = np.full((nq, maxc), np.inf)
            imat = np.zeros((nq, maxc), dtype=np.intp)
            within = np.arange(npairs) - np.repeat(
                pair_cum[:-1], pairs_per_query
            )
            dmat[pair_qpos, within] = pair_d2
            imat[pair_qpos, within] = pair_ids
            row_order = np.lexsort((imat, dmat), axis=1)[:, :k_eff]
            sel_d2 = np.take_along_axis(dmat, row_order, axis=1)
            sel_ids = np.take_along_axis(imat, row_order, axis=1)
        else:
            # Ragged fallback (heavily skewed data can give a few queries
            # huge candidate blocks): one global lexsort by (query,
            # distance, ID); the first k pairs of each query's contiguous
            # run are its exact k-NN.
            order = np.lexsort((pair_ids, pair_d2, pair_qpos))
            top = order[pair_cum[:-1, None] + np.arange(k_eff)[None, :]]
            sel_d2 = pair_d2[top]
            sel_ids = pair_ids[top]

        # Scatter back to the caller's query order, padding the k_eff..k
        # tail (region population below k) with inf / -1 sentinels.
        top_d2 = np.full((nq, k), np.inf)
        top_ids = np.full((nq, k), -1, dtype=sel_ids.dtype)
        top_d2[qorder, :k_eff] = sel_d2
        top_ids[qorder, :k_eff] = sel_ids

    return BatchKNNResult(
        top_d2,
        top_ids,
        {
            "radii": span_radii.duration,
            "gather": span_gather.duration,
            "select": span_select.duration,
        },
        {
            "ring_passes": l,
            "groups": ngroups,
            "candidates": ncand,
            "pairs": npairs,
            "dense": int(dense),
        },
        np.column_stack((ilo, jlo, ihi, jhi)),
    )


class FastGridEngine(BaseEngine):
    """Batched CSR-grid monitoring engine (production fast path).

    Same :class:`~repro.core.monitor.BaseEngine` contract as the
    paper-faithful engines, exact answers with ties broken by object ID.
    Stage timings of every cycle are appended to :attr:`stage_history`.

    Churn support: the engine rebuilds its CSR snapshot every cycle and
    keeps no cross-cycle per-query state, so query deltas are a plain
    array swap and object deltas only record the live subset — in member
    mode the snapshot is built over ``positions[member_idx]`` with the
    member rows as global object IDs, so reported neighbor IDs stay
    row-stable across joins and leaves.
    """

    supports_member_idx = True

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        self.name = "fast-grid"
        self._ncells = ncells
        self._delta = delta
        self._member_idx: Optional[np.ndarray] = None
        self.csr: Optional[CSRGrid] = None
        self.stage_history: List[StageTimings] = []
        self._snapshot_time = 0.0
        # stage_history must be populated whether or not the monitoring
        # system is instrumented, so stages are always timed by a real
        # Tracer; by default it records into the no-op registry.
        self._stage_tracer = Tracer(NULL_REGISTRY)

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if isinstance(tracer, Tracer):
            # Share the system tracer: stage spans then both feed the
            # registry (nested under maintain/answer) and fill
            # stage_history via their measured durations.
            self._stage_tracer = tracer

    # ------------------------------------------------------------------
    # Maintenance: rebuild the CSR snapshot every cycle
    # ------------------------------------------------------------------
    def _resolve_ncells(self, n_objects: int) -> int:
        if self._ncells is None and self._delta is None:
            return resolve_grid_size(n_objects=max(1, n_objects))
        return resolve_grid_size(self._ncells, self._delta, None)

    def apply_query_delta(self, delta) -> None:
        # No cross-cycle per-query state: admitting a query churn batch
        # is just the swap, no rebuild needed.
        self.queries = _as_queries(delta.queries)

    def apply_object_delta(self, delta) -> None:
        # The snapshot is rebuilt from scratch each maintain() anyway;
        # membership churn only updates which rows that rebuild indexes.
        self._member_idx = delta.member_idx

    def load(self, positions: np.ndarray) -> None:
        self.stage_history = []
        self.maintain(positions)

    def maintain(self, positions: np.ndarray) -> None:
        with self._stage_tracer.span("csr_snapshot") as span:
            positions = np.asarray(positions, dtype=np.float64)
            member = self._member_idx
            if member is None:
                self.csr = CSRGrid(
                    positions, self._resolve_ncells(len(positions))
                )
            else:
                self.csr = CSRGrid(
                    positions[member],
                    self._resolve_ncells(len(member)),
                    object_ids=member,
                )
            self._positions = positions
        self._snapshot_time = span.duration

    # ------------------------------------------------------------------
    # Answering: one batch_knn pass over the whole unit square
    # ------------------------------------------------------------------
    def answer(self) -> List[AnswerList]:
        if self.csr is None:
            raise IndexStateError("load() must run before answer()")
        csr = self.csr
        k = self.k
        if k > csr.n_objects:
            raise NotEnoughObjectsError(k, csr.n_objects)
        nq = self.n_queries
        if nq == 0:
            self.stage_history.append(
                StageTimings(self._snapshot_time, 0.0, 0.0, 0.0)
            )
            return []

        result = batch_knn(
            csr, self.queries[:, 0], self.queries[:, 1], k, self._stage_tracer
        )

        answers: List[AnswerList] = []
        d_rows = result.top_d2.tolist()
        i_rows = result.top_ids.tolist()
        for query_id in range(nq):
            answer = AnswerList(k)
            answer._entries = list(zip(d_rows[query_id], i_rows[query_id]))
            answers.append(answer)

        metrics = self.metrics
        if metrics.enabled:
            stats = result.stats
            metrics.inc("fast.answer.queries", nq)
            metrics.inc("fast.answer.ring_passes", stats["ring_passes"])
            metrics.inc("fast.answer.groups", stats["groups"])
            metrics.inc("fast.answer.candidates", stats["candidates"])
            metrics.inc("fast.answer.pairs", stats["pairs"])
            metrics.inc(
                "fast.answer.dense_selects"
                if stats["dense"]
                else "fast.answer.ragged_selects"
            )
        timings = result.timings
        self.stage_history.append(
            StageTimings(
                self._snapshot_time,
                timings["radii"],
                timings["gather"],
                timings["select"],
            )
        )
        return answers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_stages(self) -> StageTimings:
        if not self.stage_history:
            raise IndexStateError("no cycle has run yet")
        return self.stage_history[-1]

    def mean_stage_times(self, skip_first: bool = True) -> "dict[str, float]":
        """Mean seconds per stage, by default excluding the initial build."""
        history = (
            self.stage_history[1:]
            if skip_first and len(self.stage_history) > 1
            else self.stage_history
        )
        if not history:
            raise IndexStateError("no cycle has run yet")
        return {
            name: sum(getattr(s, name) for s in history) / len(history)
            for name in STAGE_NAMES
        }
