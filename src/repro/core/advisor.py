"""Method advisor: the paper's analysis turned into a recommendation API.

The paper derives when each method wins (§3.2's overhaul/incremental
crossover, §3.3's Query-vs-Object-Indexing trade-off, §4's hierarchical
robustness to skew).  :func:`recommend` encodes those rules so a
deployment can pick a configuration from its workload parameters, with
the reasoning spelled out.  The decision thresholds are physical where
the paper gives physics (``Pr(exit)``), and tunable constants where the
paper's answer is "depends on machine constants" (the QI/OI crossover;
see EXPERIMENTS.md Fig. 15).

:func:`calibrate` optionally fits this machine's Lemma-1 constants from
a few micro-measurements, enabling absolute cycle-time predictions via
:class:`~repro.core.cost_model.ObjectIndexingCost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import ConfigurationError
from .cost_model import ObjectIndexingCost, optimal_cell_size, pr_exit


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the paper's analysis keys on."""

    n_objects: int
    n_queries: int
    k: int = 10
    vmax: float = 0.005
    skewness: float = 0.0  # repro.motion.skewness_statistic of the data
    velocity_changes_every_cycle: bool = True

    def __post_init__(self) -> None:
        if self.n_objects < 1 or self.n_queries < 1 or self.k < 1:
            raise ConfigurationError(
                "n_objects, n_queries, and k must all be >= 1"
            )
        if self.vmax < 0.0:
            raise ConfigurationError(f"vmax must be >= 0, got {self.vmax}")


@dataclass(frozen=True)
class Recommendation:
    """A configuration choice plus the reasoning that produced it."""

    method: str  # a METHOD_FACTORIES name (repro.bench.runner)
    maintenance: str
    answering: str
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [f"recommended method: {self.method}"]
        lines += [f"  - {reason}" for reason in self.reasons]
        return "\n".join(lines)


# Tunable machine constants (defaults from this repository's EXPERIMENTS
# run; re-derive with `python -m repro.bench fig15 fig19a` on new hardware).
QI_CROSSOVER_FACTOR = 15.0  # QI wins while NQ < factor * sqrt(NP)
SKEW_THRESHOLD = 1.0  # skewness above this counts as "skewed data"
PR_EXIT_INCREMENTAL_LIMIT = 0.35  # Fig. 12 crossover region


def recommend(profile: WorkloadProfile) -> Recommendation:
    """Pick a monitoring method for a workload, the way the paper would."""
    reasons: List[str] = []
    delta_star = optimal_cell_size(profile.n_objects)
    exit_probability = pr_exit(delta_star, profile.vmax)

    # 1. Maintenance mode for object-side structures (Fig. 12 / 22(a)).
    if exit_probability < PR_EXIT_INCREMENTAL_LIMIT:
        maintenance = "incremental"
        reasons.append(
            f"Pr(exit)={exit_probability:.2f} at delta*={delta_star:.4f} is "
            "low: incremental index maintenance beats rebuilding (Fig. 12)"
        )
    else:
        maintenance = "rebuild"
        reasons.append(
            f"Pr(exit)={exit_probability:.2f} at delta*={delta_star:.4f} is "
            "high: rebuild the index each cycle (Fig. 12)"
        )

    # 2. Few queries -> Query-Indexing (§3.3, Fig. 15/19(a)).
    qi_limit = QI_CROSSOVER_FACTOR * math.sqrt(profile.n_objects)
    if profile.n_queries < qi_limit:
        reasons.append(
            f"NQ={profile.n_queries} < {qi_limit:.0f}: few queries relative "
            "to the population, Query-Indexing avoids the object-index "
            "build entirely (§3.3)"
        )
        return Recommendation(
            "query_indexing", "incremental", "scan", reasons
        )

    # 3. Skewed data -> hierarchical Object-Indexing (§4, Fig. 17/18).
    if profile.skewness > SKEW_THRESHOLD:
        reasons.append(
            f"skewness={profile.skewness:.2f} > {SKEW_THRESHOLD}: the "
            "one-level grid degrades on skewed data, use the hierarchical "
            "index (Fig. 17)"
        )
        # Hierarchical incremental maintenance is never preferred at
        # realistic velocities (Fig. 22(a)).
        answering = (
            "incremental" if exit_probability < PR_EXIT_INCREMENTAL_LIMIT else "overhaul"
        )
        reasons.append(
            "hierarchical maintenance by rebuild (its incremental variant "
            "never wins, Fig. 22(a))"
        )
        return Recommendation("hierarchical", "rebuild", answering, reasons)

    # 4. Uniform-ish data, many queries -> one-level Object-Indexing.
    answering = "incremental" if exit_probability < PR_EXIT_INCREMENTAL_LIMIT else "overhaul"
    reasons.append(
        "near-uniform data with a large query workload: one-level "
        "Object-Indexing at delta* gives constant per-query time "
        "(Theorem 1)"
    )
    if profile.velocity_changes_every_cycle:
        reasons.append(
            "velocities change constantly: predictive (TPR-tree) indexing "
            "would degenerate to per-object updates (§5.4) — stay with "
            "the grid"
        )
    return Recommendation("object_overhaul" if maintenance == "rebuild"
                          else "object_incremental", maintenance, answering, reasons)


def calibrate(
    n_objects: int = 5_000,
    n_queries: int = 200,
    k: int = 10,
    seed: int = 7,
) -> ObjectIndexingCost:
    """Fit this machine's Lemma-1 constants from micro-measurements.

    Runs three small overhaul workloads, measures index-build and
    query-answer times, and solves for ``(a0, a1, a2)`` by least squares.
    The returned :class:`ObjectIndexingCost` predicts absolute cycle
    times for other workload sizes.
    """
    from ..motion import RandomWalkModel, make_dataset, make_queries
    from .cost_model import expected_knn_radius_uniform
    from .monitor import MonitoringSystem

    sizes = [max(500, n_objects // 4), n_objects, n_objects * 2]
    build_times = []
    answer_rows = []
    answer_times = []
    for size in sizes:
        positions = make_dataset("uniform", size, seed=seed)
        queries = make_queries(n_queries, seed=seed + 1)
        system = MonitoringSystem.object_indexing(k, queries)
        motion = RandomWalkModel(vmax=0.005, seed=seed + 2)
        system.load(positions)
        for _ in range(3):
            positions = motion.step(positions)
            system.tick(positions)
        stats = system.history[1:]
        build_times.append(sum(s.index_time for s in stats) / len(stats))
        per_query = (
            sum(s.answer_time for s in stats) / len(stats) / n_queries
        )
        delta = optimal_cell_size(size)
        lcrit = expected_knn_radius_uniform(k, size)
        width = lcrit + delta
        area = width * width
        answer_rows.append([area / (delta * delta), area * size])
        answer_times.append(per_query)

    a0 = float(np.mean([t / size for t, size in zip(build_times, sizes)]))
    design = np.asarray(answer_rows)
    solution, *_ = np.linalg.lstsq(design, np.asarray(answer_times), rcond=None)
    a1, a2 = (max(0.0, float(v)) for v in solution)
    return ObjectIndexingCost(a0=a0, a1=a1, a2=a2)
