"""Continuous group nearest neighbor (GNN) monitoring (paper §6 future work).

A *group* query is a set of points ``G = {q1, .., qm}`` (e.g. friends who
want to meet); its k group nearest neighbors are the objects minimising an
aggregate of the distances to all group members:

* ``sum`` — minimise ``sum_i dist(p, qi)`` (the meeting point that
  minimises total travel, Papadias et al., ICDE 2004);
* ``max`` — minimise ``max_i dist(p, qi)`` (minimise the worst member's
  travel).

The search runs on any :class:`~repro.engines.snapshot.SnapshotIndex`
backend and prunes with centroid-based lower bounds derived from the
triangle inequality.  For an object ``p`` and the group centroid ``c``::

    sum_i d(p, qi) >= m * d(p, c) - sum_i d(c, qi)
    max_i d(p, qi) >= d(p, c) - min_i d(c, qi)

Cells are visited in rings of increasing Chebyshev distance from the
centroid cell; once a whole ring's lower bound exceeds the current k-th
best aggregate, no further cell can improve the answer and the search
stops, provably exact.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..engines.snapshot import SnapshotIndex, make_snapshot
from ..errors import ConfigurationError, NotEnoughObjectsError
from ..grid.geometry import cells_ring, min_dist2_point_cell
from .answers import AnswerList, Neighbor

_AGGREGATES = ("sum", "max")


class GroupQuery:
    """One group of query points with precomputed centroid bounds."""

    __slots__ = (
        "points",
        "cx",
        "cy",
        "sum_center",
        "min_center",
        "m",
        "_xs",
        "_ys",
    )

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2 or len(points) == 0:
            raise ConfigurationError("a group must be a non-empty (m, 2) array")
        self.points = points
        self.m = len(points)
        # Plain lists: the aggregate is evaluated once per scanned object,
        # and for the small groups typical of GNN a Python loop beats the
        # per-call overhead of numpy temporaries.
        self._xs = points[:, 0].tolist()
        self._ys = points[:, 1].tolist()
        self.cx = float(np.mean(points[:, 0]))
        self.cy = float(np.mean(points[:, 1]))
        center_dists = np.sqrt(
            (points[:, 0] - self.cx) ** 2 + (points[:, 1] - self.cy) ** 2
        )
        self.sum_center = float(np.sum(center_dists))
        self.min_center = float(np.min(center_dists))

    def aggregate(self, px: float, py: float, kind: str) -> float:
        """Exact aggregate distance from a point to the group."""
        xs = self._xs
        ys = self._ys
        if kind == "sum":
            total = 0.0
            for i in range(self.m):
                total += math.hypot(xs[i] - px, ys[i] - py)
            return total
        worst = 0.0
        for i in range(self.m):
            d = math.hypot(xs[i] - px, ys[i] - py)
            if d > worst:
                worst = d
        return worst

    def lower_bound(self, dist_to_centroid: float, kind: str) -> float:
        """A valid lower bound on the aggregate from the centroid distance."""
        if kind == "sum":
            return max(0.0, self.m * dist_to_centroid - self.sum_center)
        return max(0.0, dist_to_centroid - self.min_center)


def group_knn(
    index: SnapshotIndex, group: GroupQuery, k: int, aggregate: str = "sum"
) -> List[Neighbor]:
    """Exact k group-NN over any built snapshot index.

    Returns ``(object_id, aggregate_distance)`` pairs, best first.
    """
    if aggregate not in _AGGREGATES:
        raise ConfigurationError(
            f"aggregate must be one of {_AGGREGATES}, got {aggregate!r}"
        )
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > index.n_objects:
        raise NotEnoughObjectsError(k, index.n_objects)
    ci, cj = index.locate(group.cx, group.cy)
    ncells = index.ncells
    delta = index.delta
    # (aggregate, object_id) entries so plain tuple order sorts by quality.
    best = AnswerList(k)
    level = 0
    while True:
        ring = cells_ring(ci, cj, level, ncells)
        if not ring and level > 0:
            break  # the whole grid has been scanned
        # Lower bound for anything at this Chebyshev ring or beyond: the
        # ring's nearest point to the centroid is (level - 1) * delta away
        # at least (the ring starts one full cell out after level 1).
        ring_min_dist = max(0.0, (level - 1) * delta)
        if best.full and group.lower_bound(ring_min_dist, aggregate) > math.sqrt(
            best.worst_dist2
        ):
            break
        for i, j in ring:
            if index.count_in_cells(i, j, i, j) == 0:
                continue
            if best.full:
                cell_dist = math.sqrt(
                    min_dist2_point_cell(group.cx, group.cy, i, j, delta)
                )
                if group.lower_bound(cell_dist, aggregate) > math.sqrt(
                    best.worst_dist2
                ):
                    continue
            ids, xs, ys = index.gather_cells(i, j, i, j)
            for object_id, px, py in zip(ids, xs, ys):
                agg = group.aggregate(px, py, aggregate)
                best.offer(agg * agg, object_id)
        level += 1
    return [(object_id, math.sqrt(d2)) for d2, object_id in best]


class GNNMonitor:
    """Continuously monitor k group-NNs for several groups of points.

    ``backend`` selects the :class:`~repro.engines.snapshot.SnapshotIndex`
    implementation used per cycle (``"object_index"`` or ``"csr"``);
    answers are identical either way.
    """

    def __init__(
        self,
        k: int,
        groups: Sequence[np.ndarray],
        aggregate: str = "sum",
        backend: str = "object_index",
    ) -> None:
        if aggregate not in _AGGREGATES:
            raise ConfigurationError(
                f"aggregate must be one of {_AGGREGATES}, got {aggregate!r}"
            )
        if not groups:
            raise ConfigurationError("at least one group is required")
        self.k = k
        self.aggregate = aggregate
        self.backend = backend
        self.groups = [GroupQuery(points) for points in groups]
        self._index: Optional[SnapshotIndex] = None

    def tick(self, positions: np.ndarray) -> List[List[Neighbor]]:
        """Process one snapshot; returns per-group answers, best first."""
        positions = np.asarray(positions, dtype=np.float64)
        self._index = make_snapshot(positions, self.backend)
        return [
            group_knn(self._index, group, self.k, self.aggregate)
            for group in self.groups
        ]


def brute_force_group_knn(
    positions: np.ndarray, group_points: np.ndarray, k: int, aggregate: str = "sum"
) -> List[Neighbor]:
    """Group k-NN ground truth by scanning every object (tests only)."""
    group = GroupQuery(group_points)
    positions = np.asarray(positions, dtype=np.float64)
    if k > len(positions):
        raise NotEnoughObjectsError(k, len(positions))
    scored: List[Tuple[float, int]] = []
    for object_id in range(len(positions)):
        agg = group.aggregate(
            float(positions[object_id, 0]), float(positions[object_id, 1]), aggregate
        )
        scored.append((agg, object_id))
    scored.sort()
    return [(object_id, agg) for agg, object_id in scored[:k]]
