"""Continuous-monitoring orchestration.

:class:`MonitoringSystem` is the user-facing entry point.  It implements
the paper's cycle (§3): a snapshot ``OBJ_snapshot`` of the asynchronously
updated buffer ``OBJ_curr`` is taken every ``tau`` time units, the index is
maintained against the snapshot, and the exact k-NNs of every query are
recomputed.  Each returned answer carries the snapshot timestamp it is
exact for.

The index structure and maintenance/answering policy are pluggable
*engines*; one engine exists per method evaluated in the paper:

===========================  ==================================================
Factory                      Paper method
===========================  ==================================================
``object_indexing``          one-level Object-Indexing (§3.1, §3.2)
``query_indexing``           Query-Indexing (§3.3)
``hierarchical``             hierarchical Object-Indexing (§4)
``rtree``                    R-tree overhaul / bottom-up baselines (§5.4)
``brute_force``              linear-scan oracle (not in the paper; testing)
``fast_grid``                vectorized CSR + batched answering (production
                             fast path, not a paper method; see fast_index)
``sharded``                  stripe-sharded multiprocess engine (production
                             scale-out path; see :mod:`repro.shard`)
===========================  ==================================================

All factories are thin delegates of the unified entry point
:meth:`MonitoringSystem.create`, which resolves a method name to its
typed :class:`~repro.core.config.MethodConfig` block — unknown keyword
arguments fail with a :class:`~repro.errors.ConfigurationError` naming
the valid fields instead of vanishing into ``**kwargs``.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, IndexStateError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..obs.tracing import NULL_TRACER, Tracer
from ..rtree.rtree import RTree
from .answers import AnswerList, QueryAnswer
from .brute import brute_force_knn
from .hierarchical import HierarchicalObjectIndex
from .object_index import ObjectIndex
from .query_index import QueryIndex

_MAINTENANCE_MODES = ("rebuild", "incremental")
_ANSWERING_MODES = ("overhaul", "incremental")


def _as_queries(queries: np.ndarray) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 2:
        raise ConfigurationError("queries must be an (NQ, 2) array")
    return queries


class BaseEngine(abc.ABC):
    """One monitoring method: how to maintain an index and answer queries."""

    name = "base"

    def __init__(self, k: int, queries: np.ndarray) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.queries = _as_queries(queries)
        self._positions: Optional[np.ndarray] = None
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.tracer = NULL_TRACER

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        """Attach a metrics sink and tracer (no-op instances by default).

        Subclasses propagate the tracer into their index structures so
        algorithm-level spans nest under the cycle-level ones.
        """
        self.metrics = registry
        self.tracer = tracer

    def set_queries(self, queries: np.ndarray) -> None:
        """Replace the query positions (queries may move between cycles).

        The query *set* must stay the same size: per-query state (previous
        answers, critical regions) is tracked positionally.  Correctness is
        unaffected — every incremental bound is recomputed from the new
        query position each cycle (§5.1 expects "comparable performance
        when query points are moving").
        """
        queries = _as_queries(queries)
        if len(queries) != len(self.queries):
            raise ConfigurationError(
                f"query count changed from {len(self.queries)} to "
                f"{len(queries)}; build a new monitoring system instead"
            )
        self.queries = queries

    @abc.abstractmethod
    def load(self, positions: np.ndarray) -> None:
        """Initial build from the first snapshot."""

    @abc.abstractmethod
    def maintain(self, positions: np.ndarray) -> None:
        """Per-cycle index maintenance against a new snapshot."""

    @abc.abstractmethod
    def answer(self) -> List[AnswerList]:
        """Exact k-NN answers for the snapshot last passed to maintain()."""


class ObjectIndexingEngine(BaseEngine):
    """One-level grid Object-Indexing (§3.1 overhaul, §3.2 incremental)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "rebuild",
        answering: str = "overhaul",
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        if answering not in _ANSWERING_MODES:
            raise ConfigurationError(
                f"answering must be one of {_ANSWERING_MODES}, got {answering!r}"
            )
        self.name = f"object-indexing/{maintenance}/{answering}"
        self.maintenance = maintenance
        self.answering = answering
        self._ncells = ncells
        self._delta = delta
        self.index: Optional[ObjectIndex] = None
        self._previous_ids: List[List[int]] = [[] for _ in range(self.n_queries)]

    def _make_index(self, n_objects: int) -> ObjectIndex:
        if self._ncells is not None:
            return ObjectIndex(ncells=self._ncells)
        if self._delta is not None:
            return ObjectIndex(delta=self._delta)
        return ObjectIndex(n_objects=max(1, n_objects))

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if self.index is not None:
            self.index.tracer = tracer

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        self.index = self._make_index(len(positions))
        self.index.tracer = self.tracer
        self.index.build(positions)
        self._positions = positions
        self._previous_ids = [[] for _ in range(self.n_queries)]

    def maintain(self, positions: np.ndarray) -> None:
        if self.index is None:
            raise IndexStateError("load() must run before maintain()")
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "rebuild" or len(positions) != self.index.n_objects:
            self.index.build(positions)
            self.metrics.inc("oi.maintain.rebuilds")
        else:
            moves = self.index.update(positions)
            self.metrics.inc("oi.maintain.moves", moves)
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        if self.index is None:
            raise IndexStateError("load() must run before answer()")
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers: List[AnswerList] = []
        for query_id, (qx, qy) in enumerate(self.queries):
            if self.answering == "incremental" and self._previous_ids[query_id]:
                answer = self.index.knn_incremental(
                    qx, qy, self.k, self._previous_ids[query_id]
                )
            else:
                answer = self.index.knn_overhaul(qx, qy, self.k)
            self._previous_ids[query_id] = answer.object_ids()
            answers.append(answer)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"oi.answer.{name}", delta)
        return answers


class QueryIndexingEngine(BaseEngine):
    """Grid Query-Indexing (§3.3)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "incremental",
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        self.name = f"query-indexing/{maintenance}"
        self.maintenance = maintenance
        self._ncells = ncells
        self._delta = delta
        self.index: Optional[QueryIndex] = None
        self._pending_answers: Optional[List[AnswerList]] = None

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        if self.index is not None:
            self.index.tracer = tracer

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self._ncells is not None:
            self.index = QueryIndex(self.queries, self.k, ncells=self._ncells)
        elif self._delta is not None:
            self.index = QueryIndex(self.queries, self.k, delta=self._delta)
        else:
            self.index = QueryIndex(
                self.queries, self.k, n_objects=max(1, len(positions))
            )
        self.index.tracer = self.tracer
        self.metrics.inc("qi.maintain.bootstraps")
        self._pending_answers = self.index.bootstrap(positions)
        self._positions = positions

    def maintain(self, positions: np.ndarray) -> None:
        if self.index is None:
            raise IndexStateError("load() must run before maintain()")
        positions = np.asarray(positions, dtype=np.float64)
        self._pending_answers = None
        metrics = self.metrics
        if self.maintenance == "rebuild":
            self.index.rebuild_index(positions)
            metrics.inc("qi.maintain.rect_rebuilds")
        else:
            ops = self.index.update_index(positions)
            metrics.inc("qi.maintain.rect_ops", ops)
        if metrics.enabled:
            metrics.set_gauge("qi.rect_cells_mean", self.index.mean_rect_cells())
        self._positions = positions

    def _count_offers(self) -> int:
        """Total (object, query) distance offers of one Fig. 5 scan.

        Computed vectorized from the cell occupancies and query-list
        lengths — the hot loop itself stays uninstrumented.
        """
        assert self.index is not None and self._positions is not None
        n = self.index.grid.ncells
        positions = self._positions
        ii = np.clip((positions[:, 0] * n).astype(np.intp), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(np.intp), 0, n - 1)
        ql_len = np.fromiter(
            (len(bucket) for bucket in self.index.grid._buckets),
            dtype=np.int64,
            count=n * n,
        )
        return int(ql_len[jj * n + ii].sum())

    def answer(self) -> List[AnswerList]:
        if self.index is None or self._positions is None:
            raise IndexStateError("load() must run before answer()")
        if self._pending_answers is not None:
            # The bootstrap cycle already produced exact answers.
            answers = self._pending_answers
            self._pending_answers = None
            return answers
        metrics = self.metrics
        if metrics.enabled:
            metrics.inc("qi.answer.objects_scanned", len(self._positions))
            metrics.inc("qi.answer.offers", self._count_offers())
        return self.index.answer(self._positions)

    def set_queries(self, queries: np.ndarray) -> None:
        super().set_queries(queries)
        if self.index is not None:
            # Rectangles are recomputed from the new query positions on the
            # next maintenance pass; only the stored coordinates move here.
            self.index._qx = self.queries[:, 0].tolist()
            self.index._qy = self.queries[:, 1].tolist()


class HierarchicalEngine(BaseEngine):
    """Hierarchical Object-Indexing (§4)."""

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "incremental",
        answering: str = "incremental",
        delta0: float = 0.1,
        max_cell_load: int = 10,
        split_factor: int = 3,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in _MAINTENANCE_MODES:
            raise ConfigurationError(
                f"maintenance must be one of {_MAINTENANCE_MODES}, got {maintenance!r}"
            )
        if answering not in _ANSWERING_MODES:
            raise ConfigurationError(
                f"answering must be one of {_ANSWERING_MODES}, got {answering!r}"
            )
        self.name = f"hierarchical/{maintenance}/{answering}"
        self.maintenance = maintenance
        self.answering = answering
        self.index = HierarchicalObjectIndex(
            delta0=delta0, max_cell_load=max_cell_load, split_factor=split_factor
        )
        self._previous_ids: List[List[int]] = [[] for _ in range(self.n_queries)]

    def bind_observability(self, registry: MetricsRegistry, tracer) -> None:
        super().bind_observability(registry, tracer)
        self.index.tracer = tracer

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        self.index.build(positions)
        self._positions = positions
        self._previous_ids = [[] for _ in range(self.n_queries)]

    def maintain(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        if self.maintenance == "rebuild" or len(positions) != self.index.n_objects:
            self.index.build(positions)
            metrics.inc("hier.maintain.rebuilds")
        else:
            moves = self.index.update(positions)
            metrics.inc("hier.maintain.moves", moves)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"hier.maintain.{name}", delta)
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        metrics = self.metrics
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers: List[AnswerList] = []
        for query_id, (qx, qy) in enumerate(self.queries):
            if self.answering == "incremental" and self._previous_ids[query_id]:
                answer = self.index.knn_incremental(
                    qx, qy, self.k, self._previous_ids[query_id]
                )
            else:
                answer = self.index.knn_overhaul(qx, qy, self.k)
            self._previous_ids[query_id] = answer.object_ids()
            answers.append(answer)
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"hier.answer.{name}", delta)
        return answers


class RTreeEngine(BaseEngine):
    """R-tree baseline (§5.4).

    Maintenance modes:

    * ``overhaul`` — re-construct the tree entirely each cycle by inserting
      every object into an empty tree (the paper's "R-tree overhaul").
    * ``bottom_up`` — Lee et al. localized updates per object.
    * ``str_bulk`` — rebuild with Sort-Tile-Recursive packing; *stronger*
      than anything the paper ran, included as an extra baseline so the
      comparison is not won by a strawman.
    """

    _MODES = ("overhaul", "bottom_up", "str_bulk")

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        maintenance: str = "overhaul",
        max_entries: int = 32,
    ) -> None:
        super().__init__(k, queries)
        if maintenance not in self._MODES:
            raise ConfigurationError(
                f"maintenance must be one of {self._MODES}, got {maintenance!r}"
            )
        self.name = f"rtree/{maintenance}"
        self.maintenance = maintenance
        self.max_entries = max_entries
        self.index = RTree(max_entries=max_entries)

    def _rebuild_by_insertion(self, positions: np.ndarray) -> None:
        self.index = RTree(max_entries=self.max_entries)
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        for object_id in range(len(positions)):
            self.index.insert(object_id, xs[object_id], ys[object_id])

    def load(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "overhaul":
            self._rebuild_by_insertion(positions)
        else:
            self.index.bulk_load(positions)
        self._positions = positions

    def maintain(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self.maintenance == "overhaul":
            self._rebuild_by_insertion(positions)
            self.metrics.inc("rtree.maintain.rebuilds")
        elif self.maintenance == "str_bulk" or len(positions) != len(self.index):
            self.index.bulk_load(positions)
            self.metrics.inc("rtree.maintain.rebuilds")
        else:
            xs = positions[:, 0].tolist()
            ys = positions[:, 1].tolist()
            for object_id in range(len(positions)):
                self.index.update_bottom_up(object_id, xs[object_id], ys[object_id])
            self.metrics.inc("rtree.maintain.updates", len(positions))
        self._positions = positions

    def answer(self) -> List[AnswerList]:
        metrics = self.metrics
        # Overhaul maintenance replaces the tree (and its counter block)
        # every cycle, so the diff baseline is taken from the *current*
        # index right before answering.
        before = self.index.counters.snapshot() if metrics.enabled else None
        answers = [self.index.knn(qx, qy, self.k) for qx, qy in self.queries]
        if before is not None:
            for name, delta in self.index.counters.diff(before).items():
                metrics.inc(f"rtree.answer.{name}", delta)
        return answers


class BruteForceEngine(BaseEngine):
    """Linear-scan oracle, used as ground truth."""

    name = "brute-force"

    def load(self, positions: np.ndarray) -> None:
        self._positions = np.asarray(positions, dtype=np.float64)

    def maintain(self, positions: np.ndarray) -> None:
        self._positions = np.asarray(positions, dtype=np.float64)

    def answer(self) -> List[AnswerList]:
        if self._positions is None:
            raise IndexStateError("load() must run before answer()")
        self.metrics.inc(
            "brute.answer.objects_scanned", len(self._positions) * self.n_queries
        )
        answers: List[AnswerList] = []
        for qx, qy in self.queries:
            answer = AnswerList(self.k)
            for object_id, distance in brute_force_knn(
                self._positions, qx, qy, self.k
            ):
                answer.offer(distance * distance, object_id)
            answers.append(answer)
        return answers


@dataclass(frozen=True)
class CycleStats:
    """Timing breakdown of one monitoring cycle (seconds).

    ``counters`` holds the per-cycle metric deltas (spans included) when
    the system runs with a :class:`~repro.obs.registry.MetricsRegistry`;
    it stays ``None`` on uninstrumented runs.  Existing positional callers
    are unaffected — the field has a default.
    """

    timestamp: float
    index_time: float
    answer_time: float
    counters: Optional[Mapping[str, float]] = field(default=None, compare=False)

    @property
    def total_time(self) -> float:
        return self.index_time + self.answer_time

    @staticmethod
    def mean_of(
        history: Sequence["CycleStats"], skip_first: bool = True
    ) -> "tuple[float, float, int]":
        """``(mean index_time, mean answer_time, cycles averaged)``.

        The single source of truth for steady-state cycle means; the bench
        layer's ``CycleTiming`` derives from it.  The initial build cycle
        is excluded by default.
        """
        stats = history[1:] if skip_first and len(history) > 1 else list(history)
        if not stats:
            raise IndexStateError("no cycle has run yet")
        cycles = len(stats)
        return (
            sum(s.index_time for s in stats) / cycles,
            sum(s.answer_time for s in stats) / cycles,
            cycles,
        )


class MonitoringSystem:
    """Continuous k-NN monitor over a population of moving objects.

    Construct with one of the factory methods, :meth:`load` the first
    snapshot, then call :meth:`tick` once per cycle with each new snapshot.
    """

    def __init__(
        self,
        engine: BaseEngine,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if tau <= 0.0:
            raise ConfigurationError(f"tau must be > 0, got {tau}")
        self.engine = engine
        self.tau = tau
        self.cycle = 0
        self.history: List[CycleStats] = []
        self._loaded = False
        self.registry: MetricsRegistry = (
            registry if registry is not None else NULL_REGISTRY
        )
        self.tracer = Tracer(self.registry) if self.registry.enabled else NULL_TRACER
        engine.bind_observability(self.registry, self.tracer)

    # ------------------------------------------------------------------
    # Unified factory + per-method delegates
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        method: str,
        k: int,
        queries: np.ndarray,
        *,
        config=None,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **overrides,
    ) -> "MonitoringSystem":
        """Build a monitoring system by method name.

        ``method`` is one of the names in
        :data:`~repro.core.config.METHOD_CONFIGS` (``object_indexing``,
        ``query_indexing``, ``hierarchical``, ``rtree``, ``brute_force``,
        ``fast_grid``, ``tpr``, ``sharded``).  Method options come either
        from a typed ``config`` block (a
        :class:`~repro.core.config.MethodConfig` of the matching class)
        or from keyword ``overrides`` — or both, with overrides applied
        on top of the config.  Unknown option names raise
        :class:`~repro.errors.ConfigurationError` listing the valid
        fields.
        """
        from .config import make_engine, resolve_config

        resolved = resolve_config(method, config, overrides)
        return cls(make_engine(resolved, k, queries), tau=tau, registry=registry)

    @classmethod
    def object_indexing(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        maintenance: str = "rebuild",
        answering: str = "overhaul",
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **grid_kwargs,
    ) -> "MonitoringSystem":
        return cls.create(
            "object_indexing",
            k,
            queries,
            tau=tau,
            registry=registry,
            maintenance=maintenance,
            answering=answering,
            **grid_kwargs,
        )

    @classmethod
    def query_indexing(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        maintenance: str = "incremental",
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **grid_kwargs,
    ) -> "MonitoringSystem":
        return cls.create(
            "query_indexing",
            k,
            queries,
            tau=tau,
            registry=registry,
            maintenance=maintenance,
            **grid_kwargs,
        )

    @classmethod
    def hierarchical(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        maintenance: str = "incremental",
        answering: str = "incremental",
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **hier_kwargs,
    ) -> "MonitoringSystem":
        return cls.create(
            "hierarchical",
            k,
            queries,
            tau=tau,
            registry=registry,
            maintenance=maintenance,
            answering=answering,
            **hier_kwargs,
        )

    @classmethod
    def rtree(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        maintenance: str = "overhaul",
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **rtree_kwargs,
    ) -> "MonitoringSystem":
        return cls.create(
            "rtree",
            k,
            queries,
            tau=tau,
            registry=registry,
            maintenance=maintenance,
            **rtree_kwargs,
        )

    @classmethod
    def brute_force(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> "MonitoringSystem":
        return cls.create("brute_force", k, queries, tau=tau, registry=registry)

    @classmethod
    def fast_grid(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **grid_kwargs,
    ) -> "MonitoringSystem":
        """Vectorized CSR-grid engine with batched multi-query answering.

        The production fast path: exact answers (ties broken by object
        ID), same cycle contract as the paper engines, but the snapshot is
        laid out as flat numpy arrays and all queries are answered in one
        batched pass.  See :mod:`repro.core.fast_index`.
        """
        return cls.create("fast_grid", k, queries, tau=tau, registry=registry, **grid_kwargs)

    @classmethod
    def sharded(
        cls,
        k: int,
        queries: np.ndarray,
        *,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **shard_kwargs,
    ) -> "MonitoringSystem":
        """Stripe-sharded multiprocess engine (see :mod:`repro.shard`).

        ``workers`` sets the worker-pool size (``0`` = serial in-process
        fallback, identical answers) and ``shards`` the stripe count
        (default: one per worker).  The pool holds OS resources — call
        :meth:`close` (or use the system as a context manager) when done.
        """
        return cls.create("sharded", k, queries, tau=tau, registry=registry, **shard_kwargs)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return self.engine.k

    @property
    def n_queries(self) -> int:
        return self.engine.n_queries

    @property
    def timestamp(self) -> float:
        """Snapshot time of the most recent cycle."""
        return self.cycle * self.tau

    def set_queries(self, queries: np.ndarray) -> None:
        """Move the monitored query points (the query count must not change)."""
        self.engine.set_queries(queries)

    def load(self, positions: np.ndarray) -> List[QueryAnswer]:
        """Take the initial snapshot, build the index, answer once."""
        registry = self.registry
        before = registry.counter_values() if registry.enabled else None
        start = time.perf_counter()
        with self.tracer.span("load"):
            self.engine.load(positions)
        index_time = time.perf_counter() - start
        start = time.perf_counter()
        with self.tracer.span("answer"):
            answers = self.engine.answer()
        answer_time = time.perf_counter() - start
        counters = registry.counters_since(before) if before is not None else None
        self.cycle = 0
        self.history = [CycleStats(0.0, index_time, answer_time, counters)]
        self._loaded = True
        registry.inc("cycle.count")
        registry.observe("cycle.total_seconds", index_time + answer_time)
        return self._package(answers, 0.0)

    def tick(self, positions: np.ndarray) -> List[QueryAnswer]:
        """Run one monitoring cycle against a new snapshot."""
        if not self._loaded:
            raise IndexStateError("load() must run before tick()")
        self.cycle += 1
        timestamp = self.cycle * self.tau
        registry = self.registry
        before = registry.counter_values() if registry.enabled else None
        start = time.perf_counter()
        with self.tracer.span("maintain"):
            self.engine.maintain(positions)
        index_time = time.perf_counter() - start
        start = time.perf_counter()
        with self.tracer.span("answer"):
            answers = self.engine.answer()
        answer_time = time.perf_counter() - start
        counters = registry.counters_since(before) if before is not None else None
        self.history.append(CycleStats(timestamp, index_time, answer_time, counters))
        registry.inc("cycle.count")
        registry.observe("cycle.total_seconds", index_time + answer_time)
        return self._package(answers, timestamp)

    def _package(
        self, answers: Sequence[AnswerList], timestamp: float
    ) -> List[QueryAnswer]:
        return [
            QueryAnswer(query_id, timestamp, tuple(answer.neighbors()))
            for query_id, answer in enumerate(answers)
        ]

    @property
    def last_stats(self) -> CycleStats:
        if not self.history:
            raise IndexStateError("no cycle has run yet")
        return self.history[-1]

    def mean_cycle_time(self, skip_first: bool = True) -> float:
        """Average total cycle time, by default excluding the initial build."""
        index_mean, answer_mean, _ = CycleStats.mean_of(self.history, skip_first)
        return index_mean + answer_mean

    # ------------------------------------------------------------------
    # Resource management (engines may own worker pools / shared memory)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-held OS resources (idempotent; most engines hold
        none, the sharded engine holds a worker pool and shared memory)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "MonitoringSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
