"""Continuous-monitoring facade over the engine layer.

:class:`MonitoringSystem` is the user-facing entry point.  It implements
the paper's cycle (§3): a snapshot ``OBJ_snapshot`` of the asynchronously
updated buffer ``OBJ_curr`` is taken every ``tau`` time units, the index is
maintained against the snapshot, and the exact k-NNs of every query are
recomputed.  Each returned answer carries the snapshot timestamp it is
exact for.

The engines themselves live in :mod:`repro.engines` (one module per
method, resolved through the single table in
:mod:`repro.engines.registry`); cycle sequencing and timing capture live
in :class:`repro.engines.base.CyclePipeline`.  This module re-exports
the engine classes and the cycle record type so historic imports
(``from repro.core.monitor import BaseEngine, CycleStats, ...``) keep
working.

===========================  ==================================================
Factory                      Paper method
===========================  ==================================================
``object_indexing``          one-level Object-Indexing (§3.1, §3.2)
``query_indexing``           Query-Indexing (§3.3)
``hierarchical``             hierarchical Object-Indexing (§4)
``rtree``                    R-tree overhaul / bottom-up baselines (§5.4)
``brute_force``              linear-scan oracle (not in the paper; testing)
``fast_grid``                vectorized CSR + batched answering (production
                             fast path, not a paper method; see fast_index)
``delta_grid``               incremental delta-CSR + dirty-region answer
                             reuse (§3.2 insight, vectorized; delta_index)
``sharded``                  stripe-sharded multiprocess engine (production
                             scale-out path; see :mod:`repro.shard`)
===========================  ==================================================

All factories are thin delegates of the unified entry point
:meth:`MonitoringSystem.create`, which resolves a method name through the
engine registry and its typed :class:`~repro.core.config.MethodConfig`
block — unknown keyword arguments fail with a
:class:`~repro.errors.ConfigurationError` naming the valid fields.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..engines.base import (  # noqa: F401  (re-exported compatibility surface)
    BaseEngine,
    CyclePipeline,
    CycleStats,
    CycleTiming,
    _as_queries,
)
from ..engines.brute import BruteForceEngine  # noqa: F401
from ..engines.hierarchical import HierarchicalEngine  # noqa: F401
from ..engines.object_indexing import ObjectIndexingEngine  # noqa: F401
from ..engines.query_indexing import QueryIndexingEngine  # noqa: F401
from ..engines.rtree_engine import RTreeEngine  # noqa: F401
from ..errors import ConfigurationError, IndexStateError
from ..obs.registry import MetricsRegistry
from .answers import AnswerList, QueryAnswer


class MonitoringSystem:
    """Continuous k-NN monitor over a population of moving objects.

    Construct with one of the factory methods, :meth:`load` the first
    snapshot, then call :meth:`tick` once per cycle with each new snapshot.
    """

    def __init__(
        self,
        engine: BaseEngine,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if tau <= 0.0:
            raise ConfigurationError(f"tau must be > 0, got {tau}")
        self.tau = tau
        self.cycle = 0
        self._loaded = False
        self.pipeline = CyclePipeline(engine, registry)

    # -- engine/pipeline delegation ------------------------------------
    @property
    def engine(self) -> BaseEngine:
        return self.pipeline.engine

    @property
    def history(self) -> List[CycleTiming]:
        return self.pipeline.history

    @property
    def registry(self) -> MetricsRegistry:
        return self.pipeline.registry

    @registry.setter
    def registry(self, value: MetricsRegistry) -> None:
        self.pipeline.registry = value

    @property
    def tracer(self):
        return self.pipeline.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.pipeline.tracer = value

    # -- unified factory + per-method delegates ------------------------
    @classmethod
    def create(
        cls,
        method: str,
        k: int,
        queries: np.ndarray,
        *,
        config=None,
        tau: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        **overrides,
    ) -> "MonitoringSystem":
        """Build a monitoring system by method name.

        This is the same canonical entry point as
        :func:`repro.engines.registry.build_system` — ``create`` is a
        thin delegate of it, so both accept the same names: any method
        in :data:`~repro.core.config.METHOD_CONFIGS` *or* any benchmark
        preset in :data:`~repro.engines.registry.BENCH_PRESETS`.  Method
        options come from a typed ``config`` block, a plain config dict
        (``{"method": ..., ...}`` — see
        :meth:`~repro.core.config.MethodConfig.from_dict`), or keyword
        ``overrides`` — with overrides applied on top.  Unknown option
        names raise :class:`~repro.errors.ConfigurationError` listing
        the valid fields.
        """
        from ..engines.registry import build_system

        return build_system(
            method, k, queries, config=config, tau=tau, registry=registry,
            **overrides,
        )

    @classmethod
    def object_indexing(cls, k, queries, *, tau=1.0, registry=None, **options):
        return cls.create("object_indexing", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def query_indexing(cls, k, queries, *, tau=1.0, registry=None, **options):
        return cls.create("query_indexing", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def hierarchical(cls, k, queries, *, tau=1.0, registry=None, **options):
        return cls.create("hierarchical", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def rtree(cls, k, queries, *, tau=1.0, registry=None, **options):
        return cls.create("rtree", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def brute_force(cls, k, queries, *, tau=1.0, registry=None):
        return cls.create("brute_force", k, queries, tau=tau, registry=registry)

    @classmethod
    def fast_grid(cls, k, queries, *, tau=1.0, registry=None, **options):
        """Vectorized CSR-grid engine with batched multi-query answering.

        The production fast path: exact answers (ties broken by object
        ID), same cycle contract as the paper engines.  See
        :mod:`repro.core.fast_index`.
        """
        return cls.create("fast_grid", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def delta_grid(cls, k, queries, *, tau=1.0, registry=None, **options):
        """Incrementally maintained CSR engine with answer reuse.

        Same exact answers as ``fast_grid`` (bit-identical, ties broken
        by object ID) but the snapshot is patched or counting-sort
        rebuilt in place instead of rebuilt from scratch, and queries
        whose critical rectangle saw no change carry their previous
        answer forward.  See :mod:`repro.core.delta_index`.
        """
        return cls.create("delta_grid", k, queries, tau=tau, registry=registry, **options)

    @classmethod
    def sharded(cls, k, queries, *, tau=1.0, registry=None, **options):
        """Stripe-sharded multiprocess engine (see :mod:`repro.shard`).

        ``workers`` sets the worker-pool size (``0`` = serial in-process
        fallback, identical answers) and ``shards`` the stripe count
        (default: one per worker).  The pool holds OS resources — call
        :meth:`close` (or use the system as a context manager) when done.
        """
        return cls.create("sharded", k, queries, tau=tau, registry=registry, **options)

    # -- monitoring ----------------------------------------------------
    @property
    def k(self) -> int:
        return self.engine.k

    @property
    def n_queries(self) -> int:
        return self.engine.n_queries

    @property
    def timestamp(self) -> float:
        """Snapshot time of the most recent cycle."""
        return self.cycle * self.tau

    def set_queries(self, queries: np.ndarray) -> None:
        """Move the monitored query points (the query count must not change)."""
        self.engine.set_queries(queries)

    def load(self, positions: np.ndarray) -> List[QueryAnswer]:
        """Take the initial snapshot, build the index, answer once."""
        answers = self.pipeline.run_cycle(positions, 0.0, initial=True)
        self.cycle = 0
        self._loaded = True
        return self._package(answers, 0.0)

    def tick(self, positions: np.ndarray) -> List[QueryAnswer]:
        """Run one monitoring cycle against a new snapshot."""
        if not self._loaded:
            raise IndexStateError("load() must run before tick()")
        self.cycle += 1
        timestamp = self.cycle * self.tau
        answers = self.pipeline.run_cycle(positions, timestamp)
        return self._package(answers, timestamp)

    def _package(
        self, answers: Sequence[AnswerList], timestamp: float
    ) -> List[QueryAnswer]:
        return [
            QueryAnswer(query_id, timestamp, tuple(answer.neighbors()))
            for query_id, answer in enumerate(answers)
        ]

    @property
    def last_stats(self) -> CycleTiming:
        return self.pipeline.last_record

    def mean_cycle_time(self, skip_first: bool = True) -> float:
        """Average total cycle time, by default excluding the initial build."""
        return self.pipeline.mean_cycle_time(skip_first)

    # -- resource management (engines may own worker pools) ------------
    def close(self) -> None:
        """Release engine-held OS resources (idempotent; most engines hold
        none, the sharded engine holds a worker pool and shared memory)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "MonitoringSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
