"""Core monitoring algorithms: the paper's primary contribution."""

from .advisor import Recommendation, WorkloadProfile, calibrate, recommend
from .answers import AnswerList, Neighbor, QueryAnswer, answers_equal
from .brute import brute_force_all, brute_force_knn
from .cost_model import (
    ObjectIndexingCost,
    SkewedQueryCost,
    expected_knn_radius_uniform,
    fit_linear,
    fit_power_law,
    incremental_maintenance_cost,
    linearity_r2,
    optimal_cell_size,
    pr_exit,
    pr_exit_paper,
)
from .buffer import MonitoringService, PositionBuffer
from .deltas import AnswerDelta, DeltaTracker, answer_delta
from .gnn import GNNMonitor, GroupQuery, brute_force_group_knn, group_knn
from .hierarchical import HierarchicalObjectIndex
from .knn_join import KNNJoinMonitor, brute_force_knn_join
from .population import DynamicPopulation, KeyedAnswer
from .range_monitor import (
    CircleRegion,
    RangeMonitor,
    RectRegion,
    brute_force_range,
)
from .rknn import RKNNMonitor, brute_force_rknn
from .self_join import (
    SelfJoinMonitor,
    knn_self_join,
    knn_self_join_incremental,
)
from .config import (
    METHOD_CONFIGS,
    BruteForceConfig,
    FastGridConfig,
    HierarchicalConfig,
    MethodConfig,
    ObjectIndexingConfig,
    QueryIndexingConfig,
    RTreeConfig,
    ShardedConfig,
    TPRConfig,
)
from .monitor import (
    BaseEngine,
    BruteForceEngine,
    CycleStats,
    HierarchicalEngine,
    MonitoringSystem,
    ObjectIndexingEngine,
    QueryIndexingEngine,
    RTreeEngine,
)
from .fast_index import CSRGrid, FastGridEngine, StageTimings
from .object_index import ObjectIndex
from .query_index import QueryIndex

__all__ = [
    "AnswerDelta",
    "AnswerList",
    "CircleRegion",
    "DeltaTracker",
    "DynamicPopulation",
    "GNNMonitor",
    "GroupQuery",
    "KNNJoinMonitor",
    "KeyedAnswer",
    "MonitoringService",
    "PositionBuffer",
    "RKNNMonitor",
    "RangeMonitor",
    "RectRegion",
    "SelfJoinMonitor",
    "answer_delta",
    "brute_force_group_knn",
    "brute_force_knn_join",
    "calibrate",
    "recommend",
    "brute_force_range",
    "brute_force_rknn",
    "group_knn",
    "knn_self_join",
    "knn_self_join_incremental",
    "BaseEngine",
    "BruteForceConfig",
    "BruteForceEngine",
    "CSRGrid",
    "CycleStats",
    "FastGridConfig",
    "HierarchicalConfig",
    "METHOD_CONFIGS",
    "MethodConfig",
    "ObjectIndexingConfig",
    "QueryIndexingConfig",
    "RTreeConfig",
    "ShardedConfig",
    "TPRConfig",
    "FastGridEngine",
    "StageTimings",
    "HierarchicalEngine",
    "HierarchicalObjectIndex",
    "MonitoringSystem",
    "Neighbor",
    "ObjectIndex",
    "ObjectIndexingCost",
    "ObjectIndexingEngine",
    "QueryAnswer",
    "QueryIndex",
    "QueryIndexingEngine",
    "RTreeEngine",
    "Recommendation",
    "SkewedQueryCost",
    "WorkloadProfile",
    "answers_equal",
    "brute_force_all",
    "brute_force_knn",
    "expected_knn_radius_uniform",
    "fit_linear",
    "fit_power_law",
    "incremental_maintenance_cost",
    "linearity_r2",
    "optimal_cell_size",
    "pr_exit",
    "pr_exit_paper",
]
