"""Continuous reverse k-NN monitoring (paper §6 future work).

The reverse k-NNs of a query ``q`` are the objects that count ``q`` among
their own k nearest points: ``RkNN(q) = {p : dist(p, q) <= dk(p)}`` where
``dk(p)`` is the distance from ``p`` to its k-th nearest *other* object
(the *bichromatic* convention would measure against other query points;
here the paper's monochromatic "players who see me on their radar" reading
is used, with the query treated as an external probe point).

The monitor composes two grid passes per cycle:

1. a k-NN **self-join** over the objects (overhaul or incremental, see
   :mod:`repro.core.self_join`) producing every ``dk(p)``;
2. a **query grid** probe: each object looks up the queries within its own
   ``dk(p)`` radius — only those can have ``p`` as a reverse neighbor.
   Since ``dk`` radii are small (Theorem 1: ~sqrt(k / pi NP)), each probe
   touches O(1) cells at the optimal cell size.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..grid.geometry import rect_for_radius
from ..grid.grid2d import Grid2D, resolve_grid_size
from .self_join import SelfJoinMonitor


class RKNNMonitor:
    """Continuously monitor the reverse k-NNs of a set of query points.

    Parameters
    ----------
    k:
        Neighborhood size used in the reverse condition.
    queries:
        Array of shape ``(NQ, 2)`` with the query positions.
    incremental:
        Run the underlying self-join incrementally (default) or overhaul.
    backend:
        :class:`~repro.engines.snapshot.SnapshotIndex` implementation used
        by the self-join pass (``"object_index"`` or ``"csr"``).
    """

    def __init__(
        self,
        k: int,
        queries: np.ndarray,
        incremental: bool = True,
        backend: str = "object_index",
    ) -> None:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ConfigurationError("queries must be an (NQ, 2) array")
        self.k = k
        self.queries = queries
        self.backend = backend
        self._self_join = SelfJoinMonitor(k, incremental=incremental, backend=backend)
        self._query_grid: Optional[Grid2D] = None

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def set_queries(self, queries: np.ndarray) -> None:
        """Move the query points (the count must stay fixed)."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.shape != self.queries.shape:
            raise ConfigurationError(
                f"query array shape changed from {self.queries.shape} "
                f"to {queries.shape}"
            )
        self.queries = queries
        self._query_grid = None  # rebuilt on the next tick

    def _build_query_grid(self, n_objects: int) -> Grid2D:
        grid = Grid2D(resolve_grid_size(n_objects=max(1, n_objects)))
        qx = self.queries[:, 0]
        qy = self.queries[:, 1]
        for query_id in range(len(self.queries)):
            i, j = grid.locate(float(qx[query_id]), float(qy[query_id]))
            grid.insert(query_id, i, j)
        return grid

    def tick(self, positions: np.ndarray) -> List[List[int]]:
        """Process one snapshot; returns ``RkNN`` object-ID lists per query.

        Object IDs within each answer are sorted ascending.
        """
        positions = np.asarray(positions, dtype=np.float64)
        self._self_join.tick(positions)
        dk = self._self_join.kth_distances()
        if (
            self._query_grid is None
            or self._query_grid.ncells != resolve_grid_size(
                n_objects=max(1, len(positions))
            )
        ):
            self._query_grid = self._build_query_grid(len(positions))
        grid = self._query_grid
        qx = self.queries[:, 0].tolist()
        qy = self.queries[:, 1].tolist()
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        answers: List[List[int]] = [[] for _ in range(len(self.queries))]
        delta = grid.delta
        ncells = grid.ncells
        buckets = grid._buckets
        for object_id in range(len(positions)):
            radius = dk[object_id]
            px = xs[object_id]
            py = ys[object_id]
            radius2 = radius * radius
            rect = rect_for_radius(px, py, radius, delta, ncells)
            for j in range(rect.jlo, rect.jhi + 1):
                base = j * ncells
                for i in range(rect.ilo, rect.ihi + 1):
                    for query_id in buckets[base + i]:
                        dx = qx[query_id] - px
                        dy = qy[query_id] - py
                        if dx * dx + dy * dy <= radius2:
                            answers[query_id].append(object_id)
        return answers

    def kth_distances(self) -> List[float]:
        """The per-object dk values from the last tick (for diagnostics)."""
        return self._self_join.kth_distances()


def brute_force_rknn(
    positions: np.ndarray, queries: np.ndarray, k: int
) -> List[List[int]]:
    """Reverse k-NN ground truth by full pairwise distances (tests only)."""
    positions = np.asarray(positions, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    n = len(positions)
    if n < k + 1:
        raise ConfigurationError(f"need at least k+1={k + 1} objects, have {n}")
    diff = positions[:, None, :] - positions[None, :, :]
    pair = np.sqrt(np.sum(diff * diff, axis=2))
    np.fill_diagonal(pair, np.inf)
    dk = np.sort(pair, axis=1)[:, k - 1]
    answers: List[List[int]] = []
    for qx, qy in queries:
        d = np.sqrt((positions[:, 0] - qx) ** 2 + (positions[:, 1] - qy) ** 2)
        answers.append(np.nonzero(d <= dk + 1e-12)[0].tolist())
    return answers
