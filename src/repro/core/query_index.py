"""Grid Query-Index (paper §3.3).

Instead of indexing the moving objects, the grid indexes the *queries*:
each cell ``(i, j)`` keeps the query list ``QL(i, j)`` of all queries whose
critical region ``Rcrit(q)`` covers the cell.  A cycle then answers every
query with a single scan over the objects (paper Fig. 5): each object is
offered to the answer lists of exactly the queries indexed in its cell.

The Query-Index cannot be built from nothing — critical regions require
known k-NNs — so it is *bootstrapped* from a one-shot Object-Index pass
(the paper's own procedure).  After that, each cycle:

1. recomputes ``lcrit(q)`` from the new positions of the previous answer
   set (as in §3.2), giving the new critical rectangle;
2. maintains the grid either by full rebuild or by the incremental
   delete/insert of the rectangle difference;
3. scans the objects to produce the new exact answers.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, IndexStateError, NotEnoughObjectsError
from ..grid.geometry import CellRect, rect_for_radius
from ..grid.grid2d import Grid2D, resolve_grid_size
from ..obs.tracing import NULL_TRACER
from .answers import AnswerList
from .object_index import ObjectIndex


class QueryIndex:
    """Grid index over query critical regions.

    Parameters
    ----------
    queries:
        Array of shape ``(NQ, 2)`` with the (static) query positions.
    k:
        Number of neighbors monitored per query.
    ncells, delta, n_objects:
        Grid resolution; give exactly one (see
        :func:`repro.grid.resolve_grid_size`).
    """

    def __init__(
        self,
        queries: np.ndarray,
        k: int,
        ncells: Optional[int] = None,
        delta: Optional[float] = None,
        n_objects: Optional[int] = None,
    ) -> None:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 2:
            raise ConfigurationError("queries must be an (NQ, 2) array")
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.tracer = NULL_TRACER
        self.grid = Grid2D(resolve_grid_size(ncells, delta, n_objects))
        self._qx: List[float] = queries[:, 0].tolist()
        self._qy: List[float] = queries[:, 1].tolist()
        self._rects: List[Optional[CellRect]] = [None] * len(queries)
        self._prev_ids: List[List[int]] = [[] for _ in range(len(queries))]
        self._bootstrapped = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_queries(self) -> int:
        return len(self._qx)

    @property
    def delta(self) -> float:
        return self.grid.delta

    @property
    def bootstrapped(self) -> bool:
        return self._bootstrapped

    def critical_rect(self, query_id: int) -> Optional[CellRect]:
        """The current critical rectangle of one query (None before bootstrap)."""
        return self._rects[query_id]

    def previous_answer_ids(self, query_id: int) -> List[int]:
        """IDs of the previous cycle's k-NN for one query."""
        return list(self._prev_ids[query_id])

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap(
        self, positions: np.ndarray, object_index: Optional[ObjectIndex] = None
    ) -> List[AnswerList]:
        """Initialise critical regions with a one-shot Object-Index pass.

        An :class:`ObjectIndex` may be supplied (already built over
        ``positions``); otherwise a temporary one at the optimal cell size
        is constructed and discarded.
        Returns the initial exact answers.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if self.k > len(positions):
            raise NotEnoughObjectsError(self.k, len(positions))
        with self.tracer.span("bootstrap"):
            if object_index is None:
                object_index = ObjectIndex(n_objects=len(positions))
                object_index.tracer = self.tracer
                object_index.build(positions)
            elif not object_index.built:
                object_index.build(positions)
            answers: List[AnswerList] = []
            for query_id in range(self.n_queries):
                answer = object_index.knn_overhaul(
                    self._qx[query_id], self._qy[query_id], self.k
                )
                answers.append(answer)
                self._prev_ids[query_id] = answer.object_ids()
            self._bootstrapped = True
            self.rebuild_index(positions)
        return answers

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _new_rect(self, query_id: int, xs: List[float], ys: List[float]) -> CellRect:
        """Critical rectangle from the new positions of the previous k-NNs."""
        qx = self._qx[query_id]
        qy = self._qy[query_id]
        worst2 = 0.0
        for object_id in self._prev_ids[query_id]:
            dx = xs[object_id] - qx
            dy = ys[object_id] - qy
            d2 = dx * dx + dy * dy
            if d2 > worst2:
                worst2 = d2
        lcrit = math.sqrt(worst2)
        return rect_for_radius(qx, qy, lcrit, self.grid.delta, self.grid.ncells)

    def _check_population(self, positions: np.ndarray) -> Tuple[List[float], List[float]]:
        if not self._bootstrapped:
            raise IndexStateError("the Query-Index must be bootstrap()ed first")
        n = len(positions)
        for prev in self._prev_ids:
            if any(not 0 <= object_id < n for object_id in prev):
                raise IndexStateError(
                    "population changed since bootstrap; bootstrap again"
                )
        return positions[:, 0].tolist(), positions[:, 1].tolist()

    def rebuild_index(self, positions: np.ndarray) -> None:
        """Overhaul maintenance: recompute every rectangle, rebuild the grid."""
        positions = np.asarray(positions, dtype=np.float64)
        xs, ys = self._check_population(positions)
        with self.tracer.span("rect_rebuild"):
            grid = self.grid
            grid.clear()
            for query_id in range(self.n_queries):
                rect = self._new_rect(query_id, xs, ys)
                self._rects[query_id] = rect
                for i, j in rect.cells():
                    grid.insert(query_id, i, j)

    def update_index(self, positions: np.ndarray) -> int:
        """Incremental maintenance: apply only rectangle differences.

        The query is deleted from ``Rcrit(t) - Rcrit(t+dt)`` and inserted
        into ``Rcrit(t+dt) - Rcrit(t)`` (paper §3.3).  Returns the number
        of per-cell delete+insert operations performed.
        """
        positions = np.asarray(positions, dtype=np.float64)
        xs, ys = self._check_population(positions)
        with self.tracer.span("rect_update"):
            ops = self._apply_rect_diffs(xs, ys)
        return ops

    def _apply_rect_diffs(self, xs: List[float], ys: List[float]) -> int:
        grid = self.grid
        ops = 0
        for query_id in range(self.n_queries):
            old = self._rects[query_id]
            new = self._new_rect(query_id, xs, ys)
            if old == new:
                self._rects[query_id] = new
                continue
            if old is not None:
                for i, j in old.cells_not_in(new):
                    grid.remove(query_id, i, j)
                    ops += 1
                for i, j in new.cells_not_in(old):
                    grid.insert(query_id, i, j)
                    ops += 1
            else:  # pragma: no cover - rects always exist after bootstrap
                for i, j in new.cells():
                    grid.insert(query_id, i, j)
                    ops += 1
            self._rects[query_id] = new
        return ops

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def answer(self, positions: np.ndarray) -> List[AnswerList]:
        """One object scan answers every query (paper Fig. 5).

        ``positions`` must be the same snapshot the index was maintained
        with.  Updates the stored previous-answer sets as a side effect.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if not self._bootstrapped:
            raise IndexStateError("the Query-Index must be bootstrap()ed first")
        n = self.grid.ncells
        ii = np.clip((positions[:, 0] * n).astype(np.intp), 0, n - 1)
        jj = np.clip((positions[:, 1] * n).astype(np.intp), 0, n - 1)
        flat = (jj * n + ii).tolist()
        xs = positions[:, 0].tolist()
        ys = positions[:, 1].tolist()
        qx = self._qx
        qy = self._qy
        buckets = self.grid._buckets
        answers = [AnswerList(self.k) for _ in range(self.n_queries)]
        with self.tracer.span("object_scan"):
            for object_id, cell in enumerate(flat):
                bucket = buckets[cell]
                if not bucket:
                    continue
                x = xs[object_id]
                y = ys[object_id]
                for query_id in bucket:
                    dx = qx[query_id] - x
                    dy = qy[query_id] - y
                    answers[query_id].offer(dx * dx + dy * dy, object_id)
        # The critical region construction guarantees >= k objects per
        # query; fall back defensively if that invariant is ever violated.
        for query_id, answer in enumerate(answers):
            if len(answer) < self.k:  # pragma: no cover - defensive
                fallback = ObjectIndex(n_objects=len(positions))
                fallback.build(positions)
                answers[query_id] = fallback.knn_overhaul(
                    qx[query_id], qy[query_id], self.k
                )
            self._prev_ids[query_id] = answers[query_id].object_ids()
        return answers

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean_rect_cells(self) -> float:
        """Average critical-rectangle size |Rcrit| in cells (cost model input)."""
        rects = [rect for rect in self._rects if rect is not None]
        if not rects:
            return 0.0
        return sum(rect.ncells for rect in rects) / len(rects)

    def mean_query_list_length(self) -> float:
        """Average |QL| over all grid cells (cost model input)."""
        total = self.grid.total_ids()
        return total / (self.grid.ncells * self.grid.ncells)

    def validate(self) -> None:
        """Check that grid contents equal the union of stored rectangles."""
        expected = 0
        for query_id, rect in enumerate(self._rects):
            if rect is None:
                continue
            expected += rect.ncells
            for i, j in rect.cells():
                if query_id not in self.grid.bucket(i, j):
                    raise IndexStateError(
                        f"query {query_id} missing from cell ({i}, {j})"
                    )
        if self.grid.total_ids() != expected:
            raise IndexStateError(
                f"grid stores {self.grid.total_ids()} entries, expected {expected}"
            )
